//! # pccheck-repro — umbrella crate for the PCcheck reproduction
//!
//! Re-exports the workspace's member crates under one roof so the
//! integration tests (`tests/`), runnable examples (`examples/`), and the
//! `pccheckctl` CLI can use a single dependency. See the member crates for
//! the substance:
//!
//! * [`pccheck`] — the paper's contribution (concurrent checkpoint engine,
//!   commit protocol, tuner, recovery, distributed coordination).
//! * [`pccheck_device`] — simulated SSD/PMEM/DRAM/network substrates plus
//!   a real file-backed device.
//! * [`pccheck_gpu`] — the training substrate (model zoo, verifiable
//!   states, copy engine, training loop).
//! * [`pccheck_baselines`] — CheckFreq, GPM, Gemini, traditional.
//! * [`pccheck_sim`] — the discrete-event simulator.
//! * [`pccheck_trace`] — preemption traces, goodput and JIT replays.
//! * [`pccheck_monitor`] — checkpoint inspection and anomaly detection.
//! * [`pccheck_harness`] — per-figure experiment drivers.
//! * [`pccheck_telemetry`] — checkpoint-lifecycle tracing, latency
//!   histograms, stall/goodput accounting, and trace exporters.

pub use pccheck;
pub use pccheck_baselines;
pub use pccheck_device;
pub use pccheck_gpu;
pub use pccheck_harness;
pub use pccheck_monitor;
pub use pccheck_sim;
pub use pccheck_telemetry;
pub use pccheck_trace;
pub use pccheck_util;

//! `pccheckd` — run the multi-tenant checkpoint service.
//!
//! ```bash
//! pccheckd smoke [jobs]                        # CI self-test, default 4 jobs
//! pccheckd serve <metrics-addr> <ctl-addr> [jobs]
//! ```
//!
//! `serve` stands up the shared store (a 4-way simulated stripe), seeds
//! `[jobs]` sim-backed tenants, and serves two endpoints until every job
//! drains: the metrics registry (`GET /metrics`, `GET /metrics.json`,
//! every family with per-`job` labelled series) on `<metrics-addr>` and
//! the control plane (`GET /jobs`, `/submit`, `/drain` — the surface
//! `pccheckctl job` talks to) on `<ctl-addr>`. On shutdown it audits the
//! shared store's commit-protocol invariants and exits nonzero if any
//! tenant's namespace is inconsistent.
//!
//! `smoke` is the same lifecycle against ephemeral ports, self-scraping
//! and asserting everything a CI gate needs: per-job counters present
//! and nonzero, QoS shares accounted, forensics clean.

use std::process::ExitCode;
use std::sync::Arc;

use pccheck_daemon::{ControlServer, Daemon, DaemonConfig};
use pccheck_telemetry::{http_get, validate_prometheus_text, MetricsServer};

fn usage() -> ExitCode {
    eprintln!("usage: pccheckd smoke [jobs]");
    eprintln!("       pccheckd serve <metrics-addr> <ctl-addr> [jobs]");
    eprintln!("  smoke  run the full service lifecycle against ephemeral ports:");
    eprintln!("         submit sim jobs over the control endpoint, scrape and");
    eprintln!("         validate per-job metrics, drain, audit; nonzero on any");
    eprintln!("         failed assertion (the CI daemon-smoke gate)");
    eprintln!("  serve  run the service on fixed addresses until the seeded");
    eprintln!("         jobs (default 4) drain; scrape /metrics meanwhile and");
    eprintln!("         drive it with `pccheckctl job <cmd> <ctl-addr> ...`");
    ExitCode::from(2)
}

/// Extracts the value of the exposition line starting with `needle `.
fn sample_value(prom: &str, needle: &str) -> Option<f64> {
    prom.lines()
        .find(|l| l.starts_with(needle) && l.as_bytes().get(needle.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

fn run_service(
    metrics_addr: &str,
    ctl_addr: &str,
    jobs: usize,
    verbose: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let daemon = Arc::new(Daemon::new(DaemonConfig::sim_default())?);
    let metrics = MetricsServer::bind(metrics_addr, daemon.registry().clone())?;
    let control = ControlServer::bind(ctl_addr, Arc::clone(&daemon))?;
    println!("metrics  http://{}", metrics.addr());
    println!("control  http://{}", control.addr());

    // Seed the tenants through the real control plane, unequal weights so
    // the QoS arbiter has something to arbitrate.
    for i in 0..jobs {
        let body = http_get(
            control.addr(),
            &format!(
                "/submit?name=smoke-{i}&iters=20&interval=2&weight={}",
                i + 1
            ),
        )?;
        if !body.contains("\"state\":\"running\"") {
            return Err(format!("job smoke-{i} did not start: {body}").into());
        }
        if verbose {
            println!("submitted smoke-{i}: {}", body.trim());
        }
    }
    if verbose {
        // Stay up for remote `pccheckctl job` interaction until asked to
        // leave (`pccheckctl job shutdown <ctl-addr>`), then run the
        // shutdown gates below.
        println!("serving until GET /shutdown on the control endpoint");
        while !daemon.quit_requested() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    daemon.join_all()?;

    // Gate 1: the exposition parses and carries nonzero per-job counters.
    let prom = http_get(metrics.addr(), "/metrics")?;
    let samples = validate_prometheus_text(&prom)?;
    for i in 0..jobs {
        let needle = format!("pccheck_checkpoints_committed_total{{job=\"smoke-{i}\"}}");
        match sample_value(&prom, &needle) {
            Some(v) if v >= 1.0 => {}
            other => return Err(format!("{needle}: expected >= 1 commit, got {other:?}").into()),
        }
        let bytes = format!("pccheck_bytes_persisted_total{{job=\"smoke-{i}\"}}");
        match sample_value(&prom, &bytes) {
            Some(v) if v > 0.0 => {}
            other => return Err(format!("{bytes}: expected > 0, got {other:?}").into()),
        }
    }
    println!("metrics: {samples} samples, per-job counters present for {jobs} job(s)");

    // Gate 2: the control plane agrees and QoS shares are accounted.
    let list = http_get(control.addr(), "/jobs")?;
    for i in 0..jobs {
        if !list.contains(&format!("\"name\":\"smoke-{i}\"")) {
            return Err(format!("/jobs is missing smoke-{i}: {list}").into());
        }
    }
    let shares = daemon.qos().shares();
    if jobs > 1 && shares.iter().filter(|(_, b)| *b > 0).count() < jobs {
        return Err(format!("QoS served-byte shares incomplete: {shares:?}").into());
    }
    for i in 0..jobs {
        http_get(control.addr(), &format!("/drain?name=smoke-{i}"))?;
    }

    // Gate 3: forensics-clean shutdown of the shared store.
    let report = daemon.shutdown()?;
    if !report.is_clean() {
        eprint!("{}", report.render());
        return Err(format!("{} invariant violation(s)", report.violations.len()).into());
    }
    println!(
        "forensics clean: {} namespace(s) audited, concurrency bound {}",
        report.namespace_recovery.len(),
        report.concurrency_limit
    );
    metrics.shutdown();
    control.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("smoke") => {
            let jobs = args
                .get(2)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(4)
                .clamp(1, 16);
            run_service("127.0.0.1:0", "127.0.0.1:0", jobs, false)
        }
        Some("serve") => match (args.get(2), args.get(3)) {
            (Some(m), Some(c)) => {
                let jobs = args
                    .get(4)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(4)
                    .clamp(1, 16);
                run_service(m, c, jobs, true)
            }
            _ => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => {
            println!("pccheckd: all gates passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pccheckd: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `pccheckctl` — inspect and exercise PCcheck stores on real files.
//!
//! Stores created here live in ordinary files (via
//! [`pccheck_device::FileDevice`]) and survive process restarts, so the
//! full demo is:
//!
//! ```bash
//! pccheckctl demo  /tmp/store.pcc     # train + checkpoint into the file
//! pccheckctl info  /tmp/store.pcc     # list the checkpoint history
//! pccheckctl recover /tmp/store.pcc   # load + verify the latest checkpoint
//! ```
//!
//! `pccheckctl telemetry <out-dir> [strategy]` runs an instrumented
//! in-memory training run and writes the human summary, the JSONL event
//! log, and a Perfetto-loadable Chrome trace into `out-dir`.
//!
//! The crash-forensics pair exercises the flight recorder end to end:
//!
//! ```bash
//! pccheckctl crashdemo /tmp/crashed.pcc during-persist  # die mid-checkpoint
//! pccheckctl forensics /tmp/crashed.pcc                 # audit the wreck
//! ```
//!
//! `crashdemo` formats a flight-recorder-enabled store, commits a baseline
//! checkpoint, drives a second one exactly to the chosen protocol step, and
//! exits without persisting — the page-cache overlay dies with the process,
//! leaving the file as a power failure would. `forensics` replays the
//! flight ring against the slot metadata and exits nonzero if any commit-
//! protocol invariant is violated.
//!
//! The live-introspection trio exposes a *running* workload instead of a
//! finished one: `serve` trains while serving the metrics registry over
//! HTTP (`GET /metrics`, `GET /metrics.json`), `top` renders a periodic
//! console view (of its own workload with `self`, or of a remote `serve`
//! endpoint by address), and `watchdog` drives a deliberately throttled
//! workload under tight SLOs until the watchdog trips and captures a
//! black-box bundle — the CI smoke for the whole observability layer.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pccheck::{
    recover_instrumented_with, recovery, CheckpointStore, PcCheckConfig, PcCheckEngine,
    RestoreOptions,
};
use pccheck_device::{DeviceConfig, FileDevice, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_harness::forensics_run::{
    commit_checkpoint, drive_to_crash_point, synthetic_payload, CrashPoint,
};
use pccheck_harness::profile_run::{self, ProfileRunConfig};
use pccheck_harness::telemetry_run::{run_instrumented, InstrumentedRunConfig, STRATEGIES};
use pccheck_monitor::{armed_watchdog, SloConfig};
use pccheck_telemetry::{
    chrome_trace, chrome_trace_annotated, diff_profiles, http_get, json_lines, render_diff,
    render_profile, render_summary, validate_prometheus_text, DiffMode, DiffThresholds,
    MetricsRegistry, MetricsServer, RunProfile, Telemetry, TelemetryIoObserver,
};
use pccheck_util::{Bandwidth, ByteSize};

/// Demo geometry: a 1 MB training state, N=2 concurrent checkpoints.
const STATE_BYTES: u64 = 1024 * 1024;
const SLOTS: u32 = 3;
const SEED: u64 = 2025;

/// Crashdemo geometry: small enough to audit instantly, flight ring on.
const CRASH_STATE_BYTES: u64 = 64 * 1024;
const CRASH_FLIGHT_RECORDS: u32 = 128;

fn usage() -> ExitCode {
    eprintln!("usage: pccheckctl demo <store-file> [iterations]");
    eprintln!("       pccheckctl info <store-file>");
    eprintln!("       pccheckctl recover <store-file> [readers]");
    eprintln!("       pccheckctl telemetry <out-dir> [strategy]");
    eprintln!("       pccheckctl crashdemo <store-file> [crash-point]");
    eprintln!("       pccheckctl forensics <store-file>");
    eprintln!("       pccheckctl device <store-file> [stripe-ways]");
    eprintln!("       pccheckctl serve <addr> [iterations]");
    eprintln!("       pccheckctl top <addr|self> [refreshes]");
    eprintln!("       pccheckctl watchdog <out-dir> [iterations]");
    eprintln!("       pccheckctl profile <file|run-name> [stripe-ways] [throttle-mb]");
    eprintln!("       pccheckctl diff <base> <candidate> [abs|shares|both]");
    eprintln!("       pccheckctl job submit <ctl-addr> <name> [key=value ...]");
    eprintln!("       pccheckctl job list <ctl-addr>");
    eprintln!("       pccheckctl job drain <ctl-addr> <name>");
    eprintln!("       pccheckctl job shutdown <ctl-addr>");
    eprintln!("  demo       create the store and run a checkpointed training demo");
    eprintln!("  info       print the store header, checkpoint history, and the");
    eprintln!("             per-slot commit-state lattice (free/claimed/committed)");
    eprintln!("  recover    load the latest committed checkpoint through the parallel");
    eprintln!("             restore pipeline ([readers] threads, default 4) and print");
    eprintln!("             the per-phase recovery trace");
    eprintln!(
        "  telemetry  run an instrumented training run ({}) and write",
        STRATEGIES.join("|")
    );
    eprintln!("             summary.txt, events.jsonl, trace.json into <out-dir>");
    eprintln!("  crashdemo  die mid-checkpoint at a chosen protocol step:");
    eprintln!(
        "             {}",
        CrashPoint::ALL.map(|p| p.name()).join("|")
    );
    eprintln!("  forensics  audit a (crashed) store's flight ring + metadata;");
    eprintln!("             exits nonzero on any invariant violation");
    eprintln!("  device     run a short checkpointed demo against a single file");
    eprintln!("             or a <stripe-ways>-wide RAID-0 of files, then print");
    eprintln!("             per-device I/O stats (each stripe member separately)");
    eprintln!("  serve      train in-memory while serving GET /metrics (Prometheus");
    eprintln!("             text) and GET /metrics.json on <addr> (e.g. 127.0.0.1:9464;");
    eprintln!("             port 0 picks an ephemeral one), then self-scrape + validate");
    eprintln!("  top        periodic console view: `self` runs its own workload,");
    eprintln!("             an address polls a running `serve` endpoint remotely");
    eprintln!("  watchdog   run a throttled workload under tight SLOs; the watchdog");
    eprintln!("             must trip and capture a black-box bundle into <out-dir>");
    eprintln!("             (violation.json, metrics, Chrome trace, forensic audit)");
    eprintln!("  profile    render an archived pccheck.profile.v1 artifact, or run the");
    eprintln!("             canonical profiled workload under <run-name> (striped");
    eprintln!("             [stripe-ways] wide, optionally throttled to [throttle-mb]");
    eprintln!("             MB/s per member), archive it under results/profiles/, and");
    eprintln!("             print the critical-path top-offenders view");
    eprintln!("  diff       compare two profiles (paths or archived run names) with");
    eprintln!("             noise-aware thresholds; abs = median nanoseconds (same");
    eprintln!("             machine), shares = critical-path shares (cross-machine);");
    eprintln!("             exits nonzero when a critical-path regression is flagged");
    eprintln!("  job        drive a running pccheckd over its control endpoint:");
    eprintln!("             submit (optional keys: state_kb n weight budget_kb iters");
    eprintln!("             interval), list (one row per tenant with commit count,");
    eprintln!("             bytes persisted, QoS share), drain (stop + drain a job)");
    ExitCode::from(2)
}

fn device_config() -> DeviceConfig {
    let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(STATE_BYTES), SLOTS)
        + ByteSize::from_kb(4);
    DeviceConfig::fast_for_tests(cap)
}

fn cmd_demo(path: &str, iterations: u64) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::create(path, device_config())?);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent((SLOTS - 1) as usize)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(128))
            .dram_chunks(8)
            .build()?,
        device,
        gpu.state_size(),
    )?;
    let interval = 5u64;
    println!("training {iterations} iterations, checkpointing every {interval} into {path}");
    for iter in 1..=iterations {
        gpu.update();
        if iter % interval == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    match engine.last_committed() {
        Some(out) => println!("done: latest committed {out}"),
        None => println!("done: no checkpoint boundary reached (run more iterations)"),
    }
    Ok(())
}

fn open_store(path: &str) -> Result<CheckpointStore, Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(path, device_config())?);
    Ok(CheckpointStore::open(device)?)
}

fn cmd_info(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let store = open_store(path)?;
    println!(
        "store: {} slots x {} payload, {} free",
        store.num_slots(),
        store.slot_size(),
        store.free_slot_count()
    );
    match store.latest_committed() {
        Some(m) => println!(
            "latest committed: counter {} iteration {} ({} bytes)",
            m.counter, m.iteration, m.payload_len
        ),
        None => println!("latest committed: none"),
    }
    println!("history:");
    for meta in store.history()? {
        let kind = match meta.delta {
            Some(link) => format!("delta->c{} depth {}", link.base_counter, link.chain_depth),
            None => "full".to_string(),
        };
        println!(
            "  counter {:>4} iteration {:>6} {:>10} bytes digest {:016x} {}",
            meta.counter, meta.iteration, meta.payload_len, meta.digest, kind
        );
    }
    // The per-slot commit-state lattice the forensic auditor reasons over:
    // the durable state word (Free/Claimed/Committed + counter) next to
    // the decision it supports (DESIGN §13).
    let view = pccheck::RawStoreView::load(store.device().as_ref())?;
    println!("slots:");
    for slot in 0..store.num_slots() {
        let word = match view.slot_state.get(slot as usize).copied().flatten() {
            Some(state) => state.to_string(),
            None if view.state_words => "torn/absent".to_string(),
            None => "-".to_string(),
        };
        println!(
            "  slot {:>3} state {:<14} outcome {}",
            slot,
            word,
            view.slot_outcome(slot)
        );
    }
    Ok(())
}

fn cmd_recover(path: &str, readers: usize) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(path, device_config())?);
    let options = RestoreOptions {
        readers,
        ..RestoreOptions::default()
    };
    let telemetry = Telemetry::disabled();
    let (rec, trace) = recover_instrumented_with(device, &telemetry, options)?;
    // Rebuild the state and verify the digest end to end (the demo always
    // uses the same layout, derived from the state size).
    let layout = TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED).layout();
    recovery::verify_against_state(&rec, &layout)?;
    println!(
        "recovered iteration {} ({} bytes) with {readers} reader(s), digest verified: {:016x}",
        rec.iteration,
        rec.payload.len(),
        rec.digest
    );
    let ms = |nanos: u64| nanos as f64 / 1e6;
    println!(
        "  scan   {:>9.3} ms  ({} candidate(s), {} fallback(s))",
        ms(trace.scan_nanos),
        trace.candidates_scanned,
        trace.fallbacks
    );
    println!(
        "  load   {:>9.3} ms  ({} delta link(s) replayed)",
        ms(trace.load_nanos),
        trace.chain_links
    );
    println!("  verify {:>9.3} ms", ms(trace.verify_nanos));
    println!("  total  {:>9.3} ms", ms(trace.total_nanos));
    // Prove the state is usable: restore and advance one step.
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    rec.restore_into(&gpu);
    gpu.update();
    println!(
        "resumed training: now at step {} (digest {})",
        gpu.step_count(),
        gpu.digest()
    );
    Ok(())
}

fn cmd_telemetry(out_dir: &str, strategy: &str) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = InstrumentedRunConfig {
        iterations: 50,
        interval: 5,
        ..InstrumentedRunConfig::default()
    };
    println!(
        "instrumented run: {strategy}, {} iterations, checkpoint every {}",
        cfg.iterations, cfg.interval
    );
    let run = run_instrumented(strategy, &cfg)?;
    std::fs::create_dir_all(out_dir)?;
    let dir = std::path::Path::new(out_dir);
    let summary = render_summary(&run.snapshot, &run.accounting);
    let events = run.telemetry.events();
    std::fs::write(dir.join("summary.txt"), &summary)?;
    std::fs::write(dir.join("events.jsonl"), json_lines(&events))?;
    std::fs::write(dir.join("trace.json"), chrome_trace(&events))?;
    print!("{summary}");
    println!(
        "wrote {} events to {}/{{summary.txt,events.jsonl,trace.json}}",
        events.len(),
        out_dir
    );
    Ok(())
}

fn cmd_crashdemo(path: &str, point_name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let point = CrashPoint::from_name(point_name)
        .ok_or_else(|| format!("unknown crash point {point_name:?} (see usage)"))?;
    let state = ByteSize::from_bytes(CRASH_STATE_BYTES);
    let cap = CheckpointStore::required_capacity_with_flight(state, SLOTS, CRASH_FLIGHT_RECORDS)
        + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(FileDevice::create(path, DeviceConfig::fast_for_tests(cap))?);
    let store = CheckpointStore::format_with_flight(
        Arc::clone(&device),
        state,
        SLOTS,
        CRASH_FLIGHT_RECORDS,
    )?;
    let baseline = commit_checkpoint(&store, 100, &synthetic_payload(100, CRASH_STATE_BYTES))?;
    println!("committed baseline checkpoint #{baseline} (iteration 100)");
    let (counter, slot) = drive_to_crash_point(
        &store,
        point,
        200,
        &synthetic_payload(200, CRASH_STATE_BYTES),
    )?;
    println!("drove checkpoint #{counter} (slot {slot}) to `{point}` and crashed there");
    println!("unpersisted page-cache state dies with this process; the file keeps");
    println!("only what was persisted — audit it with: pccheckctl forensics {path}");
    // Deliberately no drain/persist: dropping the device discards the
    // overlay, exactly like a power failure at `point`.
    Ok(())
}

fn cmd_forensics(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let file_len = std::fs::metadata(path)?.len();
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(
        path,
        DeviceConfig::fast_for_tests(ByteSize::from_bytes(file_len)),
    )?);
    let report = pccheck_monitor::audit(device)?;
    print!("{}", report.render());
    if report.is_clean() {
        println!("verdict: clean — the commit protocol's invariants hold");
        Ok(())
    } else {
        Err(format!("{} invariant violation(s) found", report.violations.len()).into())
    }
}

fn cmd_device(path: &str, ways: u32) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = if ways <= 1 {
        Arc::new(FileDevice::create(path, device_config())?)
    } else {
        // One backing file per member: `<path>.m0`, `<path>.m1`, ...
        let mut members: Vec<Arc<dyn PersistentDevice>> = Vec::new();
        for i in 0..ways {
            members.push(Arc::new(FileDevice::create(
                &format!("{path}.m{i}"),
                device_config(),
            )?));
        }
        Arc::new(StripedDevice::new(members, ByteSize::from_kb(64)))
    };
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent((SLOTS - 1) as usize)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(128))
            .dram_chunks(8)
            .build()?,
        Arc::clone(&device),
        gpu.state_size(),
    )?;
    let (iterations, interval) = (20u64, 5u64);
    println!("exercising {ways}-way store at {path}: {iterations} iterations, checkpoint every {interval}");
    for iter in 1..=iterations {
        gpu.update();
        if iter % interval == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    println!(
        "{:<10} {:>14} {:>16} {:>12} {:>8}",
        "device", "bytes_written", "bytes_persisted", "persist_ops", "peak_qd"
    );
    for r in device.stats_report() {
        println!(
            "{:<10} {:>14} {:>16} {:>12} {:>8}",
            r.name, r.bytes_written, r.bytes_persisted, r.persist_ops, r.peak_queue_depth
        );
    }
    Ok(())
}

fn cmd_serve(addr: &str, iterations: u64) -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = Telemetry::enabled();
    let server = MetricsServer::bind(addr, MetricsRegistry::new(telemetry.clone()))?;
    println!(
        "serving GET /metrics and GET /metrics.json at http://{}",
        server.addr()
    );
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent((SLOTS - 1) as usize)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(128))
            .dram_chunks(8)
            .build()?,
        Arc::new(SsdDevice::new(device_config())),
        gpu.state_size(),
    )?
    .with_telemetry(telemetry.clone());
    let interval = 5u64;
    println!("training {iterations} iterations, checkpointing every {interval}; scrape away");
    for iter in 1..=iterations {
        gpu.update();
        if iter % interval == 0 {
            engine.checkpoint(&gpu, iter);
        }
        // Leave the scraper a window: this demo is about exposition, not
        // peak iteration rate.
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.drain();
    let prom = http_get(server.addr(), "/metrics")?;
    let samples = validate_prometheus_text(&prom)?;
    println!("final self-scrape: {samples} samples, exposition parses");
    server.shutdown();
    Ok(())
}

fn cmd_top(target: &str, refreshes: u64) -> Result<(), Box<dyn std::error::Error>> {
    if let Ok(addr) = target.parse::<SocketAddr>() {
        // Remote mode: poll a running `pccheckctl serve` endpoint.
        for round in 1..=refreshes {
            let prom = http_get(addr, "/metrics")?;
            println!("-- {addr} refresh {round}/{refreshes} --");
            for line in prom.lines() {
                if line.starts_with("pccheck_checkpoints_")
                    || line.starts_with("pccheck_in_flight")
                    || line.starts_with("pccheck_queue_depth")
                    || line.starts_with("pccheck_stall_fraction")
                {
                    println!("  {line}");
                }
            }
            if round < refreshes {
                std::thread::sleep(Duration::from_millis(500));
            }
        }
        return Ok(());
    }
    if target != "self" {
        return Err(format!("top target {target:?} is neither an address nor `self`").into());
    }
    // Local mode: run a workload on a background thread and render the
    // registry's console view while it progresses.
    let telemetry = Telemetry::enabled();
    let registry = MetricsRegistry::new(telemetry.clone());
    let worker = {
        let telemetry = telemetry.clone();
        std::thread::spawn(move || -> Result<(), pccheck::PccheckError> {
            let gpu = Gpu::new(
                GpuConfig::fast_for_tests(),
                TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
            );
            let engine = PcCheckEngine::new(
                PcCheckConfig::builder()
                    .max_concurrent((SLOTS - 1) as usize)
                    .writer_threads(2)
                    .chunk_size(ByteSize::from_kb(128))
                    .dram_chunks(8)
                    .build()?,
                Arc::new(SsdDevice::new(device_config())),
                gpu.state_size(),
            )?
            .with_telemetry(telemetry);
            for iter in 1..=200u64 {
                gpu.update();
                if iter % 5 == 0 {
                    engine.checkpoint(&gpu, iter);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            engine.drain();
            Ok(())
        })
    };
    for round in 1..=refreshes {
        std::thread::sleep(Duration::from_millis(300));
        println!("-- refresh {round}/{refreshes} --");
        print!("{}", registry.console_view());
    }
    worker.join().map_err(|_| "workload thread panicked")??;
    Ok(())
}

fn cmd_watchdog(out_dir: &str, iterations: u64) -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately slow 2-way striped store: every checkpoint stalls the
    // trainer, so a tight stall-fraction SLO must trip. The striped members
    // also feed the telemetry observer, so the bundle's Chrome trace shows
    // per-member I/O lanes next to the writer lanes.
    let state = ByteSize::from_bytes(CRASH_STATE_BYTES);
    let cap = CheckpointStore::required_capacity(state, 2) + ByteSize::from_kb(4);
    let member_cfg = DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(16.0),
        throttled: true,
    };
    let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
        .map(|_| Arc::new(SsdDevice::new(member_cfg.clone())) as Arc<dyn PersistentDevice>)
        .collect();
    let striped = Arc::new(StripedDevice::new(members, ByteSize::from_kb(4)));
    let telemetry = Telemetry::enabled();
    striped.set_io_observer(Arc::new(TelemetryIoObserver::new(telemetry.clone())));
    let device: Arc<dyn PersistentDevice> = striped;
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(state, SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(1)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .build()?,
        Arc::clone(&device),
        gpu.state_size(),
    )?
    .with_telemetry(telemetry.clone());
    let wd = armed_watchdog(
        device,
        telemetry.clone(),
        SloConfig {
            max_stall_fraction: Some(0.05),
            ..SloConfig::default()
        },
        out_dir,
    );
    println!(
        "throttled workload: {iterations} iterations, checkpoint every iteration, SLO stall<=5%"
    );
    // Checkpoint back-to-back: with N=1 each call after the first blocks in
    // the ticket wait — the stall the SLO meters. Interleaving `update()`
    // would move the blocking into the weights write-lock instead, which is
    // deliberately not attributed to `checkpoint()`.
    gpu.update();
    for iter in 1..=iterations {
        engine.checkpoint(&gpu, iter);
    }
    engine.drain();
    let violations = wd.check_now();
    if violations.is_empty() {
        return Err("watchdog did not fire (expected a stall-fraction violation)".into());
    }
    for v in &violations {
        println!(
            "violation: {} observed {:.3} > allowed {:.3}",
            v.rule.name(),
            v.observed,
            v.threshold
        );
    }
    let bundle = wd
        .last_bundle()
        .ok_or("violation fired but no bundle was captured")?;
    for file in [
        "violation.json",
        "metrics.prom",
        "metrics.json",
        "trace.json",
        "flight.txt",
    ] {
        let body = std::fs::read_to_string(bundle.join(file))?;
        if body.is_empty() {
            return Err(format!("{file} is empty").into());
        }
    }
    let samples = validate_prometheus_text(&std::fs::read_to_string(bundle.join("metrics.prom"))?)?;
    let flight = std::fs::read_to_string(bundle.join("flight.txt"))?;
    if !flight.contains("forensic audit") {
        return Err("flight.txt is not a forensic audit".into());
    }
    println!(
        "black-box bundle at {} ({samples} metric samples, forensic audit attached)",
        bundle.display()
    );
    Ok(())
}

/// Loads a profile from a JSON file path, or from the shared archive by
/// run name when no such file exists.
fn load_profile(arg: &str) -> Result<RunProfile, Box<dyn std::error::Error>> {
    if std::path::Path::new(arg).is_file() {
        return Ok(RunProfile::from_json(&std::fs::read_to_string(arg)?)?);
    }
    Ok(profile_run::archive()?.load(arg)?)
}

fn cmd_profile(
    target: &str,
    ways: usize,
    throttle_mb: Option<f64>,
) -> Result<(), Box<dyn std::error::Error>> {
    if std::path::Path::new(target).is_file() {
        let profile = RunProfile::from_json(&std::fs::read_to_string(target)?)?;
        print!("{}", render_profile(&profile));
        return Ok(());
    }
    let cfg = ProfileRunConfig {
        stripe_ways: ways.max(1),
        member_mb_per_sec: throttle_mb,
        ..ProfileRunConfig::default()
    };
    let run =
        profile_run::run_profiled(target, &cfg).map_err(|e| format!("profiled run failed: {e}"))?;
    let archive = profile_run::archive()?;
    let path = archive.store(&run.profile)?;
    let trace_path = archive.dir().join(format!("{target}.trace.json"));
    std::fs::write(&trace_path, chrome_trace_annotated(&run.telemetry.events()))?;
    print!("{}", render_profile(&run.profile));
    println!("archived {}", path.display());
    println!("annotated trace {}", trace_path.display());
    Ok(())
}

/// Pulls `"key":value` (string or number) out of one hand-rolled JSON
/// object — enough for the daemon's fixed status schema, no parser dep.
fn json_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &obj[obj.find(&tag)? + tag.len()..];
    if let Some(s) = rest.strip_prefix('"') {
        s.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

fn cmd_job(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let sub = args
        .get(2)
        .map(String::as_str)
        .ok_or("job needs a subcommand")?;
    let addr: SocketAddr = args
        .get(3)
        .ok_or("job needs the daemon's control address")?
        .parse()?;
    match sub {
        "list" => {
            let body = http_get(addr, "/jobs")?;
            println!(
                "{:<14} {:>4} {:<8} {:>3} {:>9} {:>14} {:>7}",
                "job", "id", "state", "N", "commits", "bytes", "share"
            );
            // The daemon emits a flat array of flat objects; split on the
            // object boundary rather than pulling in a JSON parser.
            for obj in body.trim_matches(['[', ']', '\n']).split("},{") {
                if obj.trim().is_empty() {
                    continue;
                }
                println!(
                    "{:<14} {:>4} {:<8} {:>3} {:>9} {:>14} {:>7}",
                    json_field(obj, "name").unwrap_or("?"),
                    json_field(obj, "id").unwrap_or("?"),
                    json_field(obj, "state").unwrap_or("?"),
                    json_field(obj, "concurrent").unwrap_or("?"),
                    json_field(obj, "committed").unwrap_or("?"),
                    json_field(obj, "bytes_persisted").unwrap_or("?"),
                    json_field(obj, "qos_share").unwrap_or("?"),
                );
            }
            Ok(())
        }
        "submit" => {
            let name = args.get(4).ok_or("submit needs a job name")?;
            let mut query = format!("/submit?name={name}");
            for kv in &args[5..] {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {kv:?}"))?;
                query.push_str(&format!("&{k}={v}"));
            }
            let body = http_get(addr, &query)?;
            println!("{}", body.trim());
            Ok(())
        }
        "drain" => {
            let name = args.get(4).ok_or("drain needs a job name")?;
            let body = http_get(addr, &format!("/drain?name={name}"))?;
            println!("{}", body.trim());
            Ok(())
        }
        "shutdown" => {
            let body = http_get(addr, "/shutdown")?;
            println!("{}", body.trim());
            Ok(())
        }
        other => {
            Err(format!("unknown job subcommand {other:?} (submit|list|drain|shutdown)").into())
        }
    }
}

fn cmd_diff(base: &str, cand: &str, mode: &str) -> Result<(), Box<dyn std::error::Error>> {
    let base_profile = load_profile(base)?;
    let cand_profile = load_profile(cand)?;
    let modes: Vec<DiffMode> = match mode {
        "abs" => vec![DiffMode::Absolute],
        "shares" => vec![DiffMode::Shares],
        "both" => vec![DiffMode::Absolute, DiffMode::Shares],
        other => return Err(format!("unknown diff mode {other:?} (abs|shares|both)").into()),
    };
    let mut regressed = false;
    for m in modes {
        let d = diff_profiles(&base_profile, &cand_profile, m, &DiffThresholds::default());
        print!("{}", render_diff(&d));
        regressed |= d.regressed;
    }
    if regressed {
        return Err("critical-path regression flagged".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return usage(),
    };
    let iterations = args
        .get(3)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20);
    let result = match cmd {
        "demo" => cmd_demo(path, iterations),
        "info" => cmd_info(path),
        "recover" => cmd_recover(
            path,
            args.get(3)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(4)
                .max(1),
        ),
        "telemetry" => cmd_telemetry(path, args.get(3).map_or("pccheck", |s| s.as_str())),
        "crashdemo" => cmd_crashdemo(
            path,
            args.get(3)
                .map_or("between-persist-and-commit", |s| s.as_str()),
        ),
        "forensics" => cmd_forensics(path),
        "device" => cmd_device(
            path,
            args.get(3).and_then(|s| s.parse::<u32>().ok()).unwrap_or(1),
        ),
        "serve" => cmd_serve(
            path,
            args.get(3)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(200),
        ),
        "top" => cmd_top(
            path,
            args.get(3)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(5)
                .max(1),
        ),
        "watchdog" => cmd_watchdog(
            path,
            args.get(3)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(30),
        ),
        "profile" => cmd_profile(
            path,
            args.get(3)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(4),
            args.get(4).and_then(|s| s.parse::<f64>().ok()),
        ),
        "diff" => match args.get(3) {
            Some(cand) => cmd_diff(path, cand, args.get(4).map_or("abs", |s| s.as_str())),
            None => return usage(),
        },
        "job" => cmd_job(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pccheckctl {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

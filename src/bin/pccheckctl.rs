//! `pccheckctl` — inspect and exercise PCcheck stores on real files.
//!
//! Stores created here live in ordinary files (via
//! [`pccheck_device::FileDevice`]) and survive process restarts, so the
//! full demo is:
//!
//! ```bash
//! pccheckctl demo  /tmp/store.pcc     # train + checkpoint into the file
//! pccheckctl info  /tmp/store.pcc     # list the checkpoint history
//! pccheckctl recover /tmp/store.pcc   # load + verify the latest checkpoint
//! ```
//!
//! `pccheckctl telemetry <out-dir> [strategy]` runs an instrumented
//! in-memory training run and writes the human summary, the JSONL event
//! log, and a Perfetto-loadable Chrome trace into `out-dir`.
//!
//! The crash-forensics pair exercises the flight recorder end to end:
//!
//! ```bash
//! pccheckctl crashdemo /tmp/crashed.pcc during-persist  # die mid-checkpoint
//! pccheckctl forensics /tmp/crashed.pcc                 # audit the wreck
//! ```
//!
//! `crashdemo` formats a flight-recorder-enabled store, commits a baseline
//! checkpoint, drives a second one exactly to the chosen protocol step, and
//! exits without persisting — the page-cache overlay dies with the process,
//! leaving the file as a power failure would. `forensics` replays the
//! flight ring against the slot metadata and exits nonzero if any commit-
//! protocol invariant is violated.

use std::process::ExitCode;
use std::sync::Arc;

use pccheck::{recover_instrumented_with, recovery, CheckpointStore, PcCheckConfig, PcCheckEngine, RestoreOptions};
use pccheck_device::{DeviceConfig, FileDevice, PersistentDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_harness::forensics_run::{
    commit_checkpoint, drive_to_crash_point, synthetic_payload, CrashPoint,
};
use pccheck_harness::telemetry_run::{run_instrumented, InstrumentedRunConfig, STRATEGIES};
use pccheck_telemetry::{chrome_trace, json_lines, render_summary, Telemetry};
use pccheck_util::ByteSize;

/// Demo geometry: a 1 MB training state, N=2 concurrent checkpoints.
const STATE_BYTES: u64 = 1024 * 1024;
const SLOTS: u32 = 3;
const SEED: u64 = 2025;

/// Crashdemo geometry: small enough to audit instantly, flight ring on.
const CRASH_STATE_BYTES: u64 = 64 * 1024;
const CRASH_FLIGHT_RECORDS: u32 = 128;

fn usage() -> ExitCode {
    eprintln!("usage: pccheckctl demo <store-file> [iterations]");
    eprintln!("       pccheckctl info <store-file>");
    eprintln!("       pccheckctl recover <store-file> [readers]");
    eprintln!("       pccheckctl telemetry <out-dir> [strategy]");
    eprintln!("       pccheckctl crashdemo <store-file> [crash-point]");
    eprintln!("       pccheckctl forensics <store-file>");
    eprintln!("       pccheckctl device <store-file> [stripe-ways]");
    eprintln!("  demo       create the store and run a checkpointed training demo");
    eprintln!("  info       print the store header and checkpoint history");
    eprintln!("  recover    load the latest committed checkpoint through the parallel");
    eprintln!("             restore pipeline ([readers] threads, default 4) and print");
    eprintln!("             the per-phase recovery trace");
    eprintln!(
        "  telemetry  run an instrumented training run ({}) and write",
        STRATEGIES.join("|")
    );
    eprintln!("             summary.txt, events.jsonl, trace.json into <out-dir>");
    eprintln!("  crashdemo  die mid-checkpoint at a chosen protocol step:");
    eprintln!(
        "             {}",
        CrashPoint::ALL.map(|p| p.name()).join("|")
    );
    eprintln!("  forensics  audit a (crashed) store's flight ring + metadata;");
    eprintln!("             exits nonzero on any invariant violation");
    eprintln!("  device     run a short checkpointed demo against a single file");
    eprintln!("             or a <stripe-ways>-wide RAID-0 of files, then print");
    eprintln!("             per-device I/O stats (each stripe member separately)");
    ExitCode::from(2)
}

fn device_config() -> DeviceConfig {
    let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(STATE_BYTES), SLOTS)
        + ByteSize::from_kb(4);
    DeviceConfig::fast_for_tests(cap)
}

fn cmd_demo(path: &str, iterations: u64) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::create(path, device_config())?);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent((SLOTS - 1) as usize)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(128))
            .dram_chunks(8)
            .build()?,
        device,
        gpu.state_size(),
    )?;
    let interval = 5u64;
    println!("training {iterations} iterations, checkpointing every {interval} into {path}");
    for iter in 1..=iterations {
        gpu.update();
        if iter % interval == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    match engine.last_committed() {
        Some(out) => println!("done: latest committed {out}"),
        None => println!("done: no checkpoint boundary reached (run more iterations)"),
    }
    Ok(())
}

fn open_store(path: &str) -> Result<CheckpointStore, Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(path, device_config())?);
    Ok(CheckpointStore::open(device)?)
}

fn cmd_info(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let store = open_store(path)?;
    println!(
        "store: {} slots x {} payload, {} free",
        store.num_slots(),
        store.slot_size(),
        store.free_slot_count()
    );
    match store.latest_committed() {
        Some(m) => println!(
            "latest committed: counter {} iteration {} ({} bytes)",
            m.counter, m.iteration, m.payload_len
        ),
        None => println!("latest committed: none"),
    }
    println!("history:");
    for meta in store.history()? {
        let kind = match meta.delta {
            Some(link) => format!("delta->c{} depth {}", link.base_counter, link.chain_depth),
            None => "full".to_string(),
        };
        println!(
            "  counter {:>4} iteration {:>6} {:>10} bytes digest {:016x} {}",
            meta.counter, meta.iteration, meta.payload_len, meta.digest, kind
        );
    }
    Ok(())
}

fn cmd_recover(path: &str, readers: usize) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(path, device_config())?);
    let options = RestoreOptions {
        readers,
        ..RestoreOptions::default()
    };
    let telemetry = Telemetry::disabled();
    let (rec, trace) = recover_instrumented_with(device, &telemetry, options)?;
    // Rebuild the state and verify the digest end to end (the demo always
    // uses the same layout, derived from the state size).
    let layout = TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED).layout();
    recovery::verify_against_state(&rec, &layout)?;
    println!(
        "recovered iteration {} ({} bytes) with {readers} reader(s), digest verified: {:016x}",
        rec.iteration,
        rec.payload.len(),
        rec.digest
    );
    let ms = |nanos: u64| nanos as f64 / 1e6;
    println!(
        "  scan   {:>9.3} ms  ({} candidate(s), {} fallback(s))",
        ms(trace.scan_nanos),
        trace.candidates_scanned,
        trace.fallbacks
    );
    println!(
        "  load   {:>9.3} ms  ({} delta link(s) replayed)",
        ms(trace.load_nanos),
        trace.chain_links
    );
    println!("  verify {:>9.3} ms", ms(trace.verify_nanos));
    println!("  total  {:>9.3} ms", ms(trace.total_nanos));
    // Prove the state is usable: restore and advance one step.
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    rec.restore_into(&gpu);
    gpu.update();
    println!(
        "resumed training: now at step {} (digest {})",
        gpu.step_count(),
        gpu.digest()
    );
    Ok(())
}

fn cmd_telemetry(out_dir: &str, strategy: &str) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = InstrumentedRunConfig {
        iterations: 50,
        interval: 5,
        ..InstrumentedRunConfig::default()
    };
    println!(
        "instrumented run: {strategy}, {} iterations, checkpoint every {}",
        cfg.iterations, cfg.interval
    );
    let run = run_instrumented(strategy, &cfg)?;
    std::fs::create_dir_all(out_dir)?;
    let dir = std::path::Path::new(out_dir);
    let summary = render_summary(&run.snapshot, &run.accounting);
    let events = run.telemetry.events();
    std::fs::write(dir.join("summary.txt"), &summary)?;
    std::fs::write(dir.join("events.jsonl"), json_lines(&events))?;
    std::fs::write(dir.join("trace.json"), chrome_trace(&events))?;
    print!("{summary}");
    println!(
        "wrote {} events to {}/{{summary.txt,events.jsonl,trace.json}}",
        events.len(),
        out_dir
    );
    Ok(())
}

fn cmd_crashdemo(path: &str, point_name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let point = CrashPoint::from_name(point_name)
        .ok_or_else(|| format!("unknown crash point {point_name:?} (see usage)"))?;
    let state = ByteSize::from_bytes(CRASH_STATE_BYTES);
    let cap = CheckpointStore::required_capacity_with_flight(state, SLOTS, CRASH_FLIGHT_RECORDS)
        + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(FileDevice::create(path, DeviceConfig::fast_for_tests(cap))?);
    let store = CheckpointStore::format_with_flight(
        Arc::clone(&device),
        state,
        SLOTS,
        CRASH_FLIGHT_RECORDS,
    )?;
    let baseline = commit_checkpoint(&store, 100, &synthetic_payload(100, CRASH_STATE_BYTES))?;
    println!("committed baseline checkpoint #{baseline} (iteration 100)");
    let (counter, slot) = drive_to_crash_point(
        &store,
        point,
        200,
        &synthetic_payload(200, CRASH_STATE_BYTES),
    )?;
    println!("drove checkpoint #{counter} (slot {slot}) to `{point}` and crashed there");
    println!("unpersisted page-cache state dies with this process; the file keeps");
    println!("only what was persisted — audit it with: pccheckctl forensics {path}");
    // Deliberately no drain/persist: dropping the device discards the
    // overlay, exactly like a power failure at `point`.
    Ok(())
}

fn cmd_forensics(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let file_len = std::fs::metadata(path)?.len();
    let device: Arc<dyn PersistentDevice> = Arc::new(FileDevice::open(
        path,
        DeviceConfig::fast_for_tests(ByteSize::from_bytes(file_len)),
    )?);
    let report = pccheck_monitor::audit(device)?;
    print!("{}", report.render());
    if report.is_clean() {
        println!("verdict: clean — the commit protocol's invariants hold");
        Ok(())
    } else {
        Err(format!("{} invariant violation(s) found", report.violations.len()).into())
    }
}

fn cmd_device(path: &str, ways: u32) -> Result<(), Box<dyn std::error::Error>> {
    let device: Arc<dyn PersistentDevice> = if ways <= 1 {
        Arc::new(FileDevice::create(path, device_config())?)
    } else {
        // One backing file per member: `<path>.m0`, `<path>.m1`, ...
        let mut members: Vec<Arc<dyn PersistentDevice>> = Vec::new();
        for i in 0..ways {
            members.push(Arc::new(FileDevice::create(
                &format!("{path}.m{i}"),
                device_config(),
            )?));
        }
        Arc::new(StripedDevice::new(members, ByteSize::from_kb(64)))
    };
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), SEED),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent((SLOTS - 1) as usize)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(128))
            .dram_chunks(8)
            .build()?,
        Arc::clone(&device),
        gpu.state_size(),
    )?;
    let (iterations, interval) = (20u64, 5u64);
    println!("exercising {ways}-way store at {path}: {iterations} iterations, checkpoint every {interval}");
    for iter in 1..=iterations {
        gpu.update();
        if iter % interval == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    println!(
        "{:<10} {:>14} {:>16} {:>12} {:>8}",
        "device", "bytes_written", "bytes_persisted", "persist_ops", "peak_qd"
    );
    for r in device.stats_report() {
        println!(
            "{:<10} {:>14} {:>16} {:>12} {:>8}",
            r.name, r.bytes_written, r.bytes_persisted, r.persist_ops, r.peak_queue_depth
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return usage(),
    };
    let iterations = args
        .get(3)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20);
    let result = match cmd {
        "demo" => cmd_demo(path, iterations),
        "info" => cmd_info(path),
        "recover" => cmd_recover(
            path,
            args.get(3)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(4)
                .max(1),
        ),
        "telemetry" => cmd_telemetry(path, args.get(3).map_or("pccheck", |s| s.as_str())),
        "crashdemo" => cmd_crashdemo(
            path,
            args.get(3)
                .map_or("between-persist-and-commit", |s| s.as_str()),
        ),
        "forensics" => cmd_forensics(path),
        "device" => cmd_device(
            path,
            args.get(3).and_then(|s| s.parse::<u32>().ok()).unwrap_or(1),
        ),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pccheckctl {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

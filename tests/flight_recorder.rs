//! Flight-recorder durability properties, exercised through a real
//! simulated device rather than the telemetry crate's in-crate tests:
//! however the device dies — clean persist boundary, mid-`msync` fuse, or
//! the adversarial cache-line-granular crash policy — scanning the ring
//! afterwards yields only checksum-valid records forming a prefix of what
//! was appended, never fabricated or half-written events.
//!
//! The randomized `proptest!` blocks delegate to the plain check
//! functions below, which the deterministic grid tests also run, so the
//! properties are exercised even where the proptest runner is stubbed.

use std::sync::Arc;

use proptest::prelude::*;

use pccheck_device::{CrashPolicy, DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_telemetry::{
    FlightEventKind, FlightRecord, FlightRing, FLIGHT_HEADER_SIZE, FLIGHT_RECORD_SIZE,
};
use pccheck_util::ByteSize;

fn ring_device(capacity_records: u32, policy: CrashPolicy) -> Arc<SsdDevice> {
    let cap =
        ByteSize::from_bytes(FlightRing::required_capacity(capacity_records) + FLIGHT_RECORD_SIZE);
    Arc::new(SsdDevice::with_crash_policy(
        DeviceConfig::fast_for_tests(cap),
        policy,
    ))
}

/// Appends `total` records, arming the persist fuse so the device dies
/// during the `survivors + 1`-th record's `msync`. The post-crash scan
/// must hold exactly the `survivors` fully persisted records (modulo
/// wrap), in order, with their payloads intact.
fn check_fuse_crash_leaves_valid_prefix(total: u64, survivors: u64, capacity: u32) {
    assert!(survivors < total);
    let ssd = ring_device(capacity, CrashPolicy::DropUnpersisted);
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let ring = FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    // `create` already persisted the header; every append persists once.
    ssd.arm_crash_after_persists(survivors);
    for i in 0..total {
        ring.append(FlightEventKind::Commit, i + 1, (i % 4) as u32, i * 10, i, 0);
    }
    let scan = FlightRing::scan(&*device, 0).expect("header survives");
    let expect = survivors.min(capacity as u64);
    assert_eq!(scan.records.len() as u64, expect, "prefix length");
    assert_eq!(scan.torn_cells, 0, "clean persist boundary tears nothing");
    for rec in &scan.records {
        // Each surviving record is byte-exact, not merely checksum-valid.
        assert_eq!(rec.counter, rec.seq + 1);
        assert_eq!(rec.iteration, rec.seq * 10);
        assert_eq!(rec.bytes, rec.seq);
    }
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    let base = survivors.saturating_sub(capacity as u64);
    assert_eq!(seqs, (base..survivors).collect::<Vec<u64>>(), "contiguous");
}

/// Crashes under the adversarial policy (each dirty cache line survives
/// with p=1/2). Whatever the scan returns must still be a subset of the
/// appended records with every field intact — a torn cell may be *lost*
/// (counted) but never decodes to a fabricated event.
fn check_adversarial_crash_never_fabricates(appended: u64, capacity: u32, seed: u64) {
    let ssd = ring_device(capacity, CrashPolicy::RandomPartial { seed });
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let ring = FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    for i in 0..appended {
        ring.append(
            FlightEventKind::Begin,
            i + 1,
            (i % 8) as u32,
            i,
            i * 3,
            i * 7,
        );
    }
    // Leave one more record half-flight: written, never persisted.
    ssd.arm_crash_after_persists(0);
    ring.append(FlightEventKind::Commit, appended + 1, 0, 0, 0, 0);
    assert!(ssd.is_crashed());
    let scan = FlightRing::scan(&*device, 0).expect("header survives");
    assert!(scan.records.len() as u64 <= (appended + 1).min(capacity as u64));
    for rec in &scan.records {
        if rec.seq < appended {
            // A persisted record: byte-exact or absent, never altered.
            assert_eq!(rec.kind, FlightEventKind::Begin);
            assert_eq!(rec.counter, rec.seq + 1);
            assert_eq!(rec.iteration, rec.seq);
            assert_eq!(rec.bytes, rec.seq * 3);
            assert_eq!(rec.aux, rec.seq * 7);
        } else {
            // The in-flight append's single cache line may survive whole
            // (an msync interrupted after the data reached media) — but
            // then it must be the exact record that was being written.
            assert_eq!(rec.seq, appended);
            assert_eq!(rec.kind, FlightEventKind::Commit);
            assert_eq!(rec.counter, appended + 1);
        }
    }
    // Sorted + unique by construction of the scan.
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs, sorted);
}

/// Wrapping past capacity keeps the newest window and reports `wrapped`.
fn check_partial_wrap_keeps_newest(total: u64, capacity: u32) {
    let ssd = ring_device(capacity, CrashPolicy::DropUnpersisted);
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let ring = FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    for i in 0..total {
        ring.append(FlightEventKind::MetaPersisted, i + 1, 0, i, 0, 0);
    }
    let scan = FlightRing::scan(&*device, 0).expect("scan");
    let expect = total.min(capacity as u64);
    assert_eq!(scan.records.len() as u64, expect);
    assert_eq!(scan.wrapped(), total > capacity as u64);
    let first = total - expect;
    for (i, rec) in scan.records.iter().enumerate() {
        assert_eq!(rec.seq, first + i as u64);
    }
}

/// Exactly `laps` full laps: `max_seq + 1` is a capacity multiple, so the
/// lap-window filter's keep range is one whole lap and nothing may be
/// counted stale or torn.
fn check_exact_capacity_multiple_wrap(laps: u64, capacity: u32) {
    let ssd = ring_device(capacity, CrashPolicy::DropUnpersisted);
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let ring = FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    let total = laps * u64::from(capacity);
    for i in 0..total {
        ring.append(FlightEventKind::Commit, i + 1, 0, i, 0, 0);
    }
    let scan = FlightRing::scan(&*device, 0).expect("scan");
    assert_eq!(scan.records.len() as u64, u64::from(capacity));
    assert_eq!(scan.wrapped(), laps > 1);
    assert_eq!(scan.stale_cells, 0, "a full lap has no stale survivors");
    assert_eq!(scan.torn_cells, 0);
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    assert_eq!(
        seqs,
        (total - u64::from(capacity)..total).collect::<Vec<u64>>()
    );
}

/// Crash exactly at a lap boundary: `laps` full laps persist, then the
/// overwrite of cell 0 (seq = laps*capacity) dies in its msync. The
/// surviving cell-0 record trails the ring maximum by exactly
/// `capacity - 1` — the boundary case the lap-window filter must keep
/// (it is the oldest in-window record), not reject as stale.
fn check_lap_boundary_crash_keeps_previous_lap(laps: u64, capacity: u32) {
    let ssd = ring_device(capacity, CrashPolicy::DropUnpersisted);
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    let ring = FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    let total = laps * u64::from(capacity);
    for i in 0..total {
        ring.append(FlightEventKind::Commit, i + 1, 0, i, 0, 0);
    }
    ssd.arm_crash_after_persists(0);
    ring.append(FlightEventKind::Commit, total + 1, 0, total, 0, 0);
    assert!(ssd.is_crashed());
    let scan = FlightRing::scan(&*device, 0).expect("header survives");
    assert_eq!(scan.records.len() as u64, u64::from(capacity));
    assert_eq!(
        scan.stale_cells, 0,
        "the boundary survivor is in-window, not stale"
    );
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    assert_eq!(
        seqs,
        (total - u64::from(capacity)..total).collect::<Vec<u64>>(),
        "the previous lap is the coherent history"
    );
}

/// Plants a checksum-valid record from `lap_gap + 1` laps back (its
/// cell's newer overwrites all lost) next to a fresh one: the scan must
/// reject the resurrected record, count it, and reopening must resume
/// after the true maximum.
fn check_stale_lap_cell_is_rejected(capacity: u32, cell: u32, lap_gap: u64) {
    assert!(capacity >= 2 && cell < capacity && lap_gap >= 1);
    let ssd = ring_device(capacity, CrashPolicy::DropUnpersisted);
    let device: Arc<dyn PersistentDevice> = ssd.clone();
    FlightRing::create(Arc::clone(&device), 0, capacity).expect("ring fits");
    let plant = |seq: u64| {
        let rec = FlightRecord {
            seq,
            kind: FlightEventKind::Commit,
            counter: seq + 1,
            slot: 0,
            iteration: seq,
            bytes: 0,
            aux: 0,
        };
        let off = FLIGHT_HEADER_SIZE + (seq % u64::from(capacity)) * FLIGHT_RECORD_SIZE;
        device.write_at(off, &rec.encode()).expect("plant write");
        device
            .persist(off, FLIGHT_RECORD_SIZE)
            .expect("plant persist");
    };
    let stale_seq = u64::from(cell); // lap 0
    let fresh_cell = (cell + 1) % capacity;
    let fresh_seq = (1 + lap_gap) * u64::from(capacity) + u64::from(fresh_cell);
    plant(stale_seq);
    plant(fresh_seq);
    let scan = FlightRing::scan(&*device, 0).expect("scan");
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, [fresh_seq], "stale lap must not splice into history");
    assert_eq!(scan.stale_cells, 1);
    assert_eq!(scan.torn_cells, 0);
    // Reopening resumes after the true maximum, not the stale record.
    let ring = FlightRing::open(Arc::clone(&device), 0).expect("reopen");
    ring.append(FlightEventKind::RecoveryStart, 0, u32::MAX, 0, 0, 0);
    assert_eq!(
        ring.read_all().expect("rescan").max_seq(),
        Some(fresh_seq + 1)
    );
}

#[test]
fn exact_capacity_multiple_grid_keeps_one_whole_lap() {
    for &capacity in &[2u32, 5, 8] {
        for &laps in &[1u64, 2, 3, 7] {
            check_exact_capacity_multiple_wrap(laps, capacity);
            check_lap_boundary_crash_keeps_previous_lap(laps, capacity);
        }
    }
}

#[test]
fn stale_lap_grid_rejects_resurrected_cells() {
    for &capacity in &[2u32, 4, 9] {
        for cell in [0, capacity / 2, capacity - 1] {
            for &lap_gap in &[1u64, 2, 5] {
                check_stale_lap_cell_is_rejected(capacity, cell, lap_gap);
            }
        }
    }
}

#[test]
fn fuse_crash_grid_always_yields_valid_prefix() {
    for &capacity in &[4u32, 7, 16] {
        for &total in &[1u64, 3, 8, 23] {
            for survivors in [0, total / 2, total.saturating_sub(1)] {
                if survivors < total {
                    check_fuse_crash_leaves_valid_prefix(total, survivors, capacity);
                }
            }
        }
    }
}

#[test]
fn adversarial_crash_grid_never_fabricates_records() {
    for &capacity in &[4u32, 9] {
        for &appended in &[2u64, 6, 15] {
            for seed in 0..4u64 {
                check_adversarial_crash_never_fabricates(appended, capacity, seed);
            }
        }
    }
}

#[test]
fn partial_wrap_grid_keeps_newest_window() {
    for &capacity in &[2u32, 5, 8] {
        for &total in &[1u64, 5, 8, 21] {
            check_partial_wrap_keeps_newest(total, capacity);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_fuse_crash_leaves_valid_prefix(
        total in 1u64..40,
        survivor_frac in 0u64..100,
        capacity in 2u32..24,
    ) {
        let survivors = survivor_frac * (total - 1) / 100;
        check_fuse_crash_leaves_valid_prefix(total, survivors.min(total - 1), capacity);
    }

    #[test]
    fn prop_adversarial_crash_never_fabricates(
        appended in 1u64..32,
        capacity in 2u32..16,
        seed in 0u64..1_000_000,
    ) {
        check_adversarial_crash_never_fabricates(appended, capacity, seed);
    }

    #[test]
    fn prop_partial_wrap_keeps_newest(total in 1u64..64, capacity in 2u32..16) {
        check_partial_wrap_keeps_newest(total, capacity);
    }

    #[test]
    fn prop_exact_capacity_multiple_keeps_one_lap(laps in 1u64..6, capacity in 2u32..16) {
        check_exact_capacity_multiple_wrap(laps, capacity);
        check_lap_boundary_crash_keeps_previous_lap(laps, capacity);
    }

    #[test]
    fn prop_stale_lap_cell_is_rejected(
        capacity in 2u32..16,
        cell_pick in 0u32..1000,
        lap_gap in 1u64..6,
    ) {
        check_stale_lap_cell_is_rejected(capacity, cell_pick % capacity, lap_gap);
    }
}

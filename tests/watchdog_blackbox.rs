//! End-to-end SLO watchdog exercise: a deliberately throttled workload
//! must trip the stall-fraction SLO, and the captured black-box bundle
//! must be complete — violation report, both metric expositions, a
//! Chrome trace whose lanes show the hierarchical span attribution
//! (engine phase lane + per-writer + per-stripe-member child lanes), and
//! the monitor crate's forensic audit as the flight dump.
//!
//! The trace-shape criterion is checked against the raw event stream:
//! for a committed checkpoint, the union of its writer child spans
//! (max child end − min child start) must cover the parent `Persist`
//! phase to within 10%, i.e. the children genuinely account for the
//! parent's wall-clock rather than being decorative.

use std::sync::Arc;

use pccheck::{CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_monitor::{armed_watchdog, SloConfig};
use pccheck_telemetry::{
    validate_prometheus_text, EventKind, Phase, Telemetry, TelemetryIoObserver, BLACKBOX_SCHEMA,
};
use pccheck_util::{Bandwidth, ByteSize};

#[test]
fn watchdog_fires_on_stall_and_bundle_has_hierarchical_trace() {
    let out_dir = std::env::temp_dir().join(format!("pccheck-blackbox-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);

    // A 2 MiB state over a throttled 2-way stripe: writer I/O dominates
    // every checkpoint, and checkpointing each iteration with N=1 turns
    // that I/O time into training-thread stall.
    let state = ByteSize::from_mb_u64(2);
    let cap = CheckpointStore::required_capacity(state, 2) + ByteSize::from_kb(4);
    let member_cfg = DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(32.0),
        throttled: true,
    };
    let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
        .map(|_| Arc::new(SsdDevice::new(member_cfg.clone())) as Arc<dyn PersistentDevice>)
        .collect();
    let striped = Arc::new(StripedDevice::new(members, ByteSize::from_kb(64)));
    let telemetry = Telemetry::enabled();
    striped.set_io_observer(Arc::new(TelemetryIoObserver::new(telemetry.clone())));
    let device: Arc<dyn PersistentDevice> = striped;

    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(state, 5),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(1)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(64))
            .dram_chunks(8)
            .build()
            .expect("valid config"),
        Arc::clone(&device),
        gpu.state_size(),
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());

    let wd = armed_watchdog(
        device,
        telemetry.clone(),
        SloConfig {
            max_stall_fraction: Some(0.05),
            ..SloConfig::default()
        },
        &out_dir,
    );

    // Back-to-back checkpoints: with N=1 every call after the first blocks
    // in the ticket wait for the whole throttled persist of its
    // predecessor, which is exactly the training-thread stall the SLO
    // meters. (Interleaving `gpu.update()` would shift the blocking into
    // the weights write-lock instead, which the stall histogram — by
    // design — does not attribute to `checkpoint()`.)
    gpu.update();
    for iter in 1..=3u64 {
        engine.checkpoint(&gpu, iter);
    }
    engine.drain();

    // 1. The injected stall trips the SLO.
    let violations = wd.check_now();
    assert!(
        !violations.is_empty(),
        "throttled workload must violate the stall SLO"
    );

    // 2. The bundle is complete and each artifact is well-formed.
    let bundle = wd.last_bundle().expect("bundle captured");
    for file in [
        "violation.json",
        "metrics.prom",
        "metrics.json",
        "trace.json",
        "flight.txt",
    ] {
        let body = std::fs::read_to_string(bundle.join(file))
            .unwrap_or_else(|e| panic!("missing {file}: {e}"));
        assert!(!body.is_empty(), "{file} is empty");
    }
    let vjson = std::fs::read_to_string(bundle.join("violation.json")).unwrap();
    assert!(vjson.contains(BLACKBOX_SCHEMA));
    assert!(vjson.contains("stall_fraction"));
    let prom = std::fs::read_to_string(bundle.join("metrics.prom")).unwrap();
    assert!(
        validate_prometheus_text(&prom).is_ok(),
        "prom exposition parses"
    );
    let flight = std::fs::read_to_string(bundle.join("flight.txt")).unwrap();
    assert!(
        flight.contains("forensic audit"),
        "flight dump is the monitor crate's audit, got: {flight}"
    );

    // 3. The windowed Chrome trace shows the hierarchy: an engine phase
    //    lane plus named child lanes for both writers and both stripe
    //    members (>= 3 lanes total; actor lanes start at tid 900000).
    let trace = std::fs::read_to_string(bundle.join("trace.json")).unwrap();
    assert!(
        trace.contains("\"cat\":\"phase\""),
        "engine span lane present"
    );
    for actor in ["writer-0", "writer-1", "stripe-0", "stripe-1"] {
        assert!(
            trace.contains(&format!("\"name\":\"{actor}\"")),
            "missing child lane {actor}"
        );
    }
    for tid in 900_000u64..900_003 {
        assert!(
            trace.contains(&format!("\"tid\":{tid}")),
            "lane {tid} missing"
        );
    }
    assert!(
        trace.contains("\"parent_span\":"),
        "children carry parent ids"
    );

    // 4. Child spans account for the parent: for every span that has both
    //    a Persist phase and two writer children, the union of the writer
    //    spans covers the Persist duration to within 10%.
    let events = telemetry.events();
    let mut checked = 0usize;
    for e in &events {
        let EventKind::PhaseDone {
            phase: Phase::Persist,
            start_nanos: _,
            dur_nanos,
        } = e.kind
        else {
            continue;
        };
        let writers: Vec<(u64, u64)> = events
            .iter()
            .filter(|w| w.span == e.span)
            .filter_map(|w| match &w.kind {
                EventKind::ActorSpan {
                    actor,
                    start_nanos,
                    dur_nanos,
                    ..
                } if actor.starts_with("writer-") => Some((*start_nanos, *dur_nanos)),
                _ => None,
            })
            .collect();
        if writers.len() < 2 {
            continue;
        }
        let first_start = writers.iter().map(|(s, _)| *s).min().unwrap();
        let last_end = writers.iter().map(|(s, d)| s + d).max().unwrap();
        let union = last_end - first_start;
        let slack = dur_nanos / 10;
        assert!(
            union <= dur_nanos + slack && union + slack >= dur_nanos,
            "writer union {union}ns vs parent Persist {dur_nanos}ns exceeds 10%"
        );
        checked += 1;
    }
    assert!(checked >= 1, "at least one commit must be checked");

    let _ = std::fs::remove_dir_all(&out_dir);
}

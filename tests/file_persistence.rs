//! Cross-"process" persistence: stores on [`FileDevice`] survive closing
//! every handle and reopening from the path — the property a production
//! user relies on across real restarts.

use std::path::PathBuf;
use std::sync::Arc;

use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, FileDevice, PersistentDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

const STATE: u64 = 64 * 1024;
const SLOTS: u32 = 3;

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pccheck-file-persistence");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir.join(name)
}

fn device_config() -> DeviceConfig {
    let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(STATE), SLOTS)
        + ByteSize::from_kb(4);
    DeviceConfig::fast_for_tests(cap)
}

fn engine_over(device: Arc<dyn PersistentDevice>, fresh: bool) -> PcCheckEngine {
    let config = PcCheckConfig::builder()
        .max_concurrent((SLOTS - 1) as usize)
        .writer_threads(2)
        .chunk_size(ByteSize::from_kb(8))
        .dram_chunks(8)
        .build()
        .expect("valid");
    if fresh {
        PcCheckEngine::new(config, device, ByteSize::from_bytes(STATE)).expect("engine")
    } else {
        let store = CheckpointStore::open(device).expect("reopen");
        PcCheckEngine::with_store(config, Arc::new(store)).expect("engine")
    }
}

#[test]
fn checkpoints_survive_full_reopen_cycles() {
    let path = tmpfile("reopen-cycles.img");
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 42),
    );
    let mut iter = 0u64;
    for generation in 0..3 {
        // Open (or create) the store fresh, like a new process would.
        let device: Arc<dyn PersistentDevice> = Arc::new(if generation == 0 {
            FileDevice::create(&path, device_config()).expect("create")
        } else {
            FileDevice::open(&path, device_config()).expect("open")
        });
        let engine = engine_over(device, generation == 0);
        if generation > 0 {
            // The engine carries the previous generation's last commit.
            assert_eq!(
                engine.last_committed().expect("carried").iteration,
                iter,
                "generation {generation}"
            );
        }
        for _ in 0..4 {
            iter += 1;
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        // Engine and device handles drop here: the "process" exits.
    }

    // Final recovery from nothing but the file path.
    let device: Arc<dyn PersistentDevice> =
        Arc::new(FileDevice::open(&path, device_config()).expect("open"));
    let rec = recovery::recover(device).expect("recoverable");
    assert_eq!(rec.iteration, 12);
    let layout = gpu.with_weights(|s| s.layout());
    recovery::verify_against_state(&rec, &layout).expect("digest verifies");
    let fresh = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 0),
    );
    rec.restore_into(&fresh);
    assert_eq!(fresh.digest(), gpu.digest());
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_between_generations_keeps_last_synced_state() {
    let path = tmpfile("crash-gen.img");
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 7),
    );
    {
        let dev = Arc::new(FileDevice::create(&path, device_config()).expect("create"));
        let device: Arc<dyn PersistentDevice> = dev.clone();
        let engine = engine_over(device, true);
        for iter in 1..=3 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        // Power failure: the page-cache overlay is gone; the file survives.
        dev.crash_now();
    }
    let device: Arc<dyn PersistentDevice> =
        Arc::new(FileDevice::open(&path, device_config()).expect("open"));
    let rec = recovery::recover(device).expect("recoverable");
    assert_eq!(rec.iteration, 3);
    let layout = gpu.with_weights(|s| s.layout());
    recovery::verify_against_state(&rec, &layout).expect("verified");
    std::fs::remove_file(&path).ok();
}

#[test]
fn history_is_readable_from_a_cold_open() {
    let path = tmpfile("history.img");
    {
        let device: Arc<dyn PersistentDevice> =
            Arc::new(FileDevice::create(&path, device_config()).expect("create"));
        let engine = engine_over(device, true);
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(STATE), 9),
        );
        for iter in 1..=3 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
    }
    let device: Arc<dyn PersistentDevice> =
        Arc::new(FileDevice::open(&path, device_config()).expect("open"));
    let store = CheckpointStore::open(device).expect("open store");
    let history = store.history().expect("history");
    assert_eq!(history.len(), 3);
    assert_eq!(history.last().expect("non-empty").iteration, 3);
    std::fs::remove_file(&path).ok();
}

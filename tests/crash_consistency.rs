//! Crash-consistency property tests: no matter when the crash happens —
//! and even under the adversarial cache-line-granular crash policy — the
//! recovery invariant holds: once any checkpoint has committed, recovery
//! yields a *complete, verified* checkpoint whose iteration never goes
//! backwards across crashes.

use std::sync::Arc;

use proptest::prelude::*;

use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError};
use pccheck_device::{CrashPolicy, DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

const STATE: u64 = 4096;

fn run_with_crash(
    crash_after_ckpt: usize,
    drain_before_crash: bool,
    policy: CrashPolicy,
    seed: u64,
) -> Result<u64, PccheckError> {
    let size = ByteSize::from_bytes(STATE);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, seed),
    );
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::with_crash_policy(
        DeviceConfig::fast_for_tests(cap),
        policy,
    ));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(512))
            .dram_chunks(6)
            .build()?,
        dev,
        size,
    )?;

    let mut issued = 0usize;
    for iter in 1..=10u64 {
        gpu.update();
        engine.checkpoint(&gpu, iter);
        issued += 1;
        if issued == crash_after_ckpt {
            break;
        }
    }
    if drain_before_crash {
        engine.drain();
    }
    ssd.crash_now();
    engine.drain(); // background workers observe the crash and bail
    ssd.recover();
    let rec = recovery::recover(ssd)?;
    // Verify the payload end to end against the state layout.
    let layout = gpu.with_weights(|s| s.layout());
    recovery::verify_against_state(&rec, &layout)?;
    Ok(rec.iteration)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drained checkpoints always recover exactly; the iteration equals the
    /// last drained boundary.
    #[test]
    fn drained_checkpoints_always_recover(k in 1usize..8, seed in any::<u64>()) {
        let iter = run_with_crash(k, true, CrashPolicy::DropUnpersisted, seed)
            .expect("drained checkpoint must recover");
        prop_assert_eq!(iter, k as u64);
    }

    /// Crashing with checkpoints still in flight recovers to SOME earlier
    /// committed checkpoint — never a torn one (verification would fail) —
    /// or reports NoCheckpoint if the crash beat the very first commit.
    #[test]
    fn inflight_crash_recovers_to_valid_prefix(k in 1usize..8, seed in any::<u64>()) {
        match run_with_crash(k, false, CrashPolicy::DropUnpersisted, seed) {
            Ok(iter) => prop_assert!(iter <= k as u64, "recovered {iter} > issued {k}"),
            Err(PccheckError::NoCheckpoint) => {} // crash won the race; fine
            Err(e) => prop_assert!(false, "unexpected recovery failure: {e}"),
        }
    }

    /// The adversarial policy (unfenced cache lines may survive) must never
    /// produce a checkpoint that passes verification but holds wrong data:
    /// verification is part of recovery here, so any Ok result is genuine.
    #[test]
    fn adversarial_crashes_never_yield_torn_checkpoints(
        k in 1usize..6,
        drain in proptest::bool::ANY,
        seed in any::<u64>(),
    ) {
        match run_with_crash(k, drain, CrashPolicy::RandomPartial { seed }, seed) {
            Ok(iter) => prop_assert!(iter <= k as u64),
            Err(PccheckError::NoCheckpoint) => prop_assert!(!drain,
                "a drained checkpoint must survive even adversarial crashes"),
            Err(PccheckError::CorruptCheckpoint { .. }) => prop_assert!(
                false,
                "recovery must never select a checkpoint that fails verification"
            ),
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

#[test]
fn repeated_crash_recover_cycles_never_regress() {
    // Alternate training/checkpointing with crashes; the recovered
    // iteration must be monotonically non-decreasing across cycles.
    let size = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, 7),
    );

    let mut last_recovered = 0u64;
    let mut iter = 0u64;
    for cycle in 0..5 {
        let dev: Arc<dyn PersistentDevice> = ssd.clone();
        let store = if cycle == 0 {
            CheckpointStore::format(dev, size, 3).expect("format")
        } else {
            CheckpointStore::open(dev).expect("reopen")
        };
        let engine = PcCheckEngine::with_store(
            PcCheckConfig::builder()
                .max_concurrent(2)
                .writer_threads(2)
                .chunk_size(ByteSize::from_bytes(512))
                .dram_chunks(6)
                .build()
                .expect("valid"),
            Arc::new(store),
        )
        .expect("engine");
        for _ in 0..3 {
            iter += 1;
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd.clone()).expect("recoverable");
        assert!(
            rec.iteration >= last_recovered,
            "cycle {cycle}: regressed from {last_recovered} to {}",
            rec.iteration
        );
        last_recovered = rec.iteration;
    }
    assert_eq!(last_recovered, 15);
}

/// Pinned-crash-point forensics: at every protocol step the auditor's
/// verdict — taken from the frozen device *before* power-on — must agree
/// with what recovery then actually restores, and must classify the
/// interrupted checkpoint by the exact phase the crash caught it in.
#[test]
fn forensic_verdicts_match_actual_recovery_at_every_crash_point() {
    use pccheck_harness::forensics_run::{run_crash_scenario, CrashPoint, ForensicsRunConfig};
    use pccheck_monitor::{CheckpointVerdict, InFlightPhase};

    let cfg = ForensicsRunConfig::default();
    for point in CrashPoint::ALL {
        let run = run_crash_scenario(point, &cfg).expect("scenario runs");
        assert!(
            run.report.is_clean(),
            "{point}: protocol invariants must hold:\n{}",
            run.report.render()
        );
        // The audit's predicted recovery target is what recovery restored.
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter),
            "{point}: audit and recovery disagree"
        );
        let verdict = run
            .report
            .checkpoints
            .get(&run.crashed_counter)
            .expect("interrupted checkpoint is in the report");
        match point {
            CrashPoint::ClaimPublish => assert!(
                // The crash landed between the slot claim and any
                // subsequent write: the durable state word alone carries
                // the evidence, and the auditor synthesizes a Begun
                // in-flight verdict from it.
                matches!(
                    verdict,
                    CheckpointVerdict::InFlight {
                        phase: InFlightPhase::Begun,
                        ..
                    }
                ),
                "{point}: {verdict:?}"
            ),
            CrashPoint::DuringCopy => assert!(
                matches!(
                    verdict,
                    CheckpointVerdict::InFlight {
                        phase: InFlightPhase::Begun,
                        ..
                    }
                ),
                "{point}: {verdict:?}"
            ),
            CrashPoint::DuringPersist => assert!(
                matches!(
                    verdict,
                    CheckpointVerdict::InFlight {
                        phase: InFlightPhase::Copied,
                        ..
                    }
                ),
                "{point}: {verdict:?}"
            ),
            CrashPoint::BetweenPersistAndCommit => assert!(
                matches!(
                    verdict,
                    CheckpointVerdict::InFlight {
                        phase: InFlightPhase::Persisted,
                        ..
                    }
                ),
                "{point}: {verdict:?}"
            ),
            CrashPoint::AfterCommit => {
                assert!(
                    matches!(
                        verdict,
                        CheckpointVerdict::Committed {
                            payload_valid: true,
                            ..
                        }
                    ),
                    "{point}: {verdict:?}"
                );
                assert_eq!(run.recovered.counter, run.crashed_counter);
            }
            CrashPoint::DeltaChain => {
                // The stranded second delta died with its payload durable
                // but no meta, and recovery must land on the committed
                // *delta* head — replayed through its chain.
                assert!(
                    matches!(
                        verdict,
                        CheckpointVerdict::InFlight {
                            phase: InFlightPhase::Persisted,
                            ..
                        }
                    ),
                    "{point}: {verdict:?}"
                );
                assert!(
                    run.report
                        .expected_recovery
                        .as_ref()
                        .is_some_and(|m| m.is_delta()),
                    "{point}: recovery target must be a delta checkpoint"
                );
            }
        }
    }
}

/// The auditor also understands stores the *engine* wrote: run a real
/// concurrent engine on a flight-enabled store, crash it mid-flight, and
/// the audit must stay invariant-clean with its expected-recovery target
/// matching actual recovery.
#[test]
fn engine_crash_with_flight_ring_audits_clean() {
    let size = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity_with_flight(size, 3, 128) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, 11),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(512))
            .dram_chunks(6)
            .flight_records(128)
            .build()
            .expect("valid"),
        dev,
        size,
    )
    .expect("engine");
    for iter in 1..=6u64 {
        gpu.update();
        engine.checkpoint(&gpu, iter);
    }
    ssd.crash_now();
    engine.drain();

    let report = pccheck_monitor::audit(ssd.clone()).expect("audit");
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.ring_records > 0, "engine wrote flight records");

    ssd.recover();
    match recovery::recover(ssd) {
        Ok(rec) => assert_eq!(
            report.expected_recovery.map(|m| m.iteration),
            Some(rec.iteration)
        ),
        Err(PccheckError::NoCheckpoint) => {
            assert!(report.expected_recovery.is_none());
        }
        Err(e) => panic!("unexpected recovery failure: {e}"),
    }
}

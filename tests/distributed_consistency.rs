//! Distributed (pipeline-parallel) checkpoint consistency: N nodes each
//! checkpoint their shard concurrently; the coordinator keeps the globally
//! consistent id in agreement, and a cluster-wide failure recovers every
//! shard at the same iteration.

use std::sync::Arc;

use pccheck::distributed::CoordinatorHub;
use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

const SHARD: u64 = 32 * 1024;

fn node_devices(nodes: usize) -> Vec<Arc<SsdDevice>> {
    (0..nodes)
        .map(|_| {
            let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(SHARD), 3)
                + ByteSize::from_kb(4);
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
        })
        .collect()
}

fn run_cluster(nodes: usize, iterations: u64, interval: u64) -> Vec<Arc<SsdDevice>> {
    let hub = Arc::new(CoordinatorHub::new(nodes));
    let devices = node_devices(nodes);
    let handles: Vec<_> = devices
        .iter()
        .enumerate()
        .map(|(rank, ssd)| {
            let hub = Arc::clone(&hub);
            let ssd = Arc::clone(ssd);
            std::thread::spawn(move || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(ByteSize::from_bytes(SHARD), rank as u64),
                );
                let engine = PcCheckEngine::new(
                    PcCheckConfig::builder()
                        .max_concurrent(2)
                        .writer_threads(2)
                        .chunk_size(ByteSize::from_kb(4))
                        .dram_chunks(8)
                        .build()
                        .expect("valid"),
                    ssd as Arc<dyn PersistentDevice>,
                    gpu.state_size(),
                )
                .expect("engine");
                for iter in 1..=iterations {
                    gpu.update();
                    if iter % interval == 0 {
                        engine.checkpoint(&gpu, iter);
                        engine.drain();
                        hub.report_and_wait(rank, iter).expect("agreement");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("node thread");
    }
    assert_eq!(hub.completed_rounds(), iterations / interval);
    devices
}

#[test]
fn all_shards_recover_to_the_same_iteration() {
    let devices = run_cluster(4, 12, 4);
    let mut recovered = Vec::new();
    for ssd in devices {
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("shard recoverable");
        recovered.push(rec.iteration);
    }
    assert!(
        recovered.windows(2).all(|w| w[0] == w[1]),
        "shards diverged: {recovered:?}"
    );
    assert_eq!(recovered[0], 12);
}

#[test]
fn two_node_cluster_many_rounds() {
    let devices = run_cluster(2, 30, 3);
    for ssd in devices {
        ssd.crash_now();
        ssd.recover();
        assert_eq!(recovery::recover(ssd).expect("recoverable").iteration, 30);
    }
}

#[test]
fn shard_contents_are_independent_but_consistent() {
    // Different seeds per node: shards differ in content, agree in
    // iteration, and restore each node's distinct state.
    let devices = run_cluster(3, 6, 2);
    let mut digests = Vec::new();
    for (rank, ssd) in devices.into_iter().enumerate() {
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("recoverable");
        assert_eq!(rec.iteration, 6);
        let fresh = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(SHARD), rank as u64),
        );
        // Replaying each node's training stream reaches the same digest.
        for _ in 0..6 {
            fresh.update();
        }
        let expected = fresh.digest();
        let restored = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(SHARD), 99),
        );
        rec.restore_into(&restored);
        assert_eq!(restored.digest(), expected, "node {rank}");
        digests.push(expected);
    }
    // Shards genuinely differ across nodes.
    assert_ne!(digests[0], digests[1]);
    assert_ne!(digests[1], digests[2]);
}

//! Cross-validation of the parallel restore pipeline: recovering the same
//! device with four readers and with one reader must produce bit-identical
//! checkpoints — for plain full checkpoints (digest-table path) and for
//! base + delta chains (parallel layer fetch + extent replay).

use std::sync::Arc;

use pccheck::{
    recover_instrumented_with, recovery, CheckpointStore, DeltaOutcome, DeltaPolicy,
    PersistPipeline, PipelineCtx, RestoreOptions,
};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::ByteSize;

const STATE: u64 = 8 * 1024;
const MAX_CHAIN: u32 = 3;

fn store_on(slots: u32) -> (Arc<SsdDevice>, Arc<CheckpointStore>) {
    let size = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity(size, slots) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let store = Arc::new(CheckpointStore::format(dev, size, slots).expect("format"));
    (ssd, store)
}

fn pipeline_for(store: &Arc<CheckpointStore>) -> PersistPipeline {
    PersistPipeline::new(Arc::clone(store))
        .with_writers(2)
        .with_staging(HostBufferPool::new(ByteSize::from_bytes(512), 8))
}

fn sequential() -> RestoreOptions {
    RestoreOptions {
        readers: 1,
        probe: 1,
        job: None,
    }
}

fn parallel() -> RestoreOptions {
    RestoreOptions {
        readers: 4,
        probe: 2,
        job: None,
    }
}

#[test]
fn parallel_and_sequential_recovery_agree_on_full_checkpoints() {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 17),
    );
    gpu.update();

    let (ssd, store) = store_on(2);
    let pipe = pipeline_for(&store);
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    for iter in 1..=3u64 {
        if iter > 1 {
            gpu.update();
        }
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipe.lease(ctx);
        let persist_start = pipe
            .copy_streamed(ctx, &guard, &lease, total)
            .expect("full copy");
        drop(guard);
        pipe.seal(ctx, &lease, iter, total, persist_start)
            .expect("seal");
        pipe.commit(ctx, lease, iter, total.as_u64(), digest.0)
            .expect("commit");
    }
    drop(pipe);

    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let (par, par_trace) =
        recover_instrumented_with(Arc::clone(&dev), &telemetry, parallel()).expect("parallel");
    let (seq, seq_trace) =
        recover_instrumented_with(dev, &telemetry, sequential()).expect("sequential");

    assert_eq!(par.iteration, 3);
    assert_eq!(par.iteration, seq.iteration);
    assert_eq!(par.counter, seq.counter);
    assert_eq!(par.digest, seq.digest);
    assert_eq!(
        par.payload, seq.payload,
        "reader fan-out must not change a single byte"
    );
    assert_eq!(par_trace.chain_links, 0);
    assert_eq!(par_trace.chain_links, seq_trace.chain_links);

    // The pre-pipeline entry point agrees too.
    let baseline = recovery::recover(ssd).expect("plain recover");
    assert_eq!(baseline.payload, par.payload);
}

#[test]
fn parallel_and_sequential_recovery_agree_on_delta_chains() {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 23),
    );
    gpu.update();

    let (ssd, store) = store_on(MAX_CHAIN + 2);
    let pipe = pipeline_for(&store);
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    let policy = DeltaPolicy {
        max_dirty_ratio: 0.5,
        max_chain: MAX_CHAIN,
    };

    let mut saw_delta = false;
    for iter in 1..=4u64 {
        if iter > 1 {
            gpu.update_sparse(0.10);
        }
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let (_, kind) = pipe
            .checkpoint_delta(ctx, &guard, iter, digest.0, policy)
            .expect("delta checkpoint");
        drop(guard);
        saw_delta |= matches!(kind, DeltaOutcome::Delta { .. });
    }
    assert!(saw_delta, "the sparse run must exercise the delta path");
    drop(pipe);

    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let (par, par_trace) =
        recover_instrumented_with(Arc::clone(&dev), &telemetry, parallel()).expect("parallel");
    let (seq, seq_trace) =
        recover_instrumented_with(dev, &telemetry, sequential()).expect("sequential");

    assert_eq!(par.iteration, 4);
    assert!(par_trace.chain_links >= 1, "head must be a delta");
    assert_eq!(par_trace.chain_links, seq_trace.chain_links);
    assert_eq!(par.counter, seq.counter);
    assert_eq!(
        par.payload, seq.payload,
        "parallel delta replay must reproduce the sequential bytes"
    );

    // Both land on a GPU identical to the live weights.
    let live = gpu.with_weights(|w| w.digest());
    let restored = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 99),
    );
    restored.restore(&par.payload, par.iteration);
    assert_eq!(restored.with_weights(|w| w.digest()), live);
}

//! End-to-end critical-path profiler: a real checkpointed run through the
//! canonical profiled workload must yield a ledger whose writer legs
//! account for the Persist span, the differ must flag a throttled run with
//! the right blame, and the checked-in CI baseline must both parse and
//! accept a healthy run in shares mode — the exact sequence the
//! `profile-regression` CI job executes through `pccheckctl`.

use pccheck_harness::profile_run::{archive, run_profiled, ProfileRunConfig};
use pccheck_telemetry::{
    diff_profiles, render_diff, render_profile, DiffMode, DiffThresholds, RunProfile,
};

/// Coverage floor for the e2e check (the bench gates the acceptance 0.9
/// on the median of several reps; a single test rep gets a small cushion).
const COVERAGE_FLOOR: f64 = 0.85;

#[test]
fn profiled_run_attributes_persist_time_to_writer_legs() {
    // The CI-gate geometry: throttled so Persist dominates and thread
    // scheduling noise is small relative to the persist window.
    let run = run_profiled("e2e_coverage", &ProfileRunConfig::ci_gate()).expect("profiled run");
    assert!(run.profile.commits >= 3, "{:?}", run.profile);
    let coverage = run
        .profile
        .persist_coverage_median
        .expect("striped run reports persist coverage");
    assert!(
        coverage >= COVERAGE_FLOOR,
        "writer-leg union covers {coverage:.3} of the Persist span (floor {COVERAGE_FLOOR})"
    );
    assert!(
        run.profile.writer_imbalance_median.is_some(),
        "multi-writer run reports imbalance"
    );
    assert!(
        run.profile.critical_share("persist") > 0.0,
        "persist must appear on the critical path"
    );
    // The console view names the run and its heaviest actors.
    let text = render_profile(&run.profile);
    assert!(text.contains("e2e_coverage"));
    assert!(text.contains("persist"));
}

#[test]
fn differ_flags_throttled_run_and_passes_self_diff() {
    let fast = run_profiled("e2e_fast", &ProfileRunConfig::default()).expect("fast run");
    let slow = run_profiled(
        "e2e_slow",
        &ProfileRunConfig {
            // Deep throttle: ~16 ms persist per commit, so the contrast
            // against the fast arm dwarfs scheduler noise even when the
            // suite's tests time-share a single core.
            member_mb_per_sec: Some(4.0),
            ..ProfileRunConfig::default()
        },
    )
    .expect("throttled run");
    let th = DiffThresholds::default();

    let flagged = diff_profiles(&fast.profile, &slow.profile, DiffMode::Absolute, &th);
    assert!(flagged.regressed, "throttled run must flag");
    assert_eq!(
        flagged.blamed_phase.as_deref(),
        Some("persist"),
        "blame lands on the persist phase"
    );
    let actor = flagged
        .blamed_actor
        .clone()
        .expect("persist blame names the heaviest device/writer lane");
    assert!(
        actor.starts_with("writer-") || actor.starts_with("stripe-"),
        "blamed actor {actor:?} is a persist-side lane"
    );
    assert!(render_diff(&flagged).contains("REGRESSION"));

    let clean = diff_profiles(&fast.profile, &fast.profile, DiffMode::Absolute, &th);
    assert!(!clean.regressed, "self-diff must be clean");
    assert!(render_diff(&clean).contains("PASS"));
}

#[test]
fn archive_roundtrips_profiles_through_disk() {
    let run = run_profiled("e2e_archive", &ProfileRunConfig::default()).expect("profiled run");
    let archive = archive().expect("open archive");
    let path = archive.store(&run.profile).expect("store profile");
    assert!(path.ends_with("e2e_archive.profile.json"));
    // The stored document parses standalone, exactly as `pccheckctl
    // profile <file>` loads it.
    let text = std::fs::read_to_string(&path).expect("read stored profile");
    let parsed = RunProfile::from_json(&text).expect("stored profile parses");
    assert_eq!(parsed.run, "e2e_archive");
    assert_eq!(parsed.commits, run.profile.commits);
    assert_eq!(parsed.phases.len(), run.profile.phases.len());
    let _ = std::fs::remove_file(path);
}

#[test]
fn ci_baseline_parses_and_accepts_a_healthy_run_in_shares_mode() {
    // Under cargo the manifest dir is the repo root; a bare `rustc --test`
    // build (offline verification) runs from the repo root instead.
    let root = option_env!("CARGO_MANIFEST_DIR").unwrap_or(".");
    let text = std::fs::read_to_string(format!("{root}/results/profiles/baseline.profile.json"))
        .expect("checked-in baseline exists");
    let baseline = RunProfile::from_json(&text).expect("baseline parses");
    assert_eq!(baseline.run, "baseline");
    // The envelope is deliberately generous: persist's allowed share is
    // high enough that the dominant phase can never false-positive.
    assert!(baseline.critical_share("persist") >= 0.8);

    let healthy = run_profiled("e2e_ci_gate", &ProfileRunConfig::ci_gate()).expect("gate run");
    let d = diff_profiles(
        &baseline,
        &healthy.profile,
        DiffMode::Shares,
        &DiffThresholds::default(),
    );
    assert!(
        !d.regressed,
        "healthy gate run must pass the shares envelope: {}",
        render_diff(&d)
    );
}

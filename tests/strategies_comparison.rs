//! All five checkpointing strategies behind the same `Checkpointer` trait:
//! every one produces recoverable, bit-exact checkpoints; their *scheduling*
//! differences (who stalls) are what the experiments measure.

use std::sync::Arc;

use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_baselines::{
    CheckFreqCheckpointer, GeminiCheckpointer, GpmCheckpointer, TraditionalCheckpointer,
};
use pccheck_device::{DeviceConfig, NetworkConfig, NetworkLink, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingLoop, TrainingState};
use pccheck_util::{ByteSize, SimDuration};

const SIZE: u64 = 96 * 1024;

fn fresh_gpu(seed: u64) -> Gpu {
    Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(SIZE), seed),
    )
}

fn fresh_ssd(slots: u32) -> Arc<SsdDevice> {
    let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(SIZE), slots)
        + ByteSize::from_kb(4);
    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
}

fn run_training(gpu: &Gpu, ckpt: &dyn Checkpointer) {
    let lp = TrainingLoop::new(gpu.clone(), SimDuration::ZERO).with_interval(3);
    let report = lp.run(9, ckpt);
    assert_eq!(report.checkpoints_requested, 3);
}

#[test]
fn storage_backed_strategies_all_recover_identically() {
    // Run the same deterministic workload under each strategy; all must
    // recover iteration 9 with the same digest.
    let reference = {
        let gpu = fresh_gpu(11);
        for _ in 0..9 {
            gpu.update();
        }
        gpu.digest()
    };

    // Traditional.
    {
        let gpu = fresh_gpu(11);
        let ssd = fresh_ssd(2);
        let ckpt = TraditionalCheckpointer::new(ssd.clone(), gpu.state_size()).expect("constructs");
        run_training(&gpu, &ckpt);
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("recoverable");
        assert_eq!(rec.iteration, 9);
        let fresh = fresh_gpu(0);
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), reference, "traditional");
    }

    // CheckFreq.
    {
        let gpu = fresh_gpu(11);
        let ssd = fresh_ssd(2);
        let ckpt = CheckFreqCheckpointer::new(ssd.clone(), gpu.state_size()).expect("constructs");
        run_training(&gpu, &ckpt);
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("recoverable");
        assert_eq!(rec.iteration, 9);
        let fresh = fresh_gpu(0);
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), reference, "checkfreq");
    }

    // GPM.
    {
        let gpu = fresh_gpu(11);
        let ssd = fresh_ssd(2);
        let ckpt = GpmCheckpointer::new(ssd.clone(), gpu.state_size()).expect("constructs");
        run_training(&gpu, &ckpt);
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("recoverable");
        assert_eq!(rec.iteration, 9);
        let fresh = fresh_gpu(0);
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), reference, "gpm");
    }

    // PCcheck.
    {
        let gpu = fresh_gpu(11);
        let ssd = fresh_ssd(3);
        let engine = PcCheckEngine::new(
            PcCheckConfig::builder()
                .max_concurrent(2)
                .writer_threads(2)
                .chunk_size(ByteSize::from_kb(16))
                .dram_chunks(8)
                .build()
                .expect("valid"),
            ssd.clone() as Arc<dyn PersistentDevice>,
            gpu.state_size(),
        )
        .expect("engine");
        run_training(&gpu, &engine);
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd).expect("recoverable");
        assert_eq!(rec.iteration, 9);
        let fresh = fresh_gpu(0);
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), reference, "pccheck");
    }

    // Gemini (remote DRAM instead of storage).
    {
        let gpu = fresh_gpu(11);
        let link = Arc::new(NetworkLink::new(
            NetworkConfig::fast_for_tests(),
            GeminiCheckpointer::required_remote_capacity(gpu.state_size()),
        ));
        let ckpt =
            GeminiCheckpointer::new(Arc::clone(&link), gpu.state_size()).expect("constructs");
        run_training(&gpu, &ckpt);
        let rec =
            GeminiCheckpointer::recover_from_remote(&link, gpu.state_size()).expect("recoverable");
        assert_eq!(rec.iteration, 9);
        let fresh = fresh_gpu(0);
        rec.restore_into(&fresh);
        assert_eq!(fresh.digest(), reference, "gemini");
    }
}

#[test]
fn strategy_names_are_distinct() {
    let gpu = fresh_gpu(1);
    let ssd = fresh_ssd(3);
    let names: Vec<String> = vec![
        TraditionalCheckpointer::new(fresh_ssd(2), gpu.state_size())
            .expect("traditional")
            .name()
            .into(),
        CheckFreqCheckpointer::new(fresh_ssd(2), gpu.state_size())
            .expect("checkfreq")
            .name()
            .into(),
        GpmCheckpointer::new(fresh_ssd(2), gpu.state_size())
            .expect("gpm")
            .name()
            .into(),
        PcCheckEngine::new(
            PcCheckConfig::default(),
            ssd as Arc<dyn PersistentDevice>,
            gpu.state_size(),
        )
        .expect("pccheck")
        .name()
        .into(),
    ];
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(unique.len(), names.len());
}

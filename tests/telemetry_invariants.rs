//! Event-stream invariants under concurrent checkpointing.
//!
//! With `max_concurrent > 1` several checkpoint spans are in flight at
//! once, recorded from the training thread, the engine's worker threads,
//! and the per-checkpoint writer threads. Whatever interleaving occurs,
//! the merged event stream must satisfy the lifecycle contract: every
//! `requested` span terminates exactly once, phase timestamps are
//! monotone, and the aggregate counters agree with the events.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pccheck::{recover_instrumented, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice, TieredDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{
    chrome_trace_annotated, validate_prometheus_text, EventKind, MetricsRegistry, SpanId,
    Telemetry, TelemetryIoObserver,
};
use pccheck_util::json::JsonValue;
use pccheck_util::ByteSize;

fn engine_with_telemetry(size: ByteSize, max_concurrent: usize) -> (PcCheckEngine, Telemetry) {
    let cap =
        CheckpointStore::required_capacity(size, max_concurrent as u32 + 1) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let telemetry = Telemetry::enabled();
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(max_concurrent)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .build()
            .expect("valid config"),
        device,
        size,
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());
    (engine, telemetry)
}

#[test]
fn concurrent_spans_terminate_exactly_once_with_monotone_phases() {
    let size = ByteSize::from_kb(64);
    let (engine, telemetry) = engine_with_telemetry(size, 3);
    let engine = Arc::new(engine);

    // Two driver threads issue interleaved checkpoints; with N=3 up to
    // three spans overlap, each fanning out to two writer threads.
    let drivers: Vec<_> = (0..2u64)
        .map(|d| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(ByteSize::from_kb(64), d + 1),
                );
                for i in 0..10u64 {
                    gpu.update();
                    engine.checkpoint(&gpu, d * 1000 + i + 1);
                }
            })
        })
        .collect();
    for d in drivers {
        d.join().expect("driver thread");
    }
    engine.try_drain().expect("no background errors");

    let events = telemetry.events();

    // Requested spans each see exactly one terminal event, and no event
    // references a span that was never requested.
    let mut requested: HashMap<SpanId, u64> = HashMap::new();
    let mut terminals: HashMap<SpanId, u64> = HashMap::new();
    for e in &events {
        match &e.kind {
            EventKind::Requested { .. } => {
                *requested.entry(e.span).or_default() += 1;
            }
            k if k.is_terminal() => {
                *terminals.entry(e.span).or_default() += 1;
            }
            _ => {
                assert!(
                    e.span.is_some(),
                    "span-scoped event without a span: {:?}",
                    e.kind
                );
            }
        }
    }
    assert_eq!(requested.len(), 20, "20 checkpoints requested");
    for (span, count) in &requested {
        assert_eq!(*count, 1, "span {span:?} requested once");
        assert_eq!(
            terminals.get(span),
            Some(&1),
            "span {span:?} must terminate exactly once"
        );
    }
    for span in terminals.keys() {
        assert!(
            requested.contains_key(span),
            "terminal for unknown span {span:?}"
        );
    }

    // Per-span timestamps are monotone in lifecycle order, the first
    // event of every span is its `requested`, and each phase's
    // start/duration is consistent with its completion stamp.
    let mut last_at: HashMap<SpanId, u64> = HashMap::new();
    for e in &events {
        if !e.span.is_some() {
            continue;
        }
        if !last_at.contains_key(&e.span) {
            assert!(
                matches!(e.kind, EventKind::Requested { .. }),
                "span {:?} starts with {:?}, not requested",
                e.span,
                e.kind
            );
        }
        let prev = last_at.entry(e.span).or_insert(0);
        assert!(
            e.at_nanos >= *prev,
            "span {:?} went back in time: {} < {}",
            e.span,
            e.at_nanos,
            prev
        );
        *prev = e.at_nanos;
        if let EventKind::PhaseDone {
            start_nanos,
            dur_nanos,
            ..
        } = e.kind
        {
            assert!(
                start_nanos <= e.at_nanos,
                "phase started after it completed"
            );
            assert!(
                start_nanos + dur_nanos <= e.at_nanos + 1_000_000,
                "phase duration extends past its completion stamp"
            );
        }
    }

    // Aggregates agree with the stream: all spans accounted for, and the
    // engine's own stats match the telemetry counters.
    let snap = telemetry.snapshot().expect("telemetry enabled");
    assert_eq!(snap.counters.requested, 20);
    assert_eq!(snap.counters.terminated(), 20);
    assert_eq!(snap.counters.in_flight(), 0);
    let stats = engine.stats().snapshot();
    assert_eq!(stats.requested, snap.counters.requested);
    assert_eq!(stats.committed, snap.counters.committed);
    assert_eq!(stats.superseded, snap.counters.superseded);
    assert_eq!(stats.failed, 0);
    assert!(snap.counters.committed >= 1, "some checkpoint must commit");
}

/// Drives racing checkpoint writers and live-store recovery readers
/// against `device`, then checks that every pressure gauge settles: the
/// in-flight gauge returns to zero, the device's live submission queues
/// are empty, and a final quiescent checkpoint re-samples the per-device
/// queue gauges back to zero.
fn gauges_drain_to_zero_on(device: Arc<dyn PersistentDevice>, expected_queues: usize) {
    let size = ByteSize::from_kb(64);
    let telemetry = Telemetry::enabled();
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(3)
            .writer_threads(1)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .build()
            .expect("valid config"),
        Arc::clone(&device),
        size,
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());
    let engine = Arc::new(engine);

    // Seed one committed checkpoint so the racing readers always find a
    // durable candidate.
    let seed_gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, 77),
    );
    seed_gpu.update();
    engine.checkpoint(&seed_gpu, 1);
    engine.try_drain().expect("seed checkpoint commits");

    let writers: Vec<_> = (0..2u64)
        .map(|d| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(ByteSize::from_kb(64), d + 1),
                );
                for i in 0..8u64 {
                    gpu.update();
                    engine.checkpoint(&gpu, (d + 1) * 1000 + i + 1);
                }
            })
        })
        .collect();
    let reader = {
        let device = Arc::clone(&device);
        let telemetry = telemetry.clone();
        std::thread::spawn(move || {
            // Live-store reads race the writers: a candidate overwritten
            // mid-read falls back to an older one or fails the attempt —
            // either way the recovery span must still terminate.
            for _ in 0..3 {
                let _ = recover_instrumented(Arc::clone(&device), &telemetry);
            }
        })
    };
    for w in writers {
        w.join().expect("writer thread");
    }
    reader.join().expect("reader thread");
    engine.try_drain().expect("no background errors");

    // One quiescent checkpoint after the drain: its single writer
    // re-samples every device-queue gauge with the queues idle.
    seed_gpu.update();
    engine.checkpoint(&seed_gpu, 9999);
    engine.try_drain().expect("quiescent checkpoint commits");

    let snap = telemetry.snapshot().expect("telemetry enabled");
    // 1 seed + 16 raced + 3 recoveries + 1 quiescent, all terminated.
    assert_eq!(snap.counters.requested, 21);
    assert_eq!(snap.counters.terminated(), 21);
    assert_eq!(snap.counters.in_flight(), 0);
    assert_eq!(snap.in_flight, 0, "in-flight gauge returns to zero");
    assert!(snap.in_flight_peak >= 1);
    assert!(snap.queue_depth_peak >= 1, "free-slot gauge saw pressure");
    let live = device.queue_depths();
    assert_eq!(live.len(), expected_queues);
    assert!(live.iter().all(|&d| d == 0), "live queues idle: {live:?}");
    assert!(
        snap.device_queue_depth.iter().all(|&d| d == 0),
        "sampled queue gauges return to zero: {:?}",
        snap.device_queue_depth
    );
}

#[test]
fn striped_device_gauges_return_to_zero_after_drain() {
    let cap = CheckpointStore::required_capacity(ByteSize::from_kb(64), 4) + ByteSize::from_kb(4);
    let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
        .map(|_| {
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap))) as Arc<dyn PersistentDevice>
        })
        .collect();
    let device: Arc<dyn PersistentDevice> =
        Arc::new(StripedDevice::new(members, ByteSize::from_kb(16)));
    // Controller + two stripe members.
    gauges_drain_to_zero_on(device, 3);
}

#[test]
fn tiered_device_gauges_return_to_zero_after_drain() {
    let cap = CheckpointStore::required_capacity(ByteSize::from_kb(64), 4) + ByteSize::from_kb(4);
    // A 32 KiB hot tier forces every checkpoint to straddle into spill,
    // so both member gates see traffic.
    let tier: Arc<dyn PersistentDevice> = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(
        ByteSize::from_kb(32),
    )));
    let spill: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let device: Arc<dyn PersistentDevice> = Arc::new(TieredDevice::new(tier, spill));
    // Controller + tier + spill.
    gauges_drain_to_zero_on(device, 3);
}

/// The full Chrome-trace exporter output, parsed back with the crate's
/// own JSON reader rather than spot-checked with substring matches: the
/// document must be well-formed, every complete (`ph:"X"`) slice must
/// carry numeric `ts`/`dur`, and every actor-lane slice must be
/// referentially consistent — its `args.parent_span` names a span that
/// was actually requested (or 0 for device-member legs attributed after
/// the fact), its `tid` resolves through a `thread_name` metadata entry
/// to the same actor name, and its media/queue-wait split sums exactly to
/// the slice duration. The annotated critical-path lane must likewise
/// reference only real spans.
#[test]
fn chrome_trace_parses_with_actor_lane_referential_integrity() {
    // A 2-way stripe with the I/O observer attached so all three lane
    // families appear: per-checkpoint writer legs, per-member device
    // legs, and the profiler's critical-path annotation lane.
    let size = ByteSize::from_kb(128);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
        .map(|_| {
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap))) as Arc<dyn PersistentDevice>
        })
        .collect();
    let striped = Arc::new(StripedDevice::new(members, ByteSize::from_kb(4)));
    let telemetry = Telemetry::enabled();
    striped.set_io_observer(Arc::new(TelemetryIoObserver::new(telemetry.clone())));
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .build()
            .expect("valid config"),
        striped,
        size,
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, 3),
    );
    for iter in 1..=6u64 {
        gpu.update();
        engine.checkpoint(&gpu, iter);
    }
    engine.try_drain().expect("healthy device");

    let events = telemetry.events();
    let trace = chrome_trace_annotated(&events);
    let doc = JsonValue::parse(&trace).expect("trace is well-formed JSON");
    let entries = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!entries.is_empty());

    // Ground truth from the raw stream.
    let mut spans: HashSet<u64> = HashSet::new();
    let mut actor_events = 0usize;
    for e in &events {
        if matches!(e.kind, EventKind::Requested { .. }) {
            spans.insert(e.span.0);
        }
        if matches!(e.kind, EventKind::ActorSpan { .. }) {
            actor_events += 1;
        }
    }
    assert!(actor_events > 0, "striped run must emit actor legs");

    // Lane registry from the exporter's thread_name metadata.
    let mut lanes: HashMap<u64, String> = HashMap::new();
    for e in entries {
        if e.get("name").and_then(|v| v.as_str()) == Some("thread_name") {
            let tid = e.get("tid").and_then(|v| v.as_u64()).expect("metadata tid");
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
                .expect("lane name")
                .to_string();
            lanes.insert(tid, name);
        }
    }

    let mut actor_entries = 0usize;
    let mut critical_entries = 0usize;
    for e in entries {
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .expect("every entry named");
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every entry has a ph");
        if ph == "X" {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some(), "X slice ts");
            let dur = e.get("dur").and_then(|v| v.as_f64()).expect("X slice dur");
            assert!(dur >= 0.0, "negative slice duration");
        }
        match e.get("cat").and_then(|v| v.as_str()) {
            Some("actor") => {
                actor_entries += 1;
                let args = e.get("args").expect("actor slice args");
                let parent = args
                    .get("parent_span")
                    .and_then(|v| v.as_u64())
                    .expect("parent_span");
                assert!(
                    parent == 0 || spans.contains(&parent),
                    "actor slice {name:?} references unknown span {parent}"
                );
                let tid = e.get("tid").and_then(|v| v.as_u64()).expect("actor tid");
                assert_eq!(
                    lanes.get(&tid).map(String::as_str),
                    Some(name),
                    "actor slice must ride a lane whose metadata names it"
                );
                let media = args
                    .get("media_nanos")
                    .and_then(|v| v.as_u64())
                    .expect("media_nanos");
                let queue = args
                    .get("queue_wait_nanos")
                    .and_then(|v| v.as_u64())
                    .expect("queue_wait_nanos");
                let dur = e.get("dur").and_then(|v| v.as_f64()).unwrap();
                let sum_us = (media + queue) as f64 / 1e3;
                assert!(
                    (sum_us - dur).abs() < 0.5,
                    "media+queue ({sum_us} us) must equal slice duration ({dur} us)"
                );
            }
            Some("critical") => {
                critical_entries += 1;
                assert!(name.starts_with("crit:"), "critical slice named {name:?}");
                let parent = e
                    .get("args")
                    .and_then(|a| a.get("parent_span"))
                    .and_then(|v| v.as_u64())
                    .expect("critical parent_span");
                assert!(
                    spans.contains(&parent),
                    "critical slice references unknown span {parent}"
                );
            }
            _ => {}
        }
    }
    assert_eq!(
        actor_entries, actor_events,
        "every ActorSpan event renders exactly one lane slice"
    );
    assert!(
        critical_entries > 0,
        "annotated trace must carry the critical-path lane"
    );
    assert!(lanes.values().any(|l| l.starts_with("writer-")));
    assert!(lanes.values().any(|l| l.starts_with("stripe-")));
    assert!(lanes.values().any(|l| l == "critical-path"));
}

/// A codec-enabled engine over a compressible state must surface its
/// savings through the whole exposition path: the raw snapshot
/// counters, the Prometheus text (which must still validate under the
/// crate's own parser), and the JSON document — while a raw engine on
/// the same path reports all three series as zero.
#[test]
fn codec_counters_flow_through_the_exposition_path() {
    let size = ByteSize::from_kb(64);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let telemetry = Telemetry::enabled();
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(1)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .codec(true)
            .build()
            .expect("valid config"),
        device,
        size,
    )
    .expect("engine constructs")
    .with_telemetry(telemetry.clone());
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::compressible(size, 5, 32),
    );
    for iter in 1..=4u64 {
        gpu.update();
        engine.checkpoint(&gpu, iter);
        engine.try_drain().expect("healthy device");
    }

    let snap = telemetry.snapshot().expect("telemetry enabled");
    assert!(
        snap.codec_bytes_saved > 0,
        "compressible checkpoints must save bytes (saved {})",
        snap.codec_bytes_saved
    );
    assert!(
        snap.compression_ratio_permille > 0 && snap.compression_ratio_permille < 1000,
        "framed physical size must undercut logical: {}\u{2030}",
        snap.compression_ratio_permille
    );

    let registry = MetricsRegistry::new(telemetry);
    let text = registry.prometheus_text();
    let samples = validate_prometheus_text(&text).expect("exposition parses");
    assert!(samples > 0);
    assert!(
        text.contains(&format!(
            "pccheck_codec_bytes_saved_total {}",
            snap.codec_bytes_saved
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!("pccheck_dedup_chunks_total {}", snap.dedup_chunks)),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "pccheck_compression_ratio_permille {}",
            snap.compression_ratio_permille
        )),
        "{text}"
    );
    let json = registry.json();
    assert!(
        json.contains(&format!("\"codec_bytes_saved\":{}", snap.codec_bytes_saved)),
        "{json}"
    );
    assert!(json.contains("\"dedup_chunks\":"), "{json}");
    assert!(
        json.contains(&format!(
            "\"compression_ratio_permille\":{}",
            snap.compression_ratio_permille
        )),
        "{json}"
    );

    // A codec-off engine over the same exposition path reports zeros —
    // the series exist but never move.
    let raw_telemetry = Telemetry::enabled();
    let raw_device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let raw_engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(1)
            .chunk_size(ByteSize::from_kb(16))
            .dram_chunks(4)
            .build()
            .expect("valid config"),
        raw_device,
        size,
    )
    .expect("engine constructs")
    .with_telemetry(raw_telemetry.clone());
    let raw_gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::compressible(size, 5, 32),
    );
    raw_gpu.update();
    raw_engine.checkpoint(&raw_gpu, 1);
    raw_engine.try_drain().expect("healthy device");
    let raw_snap = raw_telemetry.snapshot().expect("telemetry enabled");
    assert_eq!(raw_snap.codec_bytes_saved, 0);
    assert_eq!(raw_snap.dedup_chunks, 0);
    assert_eq!(raw_snap.compression_ratio_permille, 0);
    let raw_text = MetricsRegistry::new(raw_telemetry).prometheus_text();
    validate_prometheus_text(&raw_text).expect("zeroed exposition parses");
    assert!(raw_text.contains("pccheck_codec_bytes_saved_total 0"), "{raw_text}");
}

#[test]
fn sequential_run_with_drain_commits_every_span() {
    let size = ByteSize::from_kb(32);
    let (engine, telemetry) = engine_with_telemetry(size, 2);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, 11),
    );
    for iter in 1..=5u64 {
        gpu.update();
        engine.checkpoint(&gpu, iter);
        engine.try_drain().expect("healthy device");
    }
    let snap = telemetry.snapshot().expect("telemetry enabled");
    // Draining between checkpoints removes supersession races entirely.
    assert_eq!(snap.counters.committed, 5);
    assert_eq!(snap.counters.superseded, 0);
    assert_eq!(snap.counters.bytes_persisted, 5 * size.as_u64());
}

//! Cross-validation of the delta checkpoint path: the same training run
//! checkpointed as a base + delta chain on one store and as plain full
//! checkpoints on another must recover to *bit-identical* state, verified
//! both by direct comparison and by `pccheck_monitor::diff` over the
//! tensor layout.

use std::sync::Arc;

use pccheck::{recovery, CheckpointStore, DeltaOutcome, DeltaPolicy, PersistPipeline, PipelineCtx};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::ByteSize;

const STATE: u64 = 8 * 1024;
const MAX_CHAIN: u32 = 3;

fn store_on(slots: u32) -> (Arc<SsdDevice>, Arc<CheckpointStore>) {
    let size = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity(size, slots) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let store = Arc::new(CheckpointStore::format(dev, size, slots).expect("format"));
    (ssd, store)
}

fn pipeline_for(store: &Arc<CheckpointStore>) -> PersistPipeline {
    PersistPipeline::new(Arc::clone(store))
        .with_writers(2)
        .with_staging(HostBufferPool::new(ByteSize::from_bytes(512), 8))
}

#[test]
fn delta_chain_restore_is_bit_identical_to_full_checkpoints() {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 11),
    );
    gpu.update();

    // Store A takes base + chained deltas; store B takes a plain full
    // checkpoint of the very same weights at every iteration.
    let (ssd_a, store_a) = store_on(MAX_CHAIN + 2);
    let (ssd_b, store_b) = store_on(2);
    let pipe_a = pipeline_for(&store_a);
    let pipe_b = pipeline_for(&store_b);
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    let policy = DeltaPolicy {
        max_dirty_ratio: 0.5,
        max_chain: MAX_CHAIN,
    };

    let mut saw_delta = false;
    for iter in 1..=4u64 {
        if iter > 1 {
            gpu.update_sparse(0.10);
        }
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();

        let (_, kind) = pipe_a
            .checkpoint_delta(ctx, &guard, iter, digest.0, policy)
            .expect("delta checkpoint");
        saw_delta |= matches!(kind, DeltaOutcome::Delta { .. });

        let lease = pipe_b.lease(ctx);
        let persist_start = pipe_b
            .copy_streamed(ctx, &guard, &lease, total)
            .expect("full copy");
        drop(guard);
        pipe_b
            .seal(ctx, &lease, iter, total, persist_start)
            .expect("seal");
        pipe_b
            .commit(ctx, lease, iter, total.as_u64(), digest.0)
            .expect("commit");
    }
    assert!(saw_delta, "the sparse run must exercise the delta path");
    let head = store_a.latest_committed().expect("head");
    let link = head.delta.expect("head of store A is a delta");
    assert!(link.chain_depth >= 1);

    drop(pipe_a);
    drop(pipe_b);
    let rec_a = recovery::recover(ssd_a).expect("store A recoverable");
    let rec_b = recovery::recover(ssd_b).expect("store B recoverable");

    assert_eq!(rec_a.iteration, 4);
    assert_eq!(rec_b.iteration, 4);
    assert_eq!(
        rec_a.payload, rec_b.payload,
        "delta-chain replay must reproduce the full checkpoint byte for byte"
    );

    // The forensic differ over the tensor layout agrees: zero changed bytes
    // in every tensor.
    let layout = gpu.with_weights(|w| w.layout());
    let report = pccheck_monitor::diff(&rec_a.payload, &rec_b.payload, &layout);
    assert_eq!(report.changed_bytes, 0, "diff report: {report:?}");

    // And both restores load back into a GPU that matches the live weights.
    let live = gpu.with_weights(|w| w.digest());
    let restored = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE), 99),
    );
    restored.restore(&rec_a.payload, rec_a.iteration);
    assert_eq!(restored.with_weights(|w| w.digest()), live);
}

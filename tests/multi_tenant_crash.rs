//! Multi-tenant crash consistency: two jobs interleave checkpoints
//! through one shared service-mode store (shared pipeline, shared QoS
//! arbiter, shared staging DRAM), and the power cord is pulled at five
//! different protocol points. After every crash:
//!
//! * the forensic audit of the frozen device is invariant-clean,
//! * each namespace independently recovers a complete, verified
//!   checkpoint (or honestly reports `NoCheckpoint`),
//! * one tenant's in-flight work never corrupts — or rolls back — the
//!   other tenant's committed state,
//! * the audit's per-namespace recovery prediction matches what
//!   `recover_job` actually restores.

use std::sync::Arc;

use pccheck::{
    recovery, CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError, PersistPipeline,
    QosArbiter, QosConfig,
};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

const STATE: u64 = 4096;
const SLOTS: u32 = 8;
const FLIGHT: u32 = 128;

/// Two engine facades over one shared store/pipeline, plus the crashable
/// device underneath and each tenant's GPU.
struct Tenants {
    ssd: Arc<SsdDevice>,
    engines: [Arc<PcCheckEngine>; 2],
    gpus: [Gpu; 2],
}

fn tenants() -> Tenants {
    let size = ByteSize::from_bytes(STATE);
    let cap =
        CheckpointStore::required_capacity_service(size, SLOTS, FLIGHT, 4) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let dev: Arc<dyn PersistentDevice> = ssd.clone();
    let store =
        Arc::new(CheckpointStore::format_service(dev, size, SLOTS, FLIGHT, 4).expect("format"));
    store.allocate_namespace(1, 4).expect("ns 1");
    store.allocate_namespace(2, 4).expect("ns 2");
    let qos = Arc::new(QosArbiter::new(QosConfig::default()));
    qos.register_job(1, 1);
    qos.register_job(2, 2);
    let pipeline = Arc::new(
        PersistPipeline::new(Arc::clone(&store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(512), 6))
            .with_qos(qos),
    );
    let config = PcCheckConfig::builder()
        .max_concurrent(2)
        .writer_threads(2)
        .chunk_size(ByteSize::from_bytes(512))
        .dram_chunks(6)
        .build()
        .expect("valid config");
    let engines = [
        Arc::new(
            PcCheckEngine::with_shared(config.clone(), Arc::clone(&pipeline), 1).expect("job 1"),
        ),
        Arc::new(PcCheckEngine::with_shared(config, Arc::clone(&pipeline), 2).expect("job 2")),
    ];
    let gpus = [
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(STATE), 101),
        ),
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(STATE), 202),
        ),
    ];
    Tenants { ssd, engines, gpus }
}

/// Issue `iters` interleaved checkpoints on both tenants (job 1 gets
/// even iterations, job 2 odd — both streams advance concurrently).
fn interleave(t: &Tenants, from: u64, iters: u64) {
    for iter in from..from + iters {
        for (i, engine) in t.engines.iter().enumerate() {
            t.gpus[i].update();
            engine.checkpoint(&t.gpus[i], iter);
        }
    }
}

/// Post-crash verdict for one namespace: the audit's prediction, the
/// actual recovery, and full payload verification against that tenant's
/// state layout.
fn check_namespace(t: &Tenants, job: u64, issued_max: u64) -> Option<u64> {
    let report =
        pccheck_monitor::audit(t.ssd.clone() as Arc<dyn PersistentDevice>).expect("audit runs");
    assert!(report.is_clean(), "job {job}: {}", report.render());
    let predicted = report
        .namespace_recovery
        .iter()
        .find(|(j, _)| *j == job)
        .and_then(|(_, m)| *m);
    match recovery::recover_job(t.ssd.clone() as Arc<dyn PersistentDevice>, job) {
        Ok(rec) => {
            assert!(
                rec.iteration <= issued_max,
                "job {job} recovered iteration {} > issued {issued_max}",
                rec.iteration
            );
            assert_eq!(
                predicted.map(|m| m.counter),
                Some(rec.counter),
                "job {job}: audit prediction and recovery disagree"
            );
            let layout = t.gpus[(job - 1) as usize].with_weights(|s| s.layout());
            recovery::verify_against_state(&rec, &layout).expect("verified payload");
            Some(rec.iteration)
        }
        Err(PccheckError::NoCheckpoint) => {
            assert!(predicted.is_none(), "job {job}: audit predicted a head");
            None
        }
        Err(e) => panic!("job {job}: unexpected recovery failure: {e}"),
    }
}

fn crash(t: &Tenants) {
    t.ssd.crash_now();
    for engine in &t.engines {
        engine.drain(); // workers observe the crash and bail
    }
    t.ssd.recover();
}

/// Crash point 1: both tenants have checkpoints in flight, nothing is
/// known to be committed yet. Each namespace either recovers a valid
/// prefix or honestly has nothing — and the audit stays clean.
#[test]
fn crash_with_first_checkpoints_in_flight() {
    let t = tenants();
    interleave(&t, 1, 1);
    crash(&t);
    check_namespace(&t, 1, 1);
    check_namespace(&t, 2, 1);
}

/// Crash point 2: tenant 1 has committed; tenant 2 is mid-flight. The
/// bystander's committed checkpoint must survive its neighbor's torn
/// in-flight write.
#[test]
fn crash_during_neighbor_flight_preserves_committed_tenant() {
    let t = tenants();
    t.gpus[0].update();
    t.engines[0].checkpoint(&t.gpus[0], 1);
    t.engines[0].drain();
    assert!(t.engines[0].last_committed().is_some());
    // Tenant 2 starts a burst, then the crash lands mid-flight.
    for iter in 1..=3u64 {
        t.gpus[1].update();
        t.engines[1].checkpoint(&t.gpus[1], iter);
    }
    crash(&t);
    let rec1 = check_namespace(&t, 1, 1);
    assert_eq!(rec1, Some(1), "tenant 1's drained commit must survive");
    check_namespace(&t, 2, 3);
}

/// Crash point 3: both tenants have committed history AND new work in
/// flight. Neither namespace may roll back below its drained baseline.
#[test]
fn crash_mid_burst_never_rolls_back_either_baseline() {
    let t = tenants();
    interleave(&t, 1, 2);
    for engine in &t.engines {
        engine.drain();
    }
    let baselines: Vec<u64> = t
        .engines
        .iter()
        .map(|e| e.last_committed().expect("drained").iteration)
        .collect();
    interleave(&t, 3, 2); // new in-flight work on both
    crash(&t);
    for job in [1u64, 2] {
        let rec = check_namespace(&t, job, 4).expect("baseline survives");
        assert!(
            rec >= baselines[(job - 1) as usize],
            "job {job} rolled back from {} to {rec}",
            baselines[(job - 1) as usize]
        );
    }
}

/// Crash point 4: clean shutdown shape — both tenants drained, then the
/// crash. Recovery must restore each tenant's exact final iteration.
#[test]
fn crash_after_both_drained_recovers_exact_iterations() {
    let t = tenants();
    interleave(&t, 1, 3);
    for engine in &t.engines {
        engine.drain();
    }
    let finals: Vec<u64> = t
        .engines
        .iter()
        .map(|e| e.last_committed().expect("drained").iteration)
        .collect();
    crash(&t);
    for job in [1u64, 2] {
        let rec = check_namespace(&t, job, 3).expect("drained commit survives");
        assert_eq!(rec, finals[(job - 1) as usize], "job {job}");
    }
}

/// Crash point 5: asymmetric lifecycle — tenant 1 drained and idle,
/// tenant 2 still bursting when the cord is pulled. The idle tenant
/// recovers exactly; the active one recovers a valid prefix.
#[test]
fn crash_with_one_tenant_idle_and_one_bursting() {
    let t = tenants();
    t.gpus[0].update();
    t.engines[0].checkpoint(&t.gpus[0], 1);
    t.gpus[0].update();
    t.engines[0].checkpoint(&t.gpus[0], 2);
    t.engines[0].drain();
    let idle_final = t.engines[0].last_committed().expect("drained").iteration;
    for iter in 1..=4u64 {
        t.gpus[1].update();
        t.engines[1].checkpoint(&t.gpus[1], iter);
    }
    crash(&t);
    let rec1 = check_namespace(&t, 1, 2).expect("idle tenant survives");
    assert_eq!(rec1, idle_final);
    check_namespace(&t, 2, 4);
}

//! Cross-validation of the chunk-codec persist path against the raw
//! path: a compressed + deduped store must recover **bit-identical** to
//! an uncompressed store driven through the same update sequence. The
//! codec changes the physical byte layout only — never the logical
//! state — so every arm pair here ends in an exact payload comparison
//! after cold recovery.

use std::sync::Arc;

use pccheck::{
    recover, CheckpointStore, DeltaPolicy, FramedOutcome, PcCheckConfig, PcCheckEngine,
    PersistPipeline, PipelineCtx,
};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, SnapshotSource, StateDigest, TrainingState};
use pccheck_harness::forensics_run::{commit_checkpoint, commit_delta_checkpoint, sparse_payload};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::ByteSize;

const STATE: u64 = 64 * 1024;
const CHUNK: u64 = 4 * 1024;
const CHECKPOINTS: u64 = 6;

/// Permissive framing policy: the codec decides per chunk.
const POLICY: DeltaPolicy = DeltaPolicy {
    max_dirty_ratio: 1.0,
    max_chain: 8,
};

/// A host-resident payload standing in for GPU weights.
struct HostPayload {
    data: Vec<u8>,
    step: u64,
}

impl SnapshotSource for HostPayload {
    fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.data.len() as u64)
    }

    fn step_count(&self) -> u64 {
        self.step
    }

    fn digest(&self) -> StateDigest {
        StateDigest::of_payload(&self.data, self.step)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        let o = offset as usize;
        dst.copy_from_slice(&self.data[o..o + dst.len()]);
    }
}

/// The deterministic logical-state sequence both arms replay: a tiled
/// (compressible, self-similar) baseline with a sparse mutation per step.
fn logical_states() -> Vec<Vec<u8>> {
    let tile: Vec<u8> = (0..32u32).map(|i| (i as u8).wrapping_mul(37)).collect();
    let base: Vec<u8> = (0..STATE as usize).map(|i| tile[i % tile.len()]).collect();
    let mut states = vec![base];
    for step in 1..CHECKPOINTS {
        let prev = states.last().expect("nonempty");
        states.push(sparse_payload(
            prev,
            step,
            &[(step * 1024 % (STATE / 2), STATE / 16)],
        ));
    }
    states
}

fn fresh_store(slots: u32) -> (Arc<dyn PersistentDevice>, Arc<CheckpointStore>) {
    let state = ByteSize::from_bytes(STATE);
    let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let store = Arc::new(
        CheckpointStore::format(Arc::clone(&device), state, slots).expect("format store"),
    );
    (device, store)
}

/// Replays `states` through one arm; the codec arm frames every commit
/// through the pipeline, the raw arm commits the full payloads through
/// the store. Returns (device, framed checkpoints, physical payload
/// bytes persisted).
fn replay(states: &[Vec<u8>], codec: bool) -> (Arc<dyn PersistentDevice>, u64, u64) {
    let (device, store) = fresh_store(4);
    let mut framed = 0u64;
    let mut physical = 0u64;
    if codec {
        let pipeline = PersistPipeline::new(store).with_writers(2).with_staging(
            HostBufferPool::new(ByteSize::from_bytes(CHUNK), (STATE / CHUNK) as usize),
        );
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        for (i, data) in states.iter().enumerate() {
            let iteration = i as u64 + 1;
            let src = HostPayload {
                data: data.clone(),
                step: iteration,
            };
            let digest = StateDigest::of_payload(data, iteration).0;
            let (_, outcome) = pipeline
                .checkpoint_framed(ctx, &src, iteration, digest, POLICY)
                .expect("checkpoint commits");
            match outcome {
                FramedOutcome::Framed { payload_len, .. } => {
                    framed += 1;
                    physical += payload_len;
                }
                FramedOutcome::Raw => physical += STATE,
            }
        }
    } else {
        for (i, data) in states.iter().enumerate() {
            commit_checkpoint(&store, i as u64 + 1, data).expect("raw checkpoint commits");
            physical += STATE;
        }
    }
    (device, framed, physical)
}

/// The codec arm and the raw arm replay the identical logical sequence;
/// cold recovery must land on the same iteration with byte-identical
/// payloads, while the codec arm actually framed and persisted less.
#[test]
fn framed_store_recovers_bit_identical_to_raw_store() {
    let states = logical_states();
    let (framed_dev, framed, framed_physical) = replay(&states, true);
    let (raw_dev, raw_framed, raw_physical) = replay(&states, false);

    assert_eq!(framed, CHECKPOINTS, "codec arm must frame every commit");
    assert_eq!(raw_framed, 0, "raw arm must never frame");
    assert!(
        framed_physical < raw_physical,
        "codec must persist fewer physical bytes ({framed_physical} vs {raw_physical})"
    );

    let a = recover(framed_dev).expect("framed store recovers");
    let b = recover(raw_dev).expect("raw store recovers");
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(a.iteration, CHECKPOINTS);
    assert_eq!(
        a.payload,
        b.payload,
        "framed recovery must be bit-identical to raw recovery"
    );
    assert_eq!(a.payload, *states.last().expect("nonempty"));
}

/// A delta committed on top of a chunk-framed root must replay to the
/// same bytes as a raw store that committed the full states directly.
#[test]
fn delta_over_framed_root_matches_raw_replay() {
    let states = logical_states();
    let baseline = &states[0];
    let full_mid = sparse_payload(baseline, 50, &[(0, STATE / 8), (STATE / 2, STATE / 16)]);
    let ranges = [(0u64, STATE / 8), (STATE / 2, STATE / 16)];

    // Framed arm: codec baseline, then a delta chained onto it.
    let (framed_dev, framed_store) = fresh_store(4);
    {
        let pipeline = PersistPipeline::new(Arc::clone(&framed_store))
            .with_writers(2)
            .with_staging(HostBufferPool::new(
                ByteSize::from_bytes(CHUNK),
                (STATE / CHUNK) as usize,
            ))
            .with_codec(true);
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        let src = HostPayload {
            data: baseline.clone(),
            step: 10,
        };
        let digest = StateDigest::of_payload(baseline, 10).0;
        let (_, outcome) = pipeline
            .checkpoint_framed(ctx, &src, 10, digest, POLICY)
            .expect("framed baseline commits");
        assert!(
            matches!(outcome, FramedOutcome::Framed { .. }),
            "tiled baseline must frame"
        );
        commit_delta_checkpoint(&framed_store, 50, &full_mid, &ranges)
            .expect("delta over framed root commits");
    }
    drop(framed_store);

    // Raw arm: both full states committed uncompressed through the store.
    let (raw_dev, raw_store) = fresh_store(4);
    for (iteration, data) in [(10u64, baseline), (50, &full_mid)] {
        commit_checkpoint(&raw_store, iteration, data).expect("raw checkpoint commits");
    }
    drop(raw_store);

    let a = recover(framed_dev).expect("framed chain recovers");
    let b = recover(raw_dev).expect("raw store recovers");
    assert_eq!(a.iteration, 50);
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(
        a.payload, b.payload,
        "delta replay over a framed root must match the raw arm byte for byte"
    );
    assert_eq!(a.payload, full_mid);
}

/// End-to-end engine arms: a codec-enabled engine and a raw engine
/// drive identically-seeded deterministic training runs; cold recovery
/// must agree bit for bit, and the codec arm must have engaged (nonzero
/// bytes saved in its telemetry).
#[test]
fn codec_engine_recovers_bit_identical_to_raw_engine() {
    let run = |codec: bool| {
        let telemetry = Telemetry::enabled();
        let state = ByteSize::from_kb(64);
        let cap = CheckpointStore::required_capacity(state, 3) + ByteSize::from_kb(4);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::compressible(state, 11, 32),
        );
        let engine = PcCheckEngine::new(
            PcCheckConfig::builder()
                .max_concurrent(2)
                .writer_threads(1)
                .chunk_size(ByteSize::from_kb(16))
                .dram_chunks(4)
                .codec(codec)
                .build()
                .expect("valid config"),
            Arc::clone(&device),
            gpu.state_size(),
        )
        .expect("engine constructs")
        .with_telemetry(telemetry.clone());
        for iter in 1..=8u64 {
            gpu.update();
            if iter % 2 == 0 {
                engine.checkpoint(&gpu, iter);
            }
        }
        engine.drain();
        drop(engine);
        let saved = telemetry.snapshot().map_or(0, |s| s.codec_bytes_saved);
        (recover(device).expect("engine store recovers"), saved)
    };

    let (with_codec, saved_on) = run(true);
    let (raw, saved_off) = run(false);
    assert!(saved_on > 0, "codec engine must actually save bytes");
    assert_eq!(saved_off, 0, "raw engine must not touch the codec");
    assert_eq!(with_codec.iteration, raw.iteration);
    assert_eq!(
        with_codec.payload, raw.payload,
        "codec and raw engines must recover the same logical state"
    );
}

//! Cross-validation: the discrete-event simulator and the concrete
//! (real-thread, real-byte) engines implement the same policies, so on a
//! configuration small enough to run concretely their predicted throughputs
//! must structurally agree.
//!
//! The comparison is necessarily loose: the concrete run executes on a
//! shared CPU with real thread scheduling, its `TrainingReport` includes
//! the final drain, and the DES's single-writer bandwidth cap models a
//! syscall-overhead effect the concrete token bucket does not have (we
//! therefore run the DES with the uncapped network-style media). What the
//! test guards against is *structural* disagreement — a missing stall or a
//! phantom one shows up as a >2–3x gap.
//!
//! Scaled workload: 2 MB checkpoints, 40 MB/s "SSD", 400 MB/s "PCIe",
//! 20 ms iterations — the same bandwidth hierarchy as the paper's testbed
//! at roughly 1/1000 scale.

use std::sync::Arc;

use pccheck::{CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_baselines::CheckFreqCheckpointer;
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingLoop, TrainingState};
use pccheck_gpu::{CopyEngineConfig, CopyPath};
use pccheck_sim::{MediaKind, SimConfig, StrategyCfg};
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

const CKPT: u64 = 2 * 1024 * 1024; // 2 MB
const ITER_MS: u64 = 20;
const SSD_MBPS: f64 = 40.0;
const PCIE_MBPS: f64 = 400.0;
/// Sustainable interval: 2 MB / (4 × 20 ms) = 25 MB/s < 40 MB/s.
const INTERVAL: u64 = 4;
const ITERS: u64 = 100;

fn scaled_gpu(seed: u64) -> Gpu {
    let copy = CopyEngineConfig {
        pcie_bandwidth: Bandwidth::from_mb_per_sec(PCIE_MBPS),
        path: CopyPath::DmaPinned,
        ddio: true,
        throttled: true,
    };
    let config = GpuConfig {
        memory: ByteSize::from_gb(1.0),
        copy,
    };
    Gpu::new(
        config,
        TrainingState::synthetic(ByteSize::from_bytes(CKPT), seed),
    )
}

fn scaled_ssd(slots: u32) -> Arc<SsdDevice> {
    let cap = CheckpointStore::required_capacity(ByteSize::from_bytes(CKPT), slots)
        + ByteSize::from_kb(4);
    Arc::new(SsdDevice::new(DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(SSD_MBPS),
        throttled: true,
    }))
}

fn sim_config(strategy: StrategyCfg) -> SimConfig {
    SimConfig {
        label: "scaled".into(),
        iter_time: SimDuration::from_millis(ITER_MS),
        checkpoint_size: ByteSize::from_bytes(CKPT),
        interval: INTERVAL,
        iterations: ITERS,
        strategy,
        pcie_bandwidth: Bandwidth::from_mb_per_sec(PCIE_MBPS),
        storage_bandwidth: Bandwidth::from_mb_per_sec(SSD_MBPS),
        // Network media = no per-writer cap, matching the concrete token
        // bucket's behavior (see module docs).
        media: MediaKind::Network,
        chunk_size: ByteSize::from_bytes(CKPT / 8),
        dram_chunks: 16,
        stripe_ways: 1,
    }
}

fn concrete_throughput(ckpt: &dyn Checkpointer, gpu: &Gpu) -> f64 {
    let lp =
        TrainingLoop::new(gpu.clone(), SimDuration::from_millis(ITER_MS)).with_interval(INTERVAL);
    lp.run(ITERS, ckpt).throughput
}

fn pccheck_engine(gpu: &Gpu) -> PcCheckEngine {
    PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(3)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(CKPT / 8))
            .dram_chunks(16)
            .build()
            .expect("valid"),
        scaled_ssd(4) as Arc<dyn PersistentDevice>,
        gpu.state_size(),
    )
    .expect("engine")
}

/// Structural-agreement band: concrete/simulated throughput ratio. Inside
/// it, both models tell the same story; a missing admission stall or
/// weights-lock would push the ratio past 2–3x.
fn assert_structural_agreement(name: &str, concrete: f64, simulated: f64) {
    let ratio = concrete / simulated;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "{name}: concrete {concrete:.3} it/s vs simulated {simulated:.3} it/s (ratio {ratio:.2})"
    );
}

#[test]
fn pccheck_concrete_matches_simulator() {
    let gpu = scaled_gpu(1);
    let engine = pccheck_engine(&gpu);
    let concrete = concrete_throughput(&engine, &gpu);
    let simulated = sim_config(StrategyCfg::pccheck(3, 2)).run().throughput;
    assert_structural_agreement("pccheck", concrete, simulated);
}

#[test]
fn checkfreq_concrete_matches_simulator() {
    let gpu = scaled_gpu(2);
    let ssd = scaled_ssd(2);
    let ckpt = CheckFreqCheckpointer::new(ssd as Arc<dyn PersistentDevice>, gpu.state_size())
        .expect("constructs");
    let concrete = concrete_throughput(&ckpt, &gpu);
    let simulated = sim_config(StrategyCfg::CheckFreq).run().throughput;
    assert_structural_agreement("checkfreq", concrete, simulated);
}

#[test]
fn ordering_agrees_between_models() {
    // Where PCcheck's concurrency matters — interval 1, where CheckFreq's
    // one-at-a-time rule serializes every checkpoint — both models must
    // rank PCcheck ahead. (At sustainable intervals the two are
    // equivalent up to single-core scheduling noise, which on a shared
    // host can exceed the real difference; interval 1 is the structural
    // comparison.)
    let sim_pc = sim_config(StrategyCfg::pccheck(3, 2))
        .with_interval(1)
        .run()
        .throughput;
    let sim_cf = sim_config(StrategyCfg::CheckFreq)
        .with_interval(1)
        .run()
        .throughput;
    assert!(sim_pc > sim_cf, "sim: {sim_pc} vs {sim_cf}");

    let run_concrete_at_1 = |ckpt: &dyn Checkpointer, gpu: &Gpu| {
        let lp = TrainingLoop::new(gpu.clone(), SimDuration::from_millis(ITER_MS)).with_interval(1);
        lp.run(40, ckpt).throughput
    };
    let gpu_pc = scaled_gpu(3);
    let engine = pccheck_engine(&gpu_pc);
    let concrete_pc = run_concrete_at_1(&engine, &gpu_pc);

    let gpu_cf = scaled_gpu(3);
    let cf = CheckFreqCheckpointer::new(
        scaled_ssd(2) as Arc<dyn PersistentDevice>,
        gpu_cf.state_size(),
    )
    .expect("constructs");
    let concrete_cf = run_concrete_at_1(&cf, &gpu_cf);

    assert!(
        concrete_pc > concrete_cf,
        "concrete: pccheck {concrete_pc} vs checkfreq {concrete_cf}"
    );
}

#[test]
fn both_models_agree_checkpointing_costs_something_at_interval_one() {
    // Oversubscribed regime: 2 MB per 20 ms (100 MB/s demand vs 40 MB/s
    // device). Both models must show a substantial slowdown vs ideal.
    let sim = sim_config(StrategyCfg::pccheck(3, 2))
        .with_interval(1)
        .run();
    let sim_ideal = sim_config(StrategyCfg::Ideal).with_interval(1).run();
    let sim_slowdown = sim.slowdown_vs(&sim_ideal);
    assert!(sim_slowdown > 1.5, "sim slowdown {sim_slowdown}");

    let gpu = scaled_gpu(4);
    let engine = pccheck_engine(&gpu);
    let lp = TrainingLoop::new(gpu.clone(), SimDuration::from_millis(ITER_MS)).with_interval(1);
    let report = lp.run(40, &engine);
    let ideal = 1000.0 / ITER_MS as f64;
    let concrete_slowdown = ideal / report.throughput;
    assert!(
        concrete_slowdown > 1.3,
        "concrete slowdown {concrete_slowdown}"
    );
}

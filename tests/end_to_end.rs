//! Cross-crate integration: the full train → checkpoint → crash → recover
//! → resume cycle with the concrete engines on throttled devices.

use std::sync::Arc;

use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, PmemDevice, PmemWriteMode, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingLoop, TrainingState};
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

fn gpu_with_state(size: ByteSize, seed: u64) -> Gpu {
    Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(size, seed),
    )
}

fn pccheck_engine(device: Arc<dyn PersistentDevice>, size: ByteSize, n: usize) -> PcCheckEngine {
    PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(n)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(64))
            .dram_chunks(8)
            .build()
            .expect("valid config"),
        device,
        size,
    )
    .expect("engine constructs")
}

#[test]
fn training_loop_with_pccheck_commits_and_recovers() {
    let size = ByteSize::from_kb(256);
    let gpu = gpu_with_state(size, 1);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let engine = pccheck_engine(ssd.clone(), size, 2);

    let lp = TrainingLoop::new(gpu.clone(), SimDuration::from_millis(1)).with_interval(4);
    let report = lp.run(16, &engine);
    assert_eq!(report.checkpoints_requested, 4);
    assert_eq!(engine.last_committed().expect("committed").iteration, 16);

    let digest_at_16 = gpu.digest();
    ssd.crash_now();
    ssd.recover();
    let rec = recovery::recover(ssd).expect("recoverable");
    assert_eq!(rec.iteration, 16);
    let fresh = gpu_with_state(size, 999);
    rec.restore_into(&fresh);
    assert_eq!(fresh.digest(), digest_at_16);

    // Resume and diverge identically from the original.
    fresh.update();
    gpu.update();
    assert_eq!(fresh.digest(), gpu.digest());
}

#[test]
fn throttled_device_still_yields_correct_checkpoints() {
    // Small bandwidth so persists genuinely overlap training.
    let size = ByteSize::from_mb_u64(1);
    let gpu = gpu_with_state(size, 2);
    let cap = CheckpointStore::required_capacity(size, 4) + ByteSize::from_kb(4);
    let cfg = DeviceConfig {
        capacity: cap,
        write_bandwidth: Bandwidth::from_mb_per_sec(50.0),
        throttled: true,
    };
    let ssd = Arc::new(SsdDevice::new(cfg));
    let engine = pccheck_engine(ssd.clone(), size, 3);

    let lp = TrainingLoop::new(gpu.clone(), SimDuration::from_millis(5)).with_interval(2);
    lp.run(10, &engine);
    let out = engine.last_committed().expect("committed");
    assert_eq!(out.iteration, 10);

    ssd.crash_now();
    ssd.recover();
    let rec = recovery::recover(ssd).expect("recoverable");
    let layout = gpu.with_weights(|s| s.layout());
    recovery::verify_against_state(&rec, &layout).expect("payload verifies");
    assert_eq!(rec.iteration, 10);
}

#[test]
fn mid_training_crash_recovers_to_a_recent_boundary() {
    let size = ByteSize::from_kb(64);
    let gpu = gpu_with_state(size, 3);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let engine = pccheck_engine(ssd.clone(), size, 2);

    // Checkpoint at 3, 6; crash before 9's checkpoint drains.
    for iter in 1..=8u64 {
        gpu.update();
        if iter % 3 == 0 {
            engine.checkpoint(&gpu, iter);
        }
    }
    engine.drain();
    ssd.crash_now();
    ssd.recover();
    let rec = recovery::recover(ssd).expect("recoverable");
    assert_eq!(rec.iteration, 6, "latest drained boundary");
    // Replay the lost iterations and land at the pre-crash state.
    let fresh = gpu_with_state(size, 4);
    rec.restore_into(&fresh);
    fresh.update();
    fresh.update();
    assert_eq!(fresh.digest(), gpu.digest());
    assert_eq!(fresh.step_count(), 8);
}

#[test]
fn pmem_end_to_end_with_training_loop() {
    let size = ByteSize::from_kb(128);
    let gpu = gpu_with_state(size, 5);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let pmem = Arc::new(PmemDevice::new(
        DeviceConfig::fast_for_tests(cap),
        PmemWriteMode::NtStore,
    ));
    let engine = pccheck_engine(pmem.clone(), size, 2);
    let lp = TrainingLoop::new(gpu.clone(), SimDuration::ZERO).with_interval(5);
    lp.run(15, &engine);
    pmem.crash_now();
    pmem.recover();
    let rec = recovery::recover(pmem).expect("recoverable");
    assert_eq!(rec.iteration, 15);
    let layout = gpu.with_weights(|s| s.layout());
    recovery::verify_against_state(&rec, &layout).expect("verified");
}

#[test]
fn engine_reopen_continues_counter_sequence() {
    // Recover the store, attach a new engine, keep checkpointing.
    let size = ByteSize::from_kb(32);
    let gpu = gpu_with_state(size, 6);
    let cap = CheckpointStore::required_capacity(size, 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    {
        let engine = pccheck_engine(ssd.clone(), size, 2);
        gpu.update();
        engine.checkpoint(&gpu, 1);
        engine.drain();
    }
    ssd.crash_now();
    ssd.recover();
    let store = Arc::new(CheckpointStore::open(ssd.clone()).expect("opens"));
    let engine = PcCheckEngine::with_store(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(8))
            .dram_chunks(8)
            .build()
            .expect("valid"),
        store,
    )
    .expect("engine over recovered store");
    assert_eq!(engine.last_committed().expect("carried over").iteration, 1);
    gpu.update();
    engine.checkpoint(&gpu, 2);
    engine.drain();
    assert_eq!(engine.last_committed().expect("new commit").iteration, 2);
    ssd.crash_now();
    ssd.recover();
    assert_eq!(recovery::recover(ssd).expect("recoverable").iteration, 2);
}

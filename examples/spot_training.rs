//! Training on spot VMs: replay a synthetic GCP A100 preemption trace
//! against full-scale simulated BLOOM-7B training and compare the goodput
//! of PCcheck vs CheckFreq vs Gemini vs the ideal system — the scenario
//! behind Figures 2 and 9 of the paper.
//!
//! Run with: `cargo run --release --example spot_training`

use pccheck_gpu::ModelZoo;
use pccheck_harness::forensics_run::{run_crash_scenario, CrashPoint, ForensicsRunConfig};
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_trace::{GoodputReplay, PreemptionTrace};

fn main() {
    let model = ModelZoo::bloom_7b();
    let trace = PreemptionTrace::synthetic_gcp_a100(2024);
    println!(
        "spot trace: {} preemptions over {:.1} h (GCP A100 statistics)",
        trace.len(),
        trace.window().as_secs_f64() / 3600.0
    );

    // Checkpoint load time: reading an 18 GB shard back from the pd-ssd.
    let base = SimConfig::ssd_a100(&model, 10, 10);
    let load = base.storage_bandwidth.transfer_time(base.checkpoint_size);
    let replay = GoodputReplay::new(load);

    println!(
        "\n{:<14} {:>9} {:>12} {:>11} {:>12}",
        "strategy", "interval", "goodput", "rollbacks", "lost iters"
    );
    for interval in [1u64, 10, 25, 50, 100] {
        let iters = (interval * 20).clamp(200, 2000);
        let ideal = replay.ideal(base.iter_time, interval, &trace);
        println!(
            "{:<14} {:>9} {:>12.5} {:>11} {:>12.1}",
            "ideal", interval, ideal.goodput, ideal.rollbacks, ideal.avg_lost_iterations
        );
        for strategy in [
            StrategyCfg::CheckFreq,
            StrategyCfg::Gemini,
            StrategyCfg::pccheck(2, 3),
        ] {
            let report = SimConfig::ssd_a100(&model, interval, iters)
                .with_strategy(strategy)
                .run();
            let g = replay.replay(&report, &trace);
            println!(
                "{:<14} {:>9} {:>12.5} {:>11} {:>12.1}",
                report.strategy, interval, g.goodput, g.rollbacks, g.avg_lost_iterations
            );
        }
        println!();
    }
    println!("Higher goodput at small intervals is PCcheck's concurrent-checkpoint win;");
    println!("at large intervals everyone converges but loses more work per preemption.");

    // Each preemption above pays the recovery protocol (scan the slots,
    // load the newest committed payload, verify its digest) before the
    // shard reload + recompute terms. Measure it on a concrete crashed
    // store rather than modeling it:
    let run = run_crash_scenario(
        CrashPoint::BetweenPersistAndCommit,
        &ForensicsRunConfig::default(),
    )
    .expect("crash scenario");
    println!(
        "\nmeasured recovery protocol after a mid-checkpoint preemption: \
         {:.1} us (scan {:.1} us, load {:.1} us, verify {:.1} us), \
         forensic audit {}",
        run.trace.total_nanos as f64 / 1e3,
        run.trace.scan_nanos as f64 / 1e3,
        run.trace.load_nanos as f64 / 1e3,
        run.trace.verify_nanos as f64 / 1e3,
        if run.report.is_clean() {
            "clean"
        } else {
            "VIOLATED"
        },
    );
}

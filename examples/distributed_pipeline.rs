//! Pipeline-parallel distributed checkpointing (§3.1/§4.1): each node
//! checkpoints its own model partition through its own PCcheck engine, and
//! the coordinator hub keeps the *globally consistent* checkpoint id in
//! agreement across nodes, so recovery never mixes partitions from
//! different iterations.
//!
//! Run with: `cargo run --example distributed_pipeline`

use std::sync::Arc;

use pccheck::distributed::CoordinatorHub;
use pccheck::{recovery, CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

const NODES: usize = 3;
const ITERATIONS: u64 = 12;
const INTERVAL: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6 MB model pipeline-partitioned over 3 nodes: 2 MB per shard.
    let shard = ByteSize::from_mb_u64(2);
    let hub = Arc::new(CoordinatorHub::new(NODES));

    // Each node: its own GPU shard, its own pd-ssd, its own engine.
    let mut ssds = Vec::new();
    let mut handles = Vec::new();
    for rank in 0..NODES {
        let cap = CheckpointStore::required_capacity(shard, 3) + ByteSize::from_kb(4);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        ssds.push(Arc::clone(&ssd));
        let hub = Arc::clone(&hub);
        handles.push(std::thread::spawn(
            move || -> Result<u64, pccheck::PccheckError> {
                let gpu = Gpu::new(
                    GpuConfig::fast_for_tests(),
                    TrainingState::synthetic(shard, rank as u64),
                );
                let device: Arc<dyn PersistentDevice> = ssd;
                let engine = PcCheckEngine::new(
                    PcCheckConfig::builder()
                        .max_concurrent(2)
                        .writer_threads(2)
                        .chunk_size(ByteSize::from_kb(256))
                        .dram_chunks(8)
                        .build()?,
                    device,
                    shard,
                )?;
                let mut agreed = 0;
                for iter in 1..=ITERATIONS {
                    gpu.update(); // this node's pipeline stage
                    if iter % INTERVAL == 0 {
                        engine.checkpoint(&gpu, iter);
                        engine.drain(); // this example syncs per boundary
                                        // Rank-0 agreement on the globally consistent id.
                        agreed = hub.report_and_wait(rank, iter)?;
                    }
                }
                Ok(agreed)
            },
        ));
    }

    let mut agreed_ids = Vec::new();
    for h in handles {
        agreed_ids.push(h.join().expect("node thread")?);
    }
    println!("nodes agreed on checkpoint ids: {agreed_ids:?}");
    assert!(agreed_ids.windows(2).all(|w| w[0] == w[1]));

    // Cluster-wide failure: every node recovers its shard; all shards must
    // come from the same iteration.
    let mut iterations = Vec::new();
    for (rank, ssd) in ssds.into_iter().enumerate() {
        ssd.crash_now();
        ssd.recover();
        let rec = recovery::recover(ssd)?;
        println!(
            "node {rank}: recovered shard from iteration {}",
            rec.iteration
        );
        iterations.push(rec.iteration);
    }
    assert!(
        iterations.windows(2).all(|w| w[0] == w[1]),
        "all shards recover to the same iteration"
    );
    println!(
        "globally consistent recovery at iteration {} across {NODES} nodes",
        iterations[0]
    );
    Ok(())
}

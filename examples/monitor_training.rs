//! Training monitoring via frequent checkpoints (§2.1's use case):
//! inspect the checkpoint history, diff consecutive states, and catch a
//! simulated silent-corruption event with the update-magnitude detector.
//!
//! Run with: `cargo run --example monitor_training`

use std::sync::Arc;

use pccheck::{PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_monitor::{diff, CheckpointInspector, UpdateMagnitudeDetector};
use pccheck_util::ByteSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_mb_u64(2), 7),
    );
    // A roomy store: N=3 concurrent means 4 slots of history to inspect.
    let cap =
        pccheck::CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(3)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(256))
            .dram_chunks(8)
            .build()?,
        device,
        gpu.state_size(),
    )?;

    let inspector = CheckpointInspector::new(Arc::clone(engine.store()));
    let layout = gpu.with_weights(|s| s.layout());
    let mut detector = UpdateMagnitudeDetector::new(4, 3.0);

    println!("training 40 iterations, checkpointing every 2...\n");
    let mut previous: Option<(u64, Vec<u8>)> = None;
    for iter in 1..=40u64 {
        gpu.update();
        // Simulate a silent corruption event at iteration 30: a rogue
        // restore from a stale checkpoint (e.g., flaky hardware reloading
        // old weights).
        if iter == 30 {
            let stale = inspector.latest().expect("history exists");
            let payload = inspector.load_payload(&stale)?;
            gpu.restore(&payload, stale.iteration);
            println!("!! injected fault at iteration {iter}: state silently reverted");
        }
        if iter % 2 == 0 {
            engine.checkpoint(&gpu, iter);
            engine.drain();
            let latest = inspector.latest().expect("committed");
            let payload = inspector.load_payload(&latest)?;
            if let Some((prev_iter, prev_payload)) = &previous {
                let report = diff(prev_payload, &payload, &layout);
                let flagged = detector.observe(latest.iteration, report.changed_fraction());
                let marker = if flagged.is_some() {
                    "  <-- ANOMALY"
                } else {
                    ""
                };
                println!(
                    "ckpt@{:>3}: {:>5.1}% changed since @{prev_iter}{marker}",
                    latest.iteration,
                    report.changed_fraction() * 100.0
                );
                if let Some(a) = flagged {
                    println!(
                        "          magnitude {:.4}/iter vs expected {:.4}/iter (x{:.1})",
                        a.magnitude, a.expected, a.ratio
                    );
                }
            }
            previous = Some((latest.iteration, payload));
        }
    }

    println!("\ncheckpoint history currently in the store:");
    for meta in inspector.history()? {
        println!(
            "  counter {:>3} iteration {:>3} ({} bytes, digest {:016x})",
            meta.counter, meta.iteration, meta.payload_len, meta.digest
        );
    }
    Ok(())
}

//! The §3.4 workflow: give the tuner your workload and constraints, get
//! `N*` and the minimum safe checkpoint interval `f*`, then train with the
//! recommended configuration and verify the overhead stays within budget.
//!
//! Run with: `cargo run --release --example tune_and_train`

use pccheck::{Tuner, TunerInputs};
use pccheck_gpu::{GpuKind, ModelZoo};
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::{Bandwidth, ByteSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelZoo::opt_1_3b();
    let inputs = TunerInputs {
        checkpoint_size: model.checkpoint_size,
        iter_time: model.iter_time(GpuKind::A100),
        storage_bandwidth: Bandwidth::from_gb_per_sec(1.5), // raw pd-ssd rate
        pcie_bandwidth: GpuKind::A100.pcie_bandwidth(),
        storage_budget: ByteSize::from_gb(100.0), // ~6 slots of 16.2 GB
        max_slowdown: 1.05,                       // accept 5% overhead
    };
    let tuner = Tuner::new(inputs)?;
    println!(
        "storage budget allows N <= {} concurrent checkpoints",
        tuner.max_concurrent()
    );

    // Profiling round: measure Tw(N) with the simulator instead of the
    // analytic model (the tool's empirical step). §3.4 defines Tw at worst
    // case — all N checkpoints ongoing — so profile at interval 1, where
    // contention is maximal.
    let rec = tuner.recommend_with(|n| {
        let report = SimConfig::ssd_a100(&model, 1_000_000, 150)
            .with_strategy(StrategyCfg::pccheck(n, 3))
            .with_interval(1)
            .run();
        report.mean_write_time
    });
    println!(
        "recommendation: N* = {}, f* = {} iterations (Tw = {})",
        rec.concurrent, rec.interval, rec.write_time
    );

    // Validate: run at f* and compare against the no-checkpoint run.
    let iters = (rec.interval * 20).clamp(200, 2000);
    let ideal = SimConfig::ssd_a100(&model, rec.interval, iters)
        .with_strategy(StrategyCfg::Ideal)
        .run();
    let tuned = SimConfig::ssd_a100(&model, rec.interval, iters)
        .with_strategy(StrategyCfg::pccheck(rec.concurrent, 3))
        .run();
    let slowdown = tuned.slowdown_vs(&ideal);
    println!(
        "measured slowdown at f*: {slowdown:.4} (budget was {:.2})",
        1.05
    );
    assert!(
        slowdown <= 1.05 * 1.02,
        "tuner must keep overhead within ~budget, got {slowdown}"
    );

    // And for contrast: checkpointing 5x more often than recommended.
    let aggressive_f = (rec.interval / 5).max(1);
    let aggressive = SimConfig::ssd_a100(&model, aggressive_f, 400)
        .with_strategy(StrategyCfg::pccheck(rec.concurrent, 3))
        .run();
    let ideal_a = SimConfig::ssd_a100(&model, aggressive_f, 400)
        .with_strategy(StrategyCfg::Ideal)
        .run();
    println!(
        "checkpointing every {aggressive_f} iterations instead: slowdown {:.3}",
        aggressive.slowdown_vs(&ideal_a)
    );
    Ok(())
}

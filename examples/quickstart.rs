//! Quickstart: checkpoint a (simulated) training job with PCcheck, crash,
//! and recover — the whole life cycle in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use pccheck::{recovery, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_util::ByteSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A model + optimizer state of 8 MB living on the (simulated) GPU.
    let state = TrainingState::synthetic(ByteSize::from_mb_u64(8), 42);
    let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
    println!(
        "training state: {} at step {}",
        gpu.state_size(),
        gpu.step_count()
    );

    // An SSD big enough for N+1 = 3 checkpoint slots.
    let capacity =
        pccheck::CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(4);
    let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(capacity)));
    let device: Arc<dyn PersistentDevice> = ssd.clone();

    // PCcheck: up to 2 concurrent checkpoints, 3 writer threads each,
    // pipelined 1 MB chunks.
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(3)
            .chunk_size(ByteSize::from_mb_u64(1))
            .dram_chunks(8)
            .build()?,
        device,
        gpu.state_size(),
    )?;

    // Train 20 iterations, checkpointing every 5.
    for iter in 1..=20u64 {
        gpu.update(); // forward/backward/update, abridged
        if iter % 5 == 0 {
            engine.checkpoint(&gpu, iter);
            println!("iteration {iter}: checkpoint requested");
        }
    }
    engine.drain();
    let committed = engine.last_committed().expect("checkpoints committed");
    println!("latest committed: {committed}");

    // Disaster strikes: the machine dies. Only durable bytes survive.
    let digest_before = gpu.digest();
    ssd.crash_now();
    ssd.recover(); // the pd-ssd is re-attached to a fresh VM

    // Recover onto a brand-new GPU.
    let recovered = recovery::recover(ssd)?;
    println!(
        "recovered checkpoint: iteration {}, {} bytes",
        recovered.iteration,
        recovered.payload.len()
    );
    let fresh_gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_mb_u64(8), 0),
    );
    recovered.restore_into(&fresh_gpu);
    assert_eq!(fresh_gpu.digest(), digest_before, "bit-for-bit recovery");
    assert_eq!(fresh_gpu.step_count(), 20);
    println!(
        "resumed training from iteration {} — state verified",
        fresh_gpu.step_count()
    );
    Ok(())
}

//! Crash forensics: kill a checkpoint at every step of the commit
//! protocol, then let the post-crash auditor reconstruct what happened
//! from the store's persistent flight ring.
//!
//! For each injected crash point this prints the full forensic report —
//! every checkpoint classified as committed / in-flight (with the exact
//! phase the crash caught it in) / superseded — followed by what recovery
//! actually restored, demonstrating that the audit's prediction and the
//! recovery path agree.
//!
//! Run with: `cargo run --release --example crash_forensics`

use pccheck_harness::forensics_run::{run_crash_scenario, CrashPoint, ForensicsRunConfig};

fn main() {
    let cfg = ForensicsRunConfig::default();
    println!(
        "store: {} slots, {} KiB payloads, {}-record flight ring",
        cfg.slots,
        cfg.state_bytes / 1024,
        cfg.flight_records
    );
    for point in CrashPoint::ALL {
        println!("\n=== crash injected: {point} ===");
        let run = run_crash_scenario(point, &cfg).expect("scenario runs");
        print!("{}", run.report.render());
        println!(
            "recovery restored checkpoint #{} (iteration {}) in {:.1} us \
             ({} candidate(s) scanned, {} fallback(s))",
            run.recovered.counter,
            run.recovered.iteration,
            run.trace.total_nanos as f64 / 1e3,
            run.trace.candidates_scanned,
            run.trace.fallbacks,
        );
        let predicted = run.report.expected_recovery.map(|m| m.counter);
        assert_eq!(
            predicted,
            Some(run.recovered.counter),
            "audit prediction must match recovery"
        );
        println!("audit predicted the same target: agreement ✓");
    }
    println!("\nEvery crash left the store invariant-clean: the interrupted");
    println!("checkpoint is precisely classified and never mistaken for the");
    println!("recovery target. Try the same flow on a real file with");
    println!("`pccheckctl crashdemo` + `pccheckctl forensics`.");
}

//! Live metrics endpoint: train with telemetry attached while a
//! hand-rolled HTTP server exposes the metrics registry, then scrape it
//! like Prometheus would.
//!
//! Run with: `cargo run --example metrics_server`
//!
//! The server half is [`MetricsServer`] (one `TcpListener`, `GET
//! /metrics` + `GET /metrics.json`, no dependencies); the client half is
//! [`http_get`], the same helper `pccheckctl top` uses in remote mode.
//! While the run is live you can also point a real browser or `curl` at
//! the printed address — the endpoint stays up until the demo exits.

use std::sync::Arc;

use pccheck::{CheckpointStore, PcCheckConfig, PcCheckEngine};
use pccheck_device::{DeviceConfig, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{
    http_get, validate_prometheus_text, MetricsRegistry, MetricsServer, Telemetry,
};
use pccheck_util::ByteSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = Telemetry::enabled();
    let server = MetricsServer::bind("127.0.0.1:0", MetricsRegistry::new(telemetry.clone()))?;
    let addr = server.addr();
    println!("metrics live at http://{addr}/metrics (and /metrics.json)");

    // The workload: a checkpointed training run with the shared telemetry
    // handle attached, same shape as the quickstart.
    let state = ByteSize::from_kb(512);
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(state, 11),
    );
    let cap = CheckpointStore::required_capacity(state, 3) + ByteSize::from_kb(4);
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_kb(64))
            .dram_chunks(8)
            .build()?,
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap))),
        gpu.state_size(),
    )?
    .with_telemetry(telemetry.clone());

    for iter in 1..=40u64 {
        gpu.update();
        if iter % 5 == 0 {
            engine.checkpoint(&gpu, iter);
        }
        if iter == 20 {
            // Mid-run scrape: counters move while checkpoints are in flight.
            let prom = http_get(addr, "/metrics")?;
            let line = prom
                .lines()
                .find(|l| l.starts_with("pccheck_checkpoints_requested_total"))
                .unwrap_or("pccheck_checkpoints_requested_total <missing>");
            println!("mid-run scrape:   {line}");
        }
    }
    engine.drain();

    // Final scrape: validate the exposition the way a scraper's parser
    // would, then show the lifecycle counters.
    let prom = http_get(addr, "/metrics")?;
    let samples = validate_prometheus_text(&prom)?;
    println!("final scrape:     {samples} samples, exposition parses");
    for line in prom.lines() {
        if line.starts_with("pccheck_checkpoints_") || line.starts_with("pccheck_stall_fraction") {
            println!("  {line}");
        }
    }
    let json = http_get(addr, "/metrics.json")?;
    println!("json exposition:  {} bytes, schema tagged", json.len());
    server.shutdown();
    Ok(())
}

//! Telemetry report: trace a checkpointed training run end to end and
//! print the phase-latency / stall / goodput summary, comparing PCcheck
//! against the baselines on the same geometry.
//!
//! Run with: `cargo run --example telemetry_report`
//!
//! Each strategy gets its own [`Telemetry`] timeline: the training loop
//! records `iteration_end` markers, the checkpointer records the span
//! lifecycle (`requested → queued → gpu_copy → persist → commit`), and
//! the accountant turns both into the Fig. 8 stall fraction and the
//! Fig. 9 goodput estimate. The PCcheck run's raw events are also written
//! to `results/telemetry_report.trace.json` — with the reconstructed
//! critical path annotated as its own lane — load it in Perfetto /
//! `chrome://tracing`.

use pccheck_harness::telemetry_run::{run_instrumented, InstrumentedRunConfig};
use pccheck_telemetry::{chrome_trace_annotated, render_summary, Phase};
use pccheck_util::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = InstrumentedRunConfig {
        state_bytes: 512 * 1024,
        iterations: 40,
        interval: 4,
        iter_compute: SimDuration::from_millis(1),
        max_concurrent: 2,
        seed: 42,
        ..InstrumentedRunConfig::default()
    };

    // Full summary for PCcheck, the paper's contribution.
    let pccheck_run = run_instrumented("pccheck", &cfg)?;
    println!("=== pccheck, instrumented ===");
    print!(
        "{}",
        render_summary(&pccheck_run.snapshot, &pccheck_run.accounting)
    );
    let events = pccheck_run.telemetry.events();
    std::fs::create_dir_all("results")?;
    let trace_path = "results/telemetry_report.trace.json";
    std::fs::write(trace_path, chrome_trace_annotated(&events))?;
    println!(
        "\nwrote {trace_path} ({} events + critical-path lane) — load in Perfetto\n",
        events.len()
    );

    // One-line comparison across strategies: the stall fraction is the
    // Fig. 8 story, persist p95 the Fig. 11 story.
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>10}",
        "strategy", "committed", "stall_frac", "persist_p95", "slowdown"
    );
    for strategy in ["pccheck", "checkfreq", "gpm", "traditional"] {
        let run = run_instrumented(strategy, &cfg)?;
        println!(
            "{:<12} {:>9} {:>11.2}% {:>10.2}ms {:>9.3}x",
            run.strategy,
            run.snapshot.counters.committed,
            100.0 * run.accounting.stall_fraction(),
            run.snapshot.phase(Phase::Persist).p95_nanos as f64 / 1e6,
            run.accounting.slowdown(),
        );
    }
    Ok(())
}

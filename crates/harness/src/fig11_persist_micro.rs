//! Figure 11: end-to-end time to persist one checkpoint of varying size
//! (log-scale y in the paper), comparing PCcheck, CheckFreq, GPM, and
//! Gemini on the SSD/A100 testbed.
//!
//! The microbenchmark isolates a *single* checkpoint: a long interval and
//! a short run so no two checkpoints ever contend.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::{ByteSize, CsvWriter};

/// The checkpoint sizes swept (Table 3 sizes: VGG16, TransformerXL, BERT,
/// OPT-1.3B).
pub fn paper_sizes() -> Vec<ByteSize> {
    vec![
        ByteSize::from_gb(1.1),
        ByteSize::from_gb(2.7),
        ByteSize::from_gb(4.0),
        ByteSize::from_gb(16.2),
    ]
}

/// One Figure 11 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Checkpoint size.
    pub size: ByteSize,
    /// Strategy name.
    pub strategy: String,
    /// End-to-end time from snapshot start to durable (seconds).
    pub persist_secs: f64,
}

/// Measures the solo per-checkpoint write time for one strategy and size.
/// The interval is huge so exactly one checkpoint runs, free of contention.
pub fn measure(strategy: StrategyCfg, size: ByteSize) -> f64 {
    let mut cfg = SimConfig::ssd_a100(&ModelZoo::vgg16(), 2000, 2500).with_strategy(strategy);
    if matches!(strategy, StrategyCfg::Gemini) {
        // The microbenchmark transfers one checkpoint with no concurrent
        // training traffic, so Gemini gets the full 15 Gbps NIC here.
        cfg.storage_bandwidth = pccheck_util::Bandwidth::from_gbit_per_sec(15.0);
    }
    cfg.checkpoint_size = size;
    cfg.chunk_size = ByteSize::from_bytes((size.as_u64() / 20).max(1));
    cfg.label = format!("micro-{}", size);
    let report = cfg.run();
    report.mean_write_time.as_secs_f64()
}

/// Runs the sweep.
pub fn run() -> Vec<Fig11Row> {
    let strategies = [
        StrategyCfg::CheckFreq,
        StrategyCfg::Gpm,
        StrategyCfg::Gemini,
        StrategyCfg::pccheck(1, 3),
    ];
    let mut rows = Vec::new();
    for size in paper_sizes() {
        for &strategy in &strategies {
            rows.push(Fig11Row {
                size,
                strategy: strategy.name(),
                persist_secs: measure(strategy, size),
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig11Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["size_gb", "strategy", "persist_secs"]);
    for r in rows {
        w.row(&[
            &format_args!("{:.1}", r.size.as_gb()),
            &r.strategy,
            &format_args!("{:.3}", r.persist_secs),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn time_of(rows: &[Fig11Row], strategy: &str, gb: f64) -> f64 {
        rows.iter()
            .find(|r| r.strategy.starts_with(strategy) && (r.size.as_gb() - gb).abs() < 0.01)
            .map(|r| r.persist_secs)
            .expect("row present")
    }

    #[test]
    fn figure11_shapes_hold() {
        let rows = run();
        for gb in [1.1, 4.0, 16.2] {
            let pc = time_of(&rows, "pccheck", gb);
            let cf = time_of(&rows, "checkfreq", gb);
            let gpm = time_of(&rows, "gpm", gb);
            let gem = time_of(&rows, "gemini", gb);
            // Gemini has the lowest time per checkpoint (no storage).
            assert!(gem < pc, "{gb} GB: gemini {gem} vs pccheck {pc}");
            // PCcheck outperforms CheckFreq and GPM (paper: up to 1.9×).
            assert!(pc < cf, "{gb} GB: pccheck {pc} vs checkfreq {cf}");
            assert!(pc < gpm, "{gb} GB: pccheck {pc} vs gpm {gpm}");
            // The paper reports up to 1.9x; our per-writer scaling is more
            // linear (no interleaving penalty), landing nearer 3x — see
            // EXPERIMENTS.md.
            let ratio = cf / pc;
            assert!(
                (1.5..=3.6).contains(&ratio),
                "{gb} GB: checkfreq/pccheck ratio {ratio} out of band"
            );
        }
    }

    #[test]
    fn persist_time_scales_with_size() {
        let rows = run();
        let small = time_of(&rows, "pccheck", 1.1);
        let large = time_of(&rows, "pccheck", 16.2);
        let ratio = large / small;
        assert!(
            (10.0..=20.0).contains(&ratio),
            "16.2/1.1 GB should scale ~linearly, ratio {ratio}"
        );
    }
}

//! Extension experiment: the Azure H100/NVMe variant (§5.2.1).
//!
//! The paper re-ran OPT-1.3B on a `Standard_NC40ads_H100_v5` VM (H100 GPU,
//! 3.5 TB NVMe) and "observed similar patterns for PCcheck and the
//! baselines, since the iteration time was halved, and the disk bandwidth
//! doubled". This experiment regenerates that claim: the same interval
//! sweep on both testbeds, asserting the *pattern* (who wins, where the
//! knee sits) is preserved while absolute throughput doubles.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::CsvWriter;

use crate::sweep::{iterations_for, SweepRow};
use crate::PAPER_INTERVALS;

/// Runs the OPT-1.3B sweep on both the A100/pd-ssd and H100/NVMe testbeds.
pub fn run() -> Vec<SweepRow> {
    let model = ModelZoo::opt_1_3b();
    let strategies = [
        StrategyCfg::CheckFreq,
        StrategyCfg::Gpm,
        StrategyCfg::pccheck(2, 3),
    ];
    let mut rows = Vec::new();
    for &interval in &PAPER_INTERVALS {
        let iters = iterations_for(interval);
        for (testbed, make) in [
            ("A100-ssd", SimConfig::ssd_a100 as fn(_, _, _) -> SimConfig),
            (
                "H100-nvme",
                SimConfig::nvme_h100 as fn(_, _, _) -> SimConfig,
            ),
        ] {
            let ideal = make(&model, interval, iters)
                .with_strategy(StrategyCfg::Ideal)
                .run();
            for &strategy in &strategies {
                let report = make(&model, interval, iters).with_strategy(strategy).run();
                rows.push(SweepRow {
                    model: format!("OPT-1.3B/{testbed}"),
                    strategy: report.strategy.clone(),
                    interval,
                    throughput: report.throughput,
                    slowdown: report.slowdown_vs(&ideal),
                    write_time_secs: report.mean_write_time.as_secs_f64(),
                });
            }
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[SweepRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "testbed",
            "strategy",
            "interval",
            "throughput",
            "slowdown",
            "write_time_secs",
        ],
    );
    for r in rows {
        w.row(&[
            &r.model,
            &r.strategy,
            &r.interval,
            &format_args!("{:.5}", r.throughput),
            &format_args!("{:.4}", r.slowdown),
            &format_args!("{:.3}", r.write_time_secs),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pick<'a>(
        rows: &'a [SweepRow],
        testbed: &str,
        strategy: &str,
        interval: u64,
    ) -> &'a SweepRow {
        rows.iter()
            .find(|r| {
                r.model.ends_with(testbed)
                    && r.strategy.starts_with(strategy)
                    && r.interval == interval
            })
            .expect("row present")
    }

    #[test]
    fn h100_preserves_the_patterns() {
        let rows = run();
        for &interval in &[10u64, 50] {
            let a100_pc = pick(&rows, "A100-ssd", "pccheck", interval);
            let h100_pc = pick(&rows, "H100-nvme", "pccheck", interval);
            // Halved iteration time → ~doubled absolute throughput.
            let ratio = h100_pc.throughput / a100_pc.throughput;
            assert!(
                (1.6..=2.4).contains(&ratio),
                "interval {interval}: H100/A100 throughput ratio {ratio}"
            );
            // Same pattern: PCcheck within a few % of ideal on both.
            assert!(a100_pc.slowdown < 1.15, "{}", a100_pc.slowdown);
            assert!(h100_pc.slowdown < 1.15, "{}", h100_pc.slowdown);
        }
        // CheckFreq's knee stays: both testbeds show a visible stall at
        // interval 10 (iteration time and Tw halved together, so the ratio
        // Tw/(f·t) is invariant).
        let a100_cf = pick(&rows, "A100-ssd", "checkfreq", 10);
        let h100_cf = pick(&rows, "H100-nvme", "checkfreq", 10);
        assert!(a100_cf.slowdown > 1.5);
        assert!(h100_cf.slowdown > 1.5);
        assert!((a100_cf.slowdown - h100_cf.slowdown).abs() < 0.3);
    }

    #[test]
    fn grid_covers_both_testbeds() {
        let rows = run();
        assert_eq!(rows.len(), 5 * 2 * 3);
        assert!(rows.iter().any(|r| r.model.contains("H100")));
    }
}

//! Profiled concrete runs: one canonical checkpoint workload, one
//! archived [`RunProfile`] per run name.
//!
//! Every `ext_*` / `bench_pr*` invocation drops a profile of the same
//! canonical workload into `results/profiles/<run>.profile.json`, so
//! consecutive runs on the same machine are directly diffable with
//! [`diff_profiles`](pccheck_telemetry::diff_profiles) (absolute mode) and
//! any run is diffable against the checked-in CI baseline (shares mode —
//! scale-invariant, so machine speed drops out and only the *shape* of the
//! critical path gates).

use std::path::PathBuf;
use std::sync::Arc;

use pccheck::{recover_instrumented, CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingLoop, TrainingReport, TrainingState};
use pccheck_telemetry::{
    build_ledgers, CommitLedger, ProfileArchive, RunProfile, Telemetry, TelemetryIoObserver,
};
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

/// Geometry of a profiled run.
#[derive(Debug, Clone)]
pub struct ProfileRunConfig {
    /// Training-state size in bytes.
    pub state_bytes: u64,
    /// Iterations to run.
    pub iterations: u64,
    /// Checkpoint every `interval` iterations.
    pub interval: u64,
    /// Stripe width of the backing store.
    pub stripe_ways: usize,
    /// Per-member write-bandwidth throttle; `None` runs unthrottled.
    pub member_mb_per_sec: Option<f64>,
    /// Persist-pipeline writer threads.
    pub writer_threads: usize,
    /// PCcheck's `N` (concurrent checkpoints).
    pub max_concurrent: usize,
    /// DRAM chunk size in KiB.
    pub chunk_kb: u64,
    /// DRAM chunk-pool depth.
    pub dram_chunks: usize,
    /// Synthetic-state seed.
    pub seed: u64,
    /// Also run the recovery path and fold its span into the profile.
    pub restore_leg: bool,
}

impl Default for ProfileRunConfig {
    fn default() -> Self {
        ProfileRunConfig {
            state_bytes: 256 * 1024,
            iterations: 12,
            interval: 2,
            stripe_ways: 4,
            member_mb_per_sec: None,
            writer_threads: 4,
            max_concurrent: 2,
            chunk_kb: 16,
            dram_chunks: 8,
            seed: 7,
            restore_leg: false,
        }
    }
}

impl ProfileRunConfig {
    /// The CI gate geometry: throttled enough that Persist dominates the
    /// critical path on any machine, making the shares-mode baseline
    /// stable across hardware.
    pub fn ci_gate() -> Self {
        ProfileRunConfig {
            member_mb_per_sec: Some(256.0),
            ..ProfileRunConfig::default()
        }
    }
}

/// Everything one profiled run produces.
#[derive(Debug)]
pub struct ProfiledRun {
    /// The archived summary.
    pub profile: RunProfile,
    /// Per-commit causal ledgers behind the summary.
    pub ledgers: Vec<CommitLedger>,
    /// Wall-clock training report.
    pub report: TrainingReport,
    /// The live handle, for exporting raw events or annotated traces.
    pub telemetry: Telemetry,
}

/// The on-disk profile archive every harness binary shares.
pub fn profiles_dir() -> PathBuf {
    PathBuf::from(crate::RESULTS_DIR).join("profiles")
}

/// Opens the shared archive, creating `results/profiles/` if needed.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn archive() -> std::io::Result<ProfileArchive> {
    ProfileArchive::open(profiles_dir())
}

/// Runs the canonical profiled workload under `cfg` and returns its
/// profile, named `run`.
///
/// # Errors
///
/// Returns [`PccheckError::InvalidConfig`] for invalid geometry; device
/// errors surface from the engine.
pub fn run_profiled(run: &str, cfg: &ProfileRunConfig) -> Result<ProfiledRun, PccheckError> {
    let state = ByteSize::from_bytes(cfg.state_bytes);
    let slots = cfg.max_concurrent as u32 + 1;
    let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(4);
    let member_cfg = match cfg.member_mb_per_sec {
        Some(mb) => DeviceConfig {
            capacity: cap,
            write_bandwidth: Bandwidth::from_mb_per_sec(mb),
            throttled: true,
        },
        None => DeviceConfig::fast_for_tests(cap),
    };
    let telemetry = Telemetry::enabled();
    let device: Arc<dyn PersistentDevice> = if cfg.stripe_ways > 1 {
        let members: Vec<Arc<dyn PersistentDevice>> = (0..cfg.stripe_ways)
            .map(|_| Arc::new(SsdDevice::new(member_cfg.clone())) as Arc<dyn PersistentDevice>)
            .collect();
        let striped = Arc::new(StripedDevice::new(members, ByteSize::from_kb(4)));
        striped.set_io_observer(Arc::new(TelemetryIoObserver::new(telemetry.clone())));
        striped
    } else {
        Arc::new(SsdDevice::new(member_cfg))
    };
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(state, cfg.seed),
    );
    let engine = PcCheckEngine::new(
        PcCheckConfig::builder()
            .max_concurrent(cfg.max_concurrent)
            .writer_threads(cfg.writer_threads)
            .chunk_size(ByteSize::from_kb(cfg.chunk_kb))
            .dram_chunks(cfg.dram_chunks)
            .build()?,
        Arc::clone(&device),
        gpu.state_size(),
    )?
    .with_telemetry(telemetry.clone());
    let lp = TrainingLoop::new(gpu, SimDuration::ZERO)
        .with_interval(cfg.interval)
        .with_telemetry(telemetry.clone());
    let report = lp.run(cfg.iterations, &engine);
    engine.drain();
    if cfg.restore_leg {
        recover_instrumented(device, &telemetry)?;
    }
    let ledgers = build_ledgers(&telemetry.events());
    let profile = RunProfile::from_ledgers(run, &ledgers);
    Ok(ProfiledRun {
        profile,
        ledgers,
        report,
        telemetry,
    })
}

/// Harness hook: runs the canonical workload and archives its profile
/// under `run`, returning the stored path. The `ext_*` binaries call this
/// so every invocation leaves a diffable artifact behind.
///
/// # Errors
///
/// Surfaces engine and archive I/O failures as `std::io::Error`.
pub fn drop_profile(run: &str) -> std::io::Result<PathBuf> {
    let profiled = run_profiled(run, &ProfileRunConfig::default())
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    archive()?.store(&profiled.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_telemetry::{diff_profiles, DiffMode, DiffThresholds, NodeKind};

    #[test]
    fn profiled_run_yields_committed_ledgers_and_writer_legs() {
        let run = run_profiled("unit_profile", &ProfileRunConfig::default()).unwrap();
        assert_eq!(run.profile.run, "unit_profile");
        assert!(run.profile.commits >= 1, "{:?}", run.profile);
        assert!(run.profile.critical_nanos_median > 0);
        // Writer legs and stripe-member legs both landed in the ledgers.
        let has = |kind: NodeKind| {
            run.ledgers
                .iter()
                .any(|l| l.nodes.iter().any(|n| n.kind == kind))
        };
        assert!(has(NodeKind::Writer), "no writer legs attributed");
        assert!(has(NodeKind::Device), "no stripe-member legs attributed");
        // Persist is on the critical path of at least one commit.
        assert!(run.profile.critical_share("persist") > 0.0);
    }

    #[test]
    fn throttled_run_flags_persist_regression_against_fast_run() {
        let fast = run_profiled("fast", &ProfileRunConfig::default()).unwrap();
        let slow = run_profiled(
            "slow",
            &ProfileRunConfig {
                member_mb_per_sec: Some(4.0),
                ..ProfileRunConfig::default()
            },
        )
        .unwrap();
        let d = diff_profiles(
            &fast.profile,
            &slow.profile,
            DiffMode::Absolute,
            &DiffThresholds::default(),
        );
        assert!(d.regressed, "throttled run must flag");
        assert_eq!(d.blamed_phase.as_deref(), Some("persist"));
        let actor = d.blamed_actor.expect("persist blame names an actor");
        assert!(
            actor.starts_with("writer-") || actor.starts_with("stripe-"),
            "{actor}"
        );
    }

    #[test]
    fn drop_profile_archives_under_results() {
        let path = drop_profile("unit_drop").unwrap();
        assert!(path.ends_with("unit_drop.profile.json"));
        let loaded = archive().unwrap().load("unit_drop").unwrap();
        assert_eq!(loaded.run, "unit_drop");
        let _ = std::fs::remove_file(path);
    }
}

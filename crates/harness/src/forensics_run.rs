//! Crash-injected runs for the post-crash forensic auditor.
//!
//! The crash-consistency property tests crash the device at *random*
//! points; this module instead pins the crash to an exact step of the
//! commit protocol (Listing 1) so the forensic verdicts in
//! [`pccheck_monitor::forensics`] can be asserted deterministically:
//!
//! * during the GPU→storage copy (payload half-written, nothing durable),
//! * during the payload `msync` (the [`SsdDevice`] persist fuse fires
//!   mid-call, so the range never becomes durable),
//! * between payload persist and commit (payload durable, never published),
//! * after commit (the checkpoint is the recovery target).
//!
//! Each scenario drives the [`CheckpointStore`] directly, emitting the
//! same flight records the engine does, crashes, audits the frozen
//! device, then powers it back on and recovers — returning all three
//! artifacts (report, recovered checkpoint, recovery trace) so tests,
//! `pccheckctl`, and CI can cross-check them.

use std::sync::Arc;

use pccheck::{
    recover_instrumented, CheckpointStore, PccheckError, RecoveredCheckpoint, RecoveryTrace,
};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::StateDigest;
use pccheck_monitor::ForensicReport;
use pccheck_telemetry::{FlightEventKind, Telemetry};
use pccheck_util::ByteSize;

/// A protocol step at which the crash is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid GPU→storage copy: the payload is half-written and unpersisted.
    DuringCopy,
    /// During the payload `msync`: the persist call itself crashes.
    DuringPersist,
    /// After the payload persisted but before the commit publishes it.
    BetweenPersistAndCommit,
    /// After the commit completed; the checkpoint must be recovered.
    AfterCommit,
}

impl CrashPoint {
    /// Every crash point, in protocol order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::DuringCopy,
        CrashPoint::DuringPersist,
        CrashPoint::BetweenPersistAndCommit,
        CrashPoint::AfterCommit,
    ];

    /// Stable name (accepted by [`CrashPoint::from_name`] and pccheckctl).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::DuringCopy => "during-copy",
            CrashPoint::DuringPersist => "during-persist",
            CrashPoint::BetweenPersistAndCommit => "between-persist-and-commit",
            CrashPoint::AfterCommit => "after-commit",
        }
    }

    /// Parses a [`CrashPoint::name`].
    pub fn from_name(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Device topology a crash scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceTopology {
    /// One simulated SSD.
    Single,
    /// A RAID-0 [`StripedDevice`] over `ways` simulated SSDs. The crash
    /// fires the *controller* fuse, powering off every member at once.
    Striped {
        /// Number of stripe members.
        ways: u32,
    },
}

/// Geometry of a crash scenario.
#[derive(Debug, Clone)]
pub struct ForensicsRunConfig {
    /// Payload size of each checkpoint.
    pub state_bytes: u64,
    /// Store slots (N + 1).
    pub slots: u32,
    /// Flight-recorder ring capacity in records.
    pub flight_records: u32,
    /// Iteration captured by the committed baseline checkpoint.
    pub baseline_iteration: u64,
    /// Iteration captured by the checkpoint the crash interrupts.
    pub crash_iteration: u64,
    /// Device topology backing the store.
    pub topology: DeviceTopology,
}

impl Default for ForensicsRunConfig {
    fn default() -> Self {
        ForensicsRunConfig {
            state_bytes: 4 * 1024,
            slots: 3,
            flight_records: 64,
            baseline_iteration: 100,
            crash_iteration: 200,
            topology: DeviceTopology::Single,
        }
    }
}

impl ForensicsRunConfig {
    /// The default geometry on a `ways`-wide stripe set.
    pub fn striped(ways: u32) -> Self {
        ForensicsRunConfig {
            topology: DeviceTopology::Striped { ways },
            ..Self::default()
        }
    }
}

/// Everything one crash scenario produces.
#[derive(Debug)]
pub struct ForensicsRun {
    /// Where the crash was injected.
    pub crash_point: CrashPoint,
    /// The device, post-recovery (the store image is still on it).
    pub device: Arc<dyn PersistentDevice>,
    /// The forensic audit taken while the device was still crashed.
    pub report: ForensicReport,
    /// The counter of the checkpoint the crash interrupted (or, for
    /// [`CrashPoint::AfterCommit`], completed).
    pub crashed_counter: u64,
    /// What recovery actually restored after power-on.
    pub recovered: RecoveredCheckpoint,
    /// Measured recovery-path phase latencies.
    pub trace: RecoveryTrace,
}

/// Deterministic per-iteration payload bytes.
pub fn synthetic_payload(iteration: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (iteration as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

/// Commits one checkpoint through the store, emitting the same flight
/// records the engine does. Returns the checkpoint's counter.
///
/// # Errors
///
/// Propagates device/store errors.
pub fn commit_checkpoint(
    store: &CheckpointStore,
    iteration: u64,
    payload: &[u8],
) -> Result<u64, PccheckError> {
    let lease = store.begin_checkpoint();
    let counter = lease.counter;
    let len = payload.len() as u64;
    store.write_payload(&lease, 0, payload)?;
    store
        .flight()
        .record(FlightEventKind::CopyDone, counter, lease.slot, 0, len, 0);
    store.persist_payload(&lease, 0, len)?;
    store.flight().record(
        FlightEventKind::PayloadPersisted,
        counter,
        lease.slot,
        iteration,
        len,
        0,
    );
    let digest = StateDigest::of_payload(payload, iteration).0;
    store.commit(lease, iteration, len, digest)?;
    Ok(counter)
}

/// Drives one checkpoint up to (but not through) `point`, emitting the
/// engine's flight records along the way. For
/// [`CrashPoint::AfterCommit`] the checkpoint commits fully; for
/// [`CrashPoint::DuringPersist`] the payload is written and `CopyDone`
/// recorded, but the persist is left to the caller (who crashes it).
/// Returns `(counter, slot)` of the driven checkpoint.
///
/// # Errors
///
/// Propagates device/store errors.
pub fn drive_to_crash_point(
    store: &CheckpointStore,
    point: CrashPoint,
    iteration: u64,
    payload: &[u8],
) -> Result<(u64, u32), PccheckError> {
    if point == CrashPoint::AfterCommit {
        let lease = store.begin_checkpoint();
        let slot = lease.slot;
        let counter = lease.counter;
        let len = payload.len() as u64;
        store.write_payload(&lease, 0, payload)?;
        store
            .flight()
            .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
        store.persist_payload(&lease, 0, len)?;
        store.flight().record(
            FlightEventKind::PayloadPersisted,
            counter,
            slot,
            iteration,
            len,
            0,
        );
        let digest = StateDigest::of_payload(payload, iteration).0;
        store.commit(lease, iteration, len, digest)?;
        return Ok((counter, slot));
    }
    let lease = store.begin_checkpoint();
    let (counter, slot) = (lease.counter, lease.slot);
    let len = payload.len() as u64;
    match point {
        CrashPoint::DuringCopy => {
            // Half the payload lands in the page cache; no CopyDone yet.
            store.write_payload(&lease, 0, &payload[..payload.len() / 2])?;
        }
        CrashPoint::DuringPersist => {
            store.write_payload(&lease, 0, payload)?;
            store
                .flight()
                .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
            // The fatal msync is the caller's move.
        }
        CrashPoint::BetweenPersistAndCommit => {
            store.write_payload(&lease, 0, payload)?;
            store
                .flight()
                .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
            store.persist_payload(&lease, 0, len)?;
            store.flight().record(
                FlightEventKind::PayloadPersisted,
                counter,
                slot,
                iteration,
                len,
                0,
            );
        }
        CrashPoint::AfterCommit => unreachable!("handled above"),
    }
    // The lease is deliberately leaked: the crash strands the in-flight
    // slot, exactly like a process dying mid-checkpoint.
    std::mem::forget(lease);
    Ok((counter, slot))
}

/// Runs one full crash scenario on a fresh SSD-backed store: baseline
/// commit, crash at `point`, forensic audit of the frozen device,
/// power-on, instrumented recovery.
///
/// # Errors
///
/// Propagates device/store/recovery errors; the injected crash itself is
/// expected and absorbed.
pub fn run_crash_scenario(
    point: CrashPoint,
    cfg: &ForensicsRunConfig,
) -> Result<ForensicsRun, PccheckError> {
    let state = ByteSize::from_bytes(cfg.state_bytes);
    let cap = CheckpointStore::required_capacity_with_flight(state, cfg.slots, cfg.flight_records)
        + ByteSize::from_kb(4);
    // `arm_fuse` abstracts over the SSD's persist fuse and the striped
    // controller's — both crash the whole store's power domain.
    let (device, arm_fuse): (Arc<dyn PersistentDevice>, Box<dyn Fn(u64)>) = match cfg.topology {
        DeviceTopology::Single => {
            let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
            let fuse = Arc::clone(&ssd);
            (ssd, Box::new(move |n| fuse.arm_crash_after_persists(n)))
        }
        DeviceTopology::Striped { ways } => {
            let members: Vec<Arc<dyn PersistentDevice>> = (0..ways.max(1))
                .map(|_| {
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
                        as Arc<dyn PersistentDevice>
                })
                .collect();
            let array = Arc::new(StripedDevice::new(members, ByteSize::from_kb(1)));
            let fuse = Arc::clone(&array);
            (array, Box::new(move |n| fuse.arm_crash_after_persists(n)))
        }
    };
    let store = CheckpointStore::format_with_flight(
        Arc::clone(&device),
        state,
        cfg.slots,
        cfg.flight_records,
    )?;
    commit_checkpoint(
        &store,
        cfg.baseline_iteration,
        &synthetic_payload(cfg.baseline_iteration, cfg.state_bytes),
    )?;

    let payload = synthetic_payload(cfg.crash_iteration, cfg.state_bytes);
    let (crashed_counter, slot) =
        drive_to_crash_point(&store, point, cfg.crash_iteration, &payload)?;
    match point {
        CrashPoint::DuringPersist => {
            // The fuse fires inside this msync: the range never persists.
            arm_fuse(0);
            let err = device.persist(store.slot_payload_offset(slot), payload.len() as u64);
            debug_assert!(err.is_err(), "armed persist must crash");
        }
        _ => device.crash_now(),
    }
    drop(store);

    let report = pccheck_monitor::audit(Arc::clone(&device))?;
    device.recover();
    let (recovered, trace) = recover_instrumented(Arc::clone(&device), &Telemetry::disabled())?;
    Ok(ForensicsRun {
        crash_point: point,
        device,
        report,
        crashed_counter,
        recovered,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_monitor::{CheckpointVerdict, InFlightPhase};

    fn scenario(point: CrashPoint) -> ForensicsRun {
        run_crash_scenario(point, &ForensicsRunConfig::default()).unwrap()
    }

    fn in_flight_phase(run: &ForensicsRun) -> InFlightPhase {
        match run.report.checkpoints.get(&run.crashed_counter) {
            Some(CheckpointVerdict::InFlight { phase, .. }) => *phase,
            other => panic!(
                "expected in-flight verdict for counter {}, got {other:?}",
                run.crashed_counter
            ),
        }
    }

    #[test]
    fn crash_during_copy_is_classified_begun() {
        let run = scenario(CrashPoint::DuringCopy);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Begun);
        assert_eq!(run.recovered.counter, 1, "baseline survives");
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter),
            "forensic prediction matches what recovery restored"
        );
    }

    #[test]
    fn crash_during_persist_is_classified_copied() {
        let run = scenario(CrashPoint::DuringPersist);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Copied);
        assert_eq!(run.recovered.counter, 1);
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter)
        );
    }

    #[test]
    fn crash_between_persist_and_commit_is_classified_persisted() {
        let run = scenario(CrashPoint::BetweenPersistAndCommit);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Persisted);
        // The payload is durable but unpublished: recovery must NOT use it.
        assert_eq!(run.recovered.counter, 1);
        assert_eq!(run.recovered.iteration, 100);
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter)
        );
    }

    #[test]
    fn crash_after_commit_recovers_the_new_checkpoint() {
        let run = scenario(CrashPoint::AfterCommit);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(run.crashed_counter, 2);
        match run.report.checkpoints.get(&2) {
            Some(CheckpointVerdict::Committed {
                iteration,
                payload_valid,
                ..
            }) => {
                assert_eq!(*iteration, 200);
                assert!(payload_valid);
            }
            other => panic!("expected committed verdict, got {other:?}"),
        }
        assert_eq!(run.recovered.counter, 2);
        assert_eq!(run.recovered.iteration, 200);
        assert_eq!(run.recovered.payload, synthetic_payload(200, 4 * 1024));
    }

    #[test]
    fn recovery_trace_measures_every_phase() {
        let run = scenario(CrashPoint::DuringPersist);
        assert!(run.trace.total_nanos > 0);
        assert!(run.trace.candidates_scanned >= 1);
        assert_eq!(run.trace.fallbacks, 0);
        assert_eq!(run.trace.counter, run.recovered.counter);
    }

    #[test]
    fn striped_store_survives_every_crash_point() {
        for point in CrashPoint::ALL {
            let run = run_crash_scenario(point, &ForensicsRunConfig::striped(2)).unwrap();
            assert!(run.report.is_clean(), "{point}: {}", run.report.render());
            if point == CrashPoint::AfterCommit {
                assert_eq!(run.recovered.counter, 2, "{point}");
                assert_eq!(run.recovered.iteration, 200, "{point}");
                assert_eq!(run.recovered.payload, synthetic_payload(200, 4 * 1024));
            } else {
                assert_eq!(run.recovered.counter, 1, "{point}: baseline survives");
                assert_eq!(run.recovered.iteration, 100, "{point}");
            }
            assert_eq!(
                run.report.expected_recovery.map(|m| m.counter),
                Some(run.recovered.counter),
                "{point}: forensic prediction matches recovery"
            );
        }
    }

    #[test]
    fn crash_point_names_round_trip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::from_name("nope"), None);
    }
}

//! Crash-injected runs for the post-crash forensic auditor.
//!
//! The crash-consistency property tests crash the device at *random*
//! points; this module instead pins the crash to an exact step of the
//! commit protocol (Listing 1) so the forensic verdicts in
//! [`pccheck_monitor::forensics`] can be asserted deterministically:
//!
//! * between the slot claim and any subsequent write (only the durable
//!   per-slot state word witnesses the checkpoint),
//! * during the GPU→storage copy (payload half-written, nothing durable),
//! * during the payload `msync` (the [`SsdDevice`] persist fuse fires
//!   mid-call, so the range never becomes durable),
//! * between payload persist and commit (payload durable, never published),
//! * after commit (the checkpoint is the recovery target),
//! * mid delta chain (a delta checkpoint committed on the baseline, a
//!   second delta stranded before its meta record — recovery must replay
//!   the committed chain).
//!
//! Each scenario drives the [`CheckpointStore`] directly, emitting the
//! same flight records the engine does, crashes, audits the frozen
//! device, then powers it back on and recovers — returning all three
//! artifacts (report, recovered checkpoint, recovery trace) so tests,
//! `pccheckctl`, and CI can cross-check them.

use std::sync::Arc;

use pccheck::store::SlotLease;
use pccheck::{
    recover_instrumented_with, CheckMeta, CheckpointStore, DeltaLink, JobId, PccheckError,
    RecoveredCheckpoint, RecoveryTrace, RestoreOptions,
};
use pccheck_device::{
    fnv1a, DeviceConfig, ExtentRecord, ExtentTable, PersistentDevice, SsdDevice, StripedDevice,
    TieredDevice,
};
use pccheck_gpu::StateDigest;
use pccheck_monitor::ForensicReport;
use pccheck_telemetry::{FlightEventKind, Telemetry};
use pccheck_util::ByteSize;

/// A protocol step at which the crash is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Between the slot claim and any payload/meta write: the slot's
    /// durable state word says `Claimed{counter}` but no other trace of
    /// the checkpoint exists — the state-word lattice alone must decide
    /// the slot as in-flight (detectable recovery, DESIGN §13).
    ClaimPublish,
    /// Mid GPU→storage copy: the payload is half-written and unpersisted.
    DuringCopy,
    /// During the payload `msync`: the persist call itself crashes.
    DuringPersist,
    /// After the payload persisted but before the commit publishes it.
    BetweenPersistAndCommit,
    /// After the commit completed; the checkpoint must be recovered.
    AfterCommit,
    /// Mid delta chain: one delta committed on the baseline, a second
    /// delta's payload durable but its meta record never written —
    /// recovery must replay the committed base + delta.
    DeltaChain,
}

impl CrashPoint {
    /// Every crash point, in protocol order.
    pub const ALL: [CrashPoint; 6] = [
        CrashPoint::ClaimPublish,
        CrashPoint::DuringCopy,
        CrashPoint::DuringPersist,
        CrashPoint::BetweenPersistAndCommit,
        CrashPoint::AfterCommit,
        CrashPoint::DeltaChain,
    ];

    /// Stable name (accepted by [`CrashPoint::from_name`] and pccheckctl).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::ClaimPublish => "claim-publish",
            CrashPoint::DuringCopy => "during-copy",
            CrashPoint::DuringPersist => "during-persist",
            CrashPoint::BetweenPersistAndCommit => "between-persist-and-commit",
            CrashPoint::AfterCommit => "after-commit",
            CrashPoint::DeltaChain => "delta-chain",
        }
    }

    /// Parses a [`CrashPoint::name`].
    pub fn from_name(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Device topology a crash scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceTopology {
    /// One simulated SSD.
    Single,
    /// A RAID-0 [`StripedDevice`] over `ways` simulated SSDs. The crash
    /// fires the *controller* fuse, powering off every member at once.
    Striped {
        /// Number of stripe members.
        ways: u32,
    },
    /// A [`TieredDevice`]: a hot tier holding the slot region with the
    /// flight ring and digest tables spilling to a second SSD. The crash
    /// fires the *tier member's* fuse; the composite powers off the whole
    /// device when the member persist fails, exactly like a shared power
    /// domain.
    Tiered,
}

/// Geometry of a crash scenario.
#[derive(Debug, Clone)]
pub struct ForensicsRunConfig {
    /// Payload size of each checkpoint.
    pub state_bytes: u64,
    /// Store slots (N + 1).
    pub slots: u32,
    /// Flight-recorder ring capacity in records.
    pub flight_records: u32,
    /// Iteration captured by the committed baseline checkpoint.
    pub baseline_iteration: u64,
    /// Iteration captured by the checkpoint the crash interrupts.
    pub crash_iteration: u64,
    /// Device topology backing the store.
    pub topology: DeviceTopology,
}

impl Default for ForensicsRunConfig {
    fn default() -> Self {
        ForensicsRunConfig {
            state_bytes: 4 * 1024,
            slots: 3,
            flight_records: 64,
            baseline_iteration: 100,
            crash_iteration: 200,
            topology: DeviceTopology::Single,
        }
    }
}

impl ForensicsRunConfig {
    /// The default geometry on a `ways`-wide stripe set.
    pub fn striped(ways: u32) -> Self {
        ForensicsRunConfig {
            topology: DeviceTopology::Striped { ways },
            ..Self::default()
        }
    }

    /// The default geometry on a hot-tier + spill device pair.
    pub fn tiered() -> Self {
        ForensicsRunConfig {
            topology: DeviceTopology::Tiered,
            ..Self::default()
        }
    }
}

/// Everything one crash scenario produces.
#[derive(Debug)]
pub struct ForensicsRun {
    /// Where the crash was injected.
    pub crash_point: CrashPoint,
    /// The device, post-recovery (the store image is still on it).
    pub device: Arc<dyn PersistentDevice>,
    /// The forensic audit taken while the device was still crashed.
    pub report: ForensicReport,
    /// The counter of the checkpoint the crash interrupted (or, for
    /// [`CrashPoint::AfterCommit`], completed).
    pub crashed_counter: u64,
    /// What recovery actually restored after power-on.
    pub recovered: RecoveredCheckpoint,
    /// Measured recovery-path phase latencies.
    pub trace: RecoveryTrace,
}

/// Deterministic per-iteration payload bytes.
pub fn synthetic_payload(iteration: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (iteration as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

/// `base` with each `(offset, len)` range overwritten by deterministic
/// bytes seeded from `iteration` — a sparse mutation of the full state.
pub fn sparse_payload(base: &[u8], iteration: u64, ranges: &[(u64, u64)]) -> Vec<u8> {
    let mut full = base.to_vec();
    for &(off, len) in ranges {
        for i in off..off + len {
            full[i as usize] = (iteration as u8).wrapping_mul(37).wrapping_add(i as u8);
        }
    }
    full
}

/// Serializes a delta payload for `full`: an extent table (with per-extent
/// FNV digests and `full`'s state digest) followed by the packed dirty
/// bytes. Returns `(payload, table length)`.
fn build_delta_payload(full: &[u8], iteration: u64, ranges: &[(u64, u64)]) -> (Vec<u8>, u64) {
    let extents: Vec<ExtentRecord> = ranges
        .iter()
        .map(|&(off, len)| ExtentRecord {
            offset: off,
            len,
            digest: fnv1a(&full[off as usize..(off + len) as usize]),
        })
        .collect();
    let table = ExtentTable {
        full_len: full.len() as u64,
        full_digest: StateDigest::of_payload(full, iteration).0,
        extents,
    };
    let mut payload = table.encode();
    let table_len = payload.len() as u64;
    for &(off, len) in ranges {
        payload.extend_from_slice(&full[off as usize..(off + len) as usize]);
    }
    (payload, table_len)
}

/// Which commit domain a driven checkpoint runs in: the legacy
/// store-global free queue + `CHECK_ADDR`, or one tenant's namespace on
/// a service-mode store. Every crash-drive helper below comes in both
/// flavors so the same six crash points exercise flat *and* multi-tenant
/// formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Legacy single-tenant store: `begin_checkpoint` /
    /// `latest_committed`.
    Global,
    /// One namespace of a service-mode store: `begin_checkpoint_job` /
    /// `latest_committed_job`.
    Job(JobId),
}

impl Scope {
    fn begin(self, store: &CheckpointStore) -> Result<SlotLease, PccheckError> {
        match self {
            Scope::Global => Ok(store.begin_checkpoint()),
            Scope::Job(job) => store.begin_checkpoint_job(job),
        }
    }

    fn latest(self, store: &CheckpointStore) -> Result<Option<CheckMeta>, PccheckError> {
        match self {
            Scope::Global => Ok(store.latest_committed()),
            Scope::Job(job) => store.latest_committed_job(job),
        }
    }
}

/// Commits a delta checkpoint of `full` over the latest committed base,
/// persisting only `ranges` behind an extent table and chaining via a
/// [`DeltaLink`]. Emits the engine's flight records. Returns the
/// checkpoint's counter.
///
/// # Errors
///
/// [`PccheckError::NoCheckpoint`] when the store has no committed base;
/// otherwise propagates device/store errors.
pub fn commit_delta_checkpoint(
    store: &CheckpointStore,
    iteration: u64,
    full: &[u8],
    ranges: &[(u64, u64)],
) -> Result<u64, PccheckError> {
    commit_delta_checkpoint_scoped(store, Scope::Global, iteration, full, ranges)
}

/// [`commit_delta_checkpoint`] in an explicit [`Scope`] — the namespace
/// variant drives one tenant's delta chain on a service-mode store.
///
/// # Errors
///
/// Same as [`commit_delta_checkpoint`].
pub fn commit_delta_checkpoint_scoped(
    store: &CheckpointStore,
    scope: Scope,
    iteration: u64,
    full: &[u8],
    ranges: &[(u64, u64)],
) -> Result<u64, PccheckError> {
    let base = scope.latest(store)?.ok_or(PccheckError::NoCheckpoint)?;
    let depth = base.delta.map_or(0, |l| l.chain_depth);
    let (payload, table_len) = build_delta_payload(full, iteration, ranges);
    let lease = scope.begin(store)?;
    let counter = lease.counter;
    let len = payload.len() as u64;
    store.write_payload(&lease, 0, &payload)?;
    store
        .flight()
        .record(FlightEventKind::CopyDone, counter, lease.slot, 0, len, 0);
    store.persist_payload(&lease, 0, len)?;
    store.flight().record(
        FlightEventKind::PayloadPersisted,
        counter,
        lease.slot,
        iteration,
        len,
        0,
    );
    let digest = fnv1a(&payload[..table_len as usize]);
    store.commit_with_delta(
        lease,
        iteration,
        len,
        digest,
        Some(DeltaLink {
            base_counter: base.counter,
            base_slot: base.slot,
            chain_depth: depth + 1,
        }),
    )?;
    Ok(counter)
}

/// Commits one checkpoint through the store, emitting the same flight
/// records the engine does. Returns the checkpoint's counter.
///
/// # Errors
///
/// Propagates device/store errors.
pub fn commit_checkpoint(
    store: &CheckpointStore,
    iteration: u64,
    payload: &[u8],
) -> Result<u64, PccheckError> {
    commit_checkpoint_scoped(store, Scope::Global, iteration, payload)
}

/// [`commit_checkpoint`] in an explicit [`Scope`] — the namespace
/// variant commits through one tenant's private free queue and
/// `CHECK_ADDR` on a service-mode store.
///
/// # Errors
///
/// Propagates device/store errors.
pub fn commit_checkpoint_scoped(
    store: &CheckpointStore,
    scope: Scope,
    iteration: u64,
    payload: &[u8],
) -> Result<u64, PccheckError> {
    let lease = scope.begin(store)?;
    let counter = lease.counter;
    let len = payload.len() as u64;
    store.write_payload(&lease, 0, payload)?;
    store
        .flight()
        .record(FlightEventKind::CopyDone, counter, lease.slot, 0, len, 0);
    store.persist_payload(&lease, 0, len)?;
    store.flight().record(
        FlightEventKind::PayloadPersisted,
        counter,
        lease.slot,
        iteration,
        len,
        0,
    );
    let digest = StateDigest::of_payload(payload, iteration).0;
    store.commit(lease, iteration, len, digest)?;
    Ok(counter)
}

/// Drives one checkpoint up to (but not through) `point`, emitting the
/// engine's flight records along the way. For
/// [`CrashPoint::AfterCommit`] the checkpoint commits fully; for
/// [`CrashPoint::DuringPersist`] the payload is written and `CopyDone`
/// recorded, but the persist is left to the caller (who crashes it).
/// Returns `(counter, slot)` of the driven checkpoint.
///
/// # Errors
///
/// Propagates device/store errors.
pub fn drive_to_crash_point(
    store: &CheckpointStore,
    point: CrashPoint,
    iteration: u64,
    payload: &[u8],
) -> Result<(u64, u32), PccheckError> {
    drive_to_crash_point_scoped(store, Scope::Global, point, iteration, payload)
}

/// [`drive_to_crash_point`] in an explicit [`Scope`] — the namespace
/// variant strands one tenant's in-flight checkpoint on a service-mode
/// store while the other tenants' committed state stays untouched.
///
/// # Errors
///
/// Same as [`drive_to_crash_point`].
pub fn drive_to_crash_point_scoped(
    store: &CheckpointStore,
    scope: Scope,
    point: CrashPoint,
    iteration: u64,
    payload: &[u8],
) -> Result<(u64, u32), PccheckError> {
    if point == CrashPoint::AfterCommit {
        let lease = scope.begin(store)?;
        let slot = lease.slot;
        let counter = lease.counter;
        let len = payload.len() as u64;
        store.write_payload(&lease, 0, payload)?;
        store
            .flight()
            .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
        store.persist_payload(&lease, 0, len)?;
        store.flight().record(
            FlightEventKind::PayloadPersisted,
            counter,
            slot,
            iteration,
            len,
            0,
        );
        let digest = StateDigest::of_payload(payload, iteration).0;
        store.commit(lease, iteration, len, digest)?;
        return Ok((counter, slot));
    }
    if point == CrashPoint::DeltaChain {
        // A delta committed halfway between the baseline and the crash
        // iteration, then a second delta stranded with its payload durable
        // but no meta record — the crash strands it exactly like a process
        // dying between persist and commit.
        let base = scope.latest(store)?.ok_or(PccheckError::NoCheckpoint)?;
        let len = payload.len() as u64;
        let base_payload = synthetic_payload(base.iteration, len);
        let mid = base.iteration + iteration.saturating_sub(base.iteration) / 2;
        let ranges = [(0u64, len / 8), (len / 2, len / 8)];
        let full_mid = sparse_payload(&base_payload, mid, &ranges);
        commit_delta_checkpoint_scoped(store, scope, mid, &full_mid, &ranges)?;

        let ranges2 = [(len / 4, len / 8)];
        let full_crash = sparse_payload(&full_mid, iteration, &ranges2);
        let (delta_payload, _) = build_delta_payload(&full_crash, iteration, &ranges2);
        let lease = scope.begin(store)?;
        let (counter, slot) = (lease.counter, lease.slot);
        let dlen = delta_payload.len() as u64;
        store.write_payload(&lease, 0, &delta_payload)?;
        store
            .flight()
            .record(FlightEventKind::CopyDone, counter, slot, 0, dlen, 0);
        store.persist_payload(&lease, 0, dlen)?;
        store.flight().record(
            FlightEventKind::PayloadPersisted,
            counter,
            slot,
            iteration,
            dlen,
            0,
        );
        std::mem::forget(lease);
        return Ok((counter, slot));
    }
    let lease = scope.begin(store)?;
    let (counter, slot) = (lease.counter, lease.slot);
    let len = payload.len() as u64;
    match point {
        CrashPoint::ClaimPublish => {
            // Nothing: the claim already published the slot's durable
            // state word inside `begin_checkpoint`; the crash lands before
            // a single payload or meta byte follows it.
        }
        CrashPoint::DuringCopy => {
            // Half the payload lands in the page cache; no CopyDone yet.
            store.write_payload(&lease, 0, &payload[..payload.len() / 2])?;
        }
        CrashPoint::DuringPersist => {
            store.write_payload(&lease, 0, payload)?;
            store
                .flight()
                .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
            // The fatal msync is the caller's move.
        }
        CrashPoint::BetweenPersistAndCommit => {
            store.write_payload(&lease, 0, payload)?;
            store
                .flight()
                .record(FlightEventKind::CopyDone, counter, slot, 0, len, 0);
            store.persist_payload(&lease, 0, len)?;
            store.flight().record(
                FlightEventKind::PayloadPersisted,
                counter,
                slot,
                iteration,
                len,
                0,
            );
        }
        CrashPoint::AfterCommit | CrashPoint::DeltaChain => unreachable!("handled above"),
    }
    // The lease is deliberately leaked: the crash strands the in-flight
    // slot, exactly like a process dying mid-checkpoint.
    std::mem::forget(lease);
    Ok((counter, slot))
}

/// Runs one full crash scenario on a fresh SSD-backed store: baseline
/// commit, crash at `point`, forensic audit of the frozen device,
/// power-on, instrumented recovery.
///
/// # Errors
///
/// Propagates device/store/recovery errors; the injected crash itself is
/// expected and absorbed.
pub fn run_crash_scenario(
    point: CrashPoint,
    cfg: &ForensicsRunConfig,
) -> Result<ForensicsRun, PccheckError> {
    run_crash_scenario_with(point, cfg, RestoreOptions::default())
}

/// [`run_crash_scenario`] with explicit recovery [`RestoreOptions`] —
/// `readers: 1` reproduces the sequential restore path, the default runs
/// the parallel one, so tests can assert both recover bit-identically.
///
/// # Errors
///
/// Same as [`run_crash_scenario`].
pub fn run_crash_scenario_with(
    point: CrashPoint,
    cfg: &ForensicsRunConfig,
    options: RestoreOptions,
) -> Result<ForensicsRun, PccheckError> {
    let state = ByteSize::from_bytes(cfg.state_bytes);
    let cap = CheckpointStore::required_capacity_with_flight(state, cfg.slots, cfg.flight_records)
        + ByteSize::from_kb(4);
    // `arm_fuse` abstracts over the SSD's persist fuse and the striped
    // controller's — both crash the whole store's power domain.
    let (device, arm_fuse): (Arc<dyn PersistentDevice>, Box<dyn Fn(u64)>) = match cfg.topology {
        DeviceTopology::Single => {
            let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
            let fuse = Arc::clone(&ssd);
            (ssd, Box::new(move |n| fuse.arm_crash_after_persists(n)))
        }
        DeviceTopology::Striped { ways } => {
            let members: Vec<Arc<dyn PersistentDevice>> = (0..ways.max(1))
                .map(|_| {
                    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
                        as Arc<dyn PersistentDevice>
                })
                .collect();
            let array = Arc::new(StripedDevice::new(members, ByteSize::from_kb(1)));
            let fuse = Arc::clone(&array);
            (array, Box::new(move |n| fuse.arm_crash_after_persists(n)))
        }
        DeviceTopology::Tiered => {
            // The tier covers the header + slot region (where the fatal
            // payload persist lands); the flight ring and digest tables
            // spill over the boundary to the second SSD.
            let tier_cap = CheckpointStore::required_capacity(state, cfg.slots);
            let tier = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(tier_cap)));
            let spill = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
            let fuse = Arc::clone(&tier);
            let tiered = Arc::new(TieredDevice::new(
                tier as Arc<dyn PersistentDevice>,
                spill as Arc<dyn PersistentDevice>,
            ));
            (tiered, Box::new(move |n| fuse.arm_crash_after_persists(n)))
        }
    };
    let store = CheckpointStore::format_with_flight(
        Arc::clone(&device),
        state,
        cfg.slots,
        cfg.flight_records,
    )?;
    commit_checkpoint(
        &store,
        cfg.baseline_iteration,
        &synthetic_payload(cfg.baseline_iteration, cfg.state_bytes),
    )?;

    let payload = synthetic_payload(cfg.crash_iteration, cfg.state_bytes);
    let (crashed_counter, slot) =
        drive_to_crash_point(&store, point, cfg.crash_iteration, &payload)?;
    match point {
        CrashPoint::DuringPersist => {
            // The fuse fires inside this msync: the range never persists.
            arm_fuse(0);
            let err = device.persist(store.slot_payload_offset(slot), payload.len() as u64);
            debug_assert!(err.is_err(), "armed persist must crash");
        }
        _ => device.crash_now(),
    }
    drop(store);

    let report = pccheck_monitor::audit(Arc::clone(&device))?;
    device.recover();
    let (recovered, trace) =
        recover_instrumented_with(Arc::clone(&device), &Telemetry::disabled(), options)?;
    Ok(ForensicsRun {
        crash_point: point,
        device,
        report,
        crashed_counter,
        recovered,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_monitor::{CheckpointVerdict, InFlightPhase};

    fn scenario(point: CrashPoint) -> ForensicsRun {
        run_crash_scenario(point, &ForensicsRunConfig::default()).unwrap()
    }

    fn in_flight_phase(run: &ForensicsRun) -> InFlightPhase {
        match run.report.checkpoints.get(&run.crashed_counter) {
            Some(CheckpointVerdict::InFlight { phase, .. }) => *phase,
            other => panic!(
                "expected in-flight verdict for counter {}, got {other:?}",
                run.crashed_counter
            ),
        }
    }

    #[test]
    fn crash_between_claim_and_publish_is_decidable_from_the_state_word() {
        let run = scenario(CrashPoint::ClaimPublish);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Begun);
        assert_eq!(run.recovered.counter, 1, "baseline survives");
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter)
        );
        // The slot's durable state word alone classifies the claim.
        let in_flight: Vec<_> = run
            .report
            .slot_outcomes
            .iter()
            .filter_map(|o| match o {
                pccheck::SlotOutcome::InFlight { counter } => Some(*counter),
                _ => None,
            })
            .collect();
        assert_eq!(in_flight, vec![run.crashed_counter]);
    }

    #[test]
    fn crash_during_copy_is_classified_begun() {
        let run = scenario(CrashPoint::DuringCopy);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Begun);
        assert_eq!(run.recovered.counter, 1, "baseline survives");
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter),
            "forensic prediction matches what recovery restored"
        );
    }

    #[test]
    fn crash_during_persist_is_classified_copied() {
        let run = scenario(CrashPoint::DuringPersist);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Copied);
        assert_eq!(run.recovered.counter, 1);
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter)
        );
    }

    #[test]
    fn crash_between_persist_and_commit_is_classified_persisted() {
        let run = scenario(CrashPoint::BetweenPersistAndCommit);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(in_flight_phase(&run), InFlightPhase::Persisted);
        // The payload is durable but unpublished: recovery must NOT use it.
        assert_eq!(run.recovered.counter, 1);
        assert_eq!(run.recovered.iteration, 100);
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter)
        );
    }

    #[test]
    fn crash_after_commit_recovers_the_new_checkpoint() {
        let run = scenario(CrashPoint::AfterCommit);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(run.crashed_counter, 2);
        match run.report.checkpoints.get(&2) {
            Some(CheckpointVerdict::Committed {
                iteration,
                payload_valid,
                ..
            }) => {
                assert_eq!(*iteration, 200);
                assert!(payload_valid);
            }
            other => panic!("expected committed verdict, got {other:?}"),
        }
        assert_eq!(run.recovered.counter, 2);
        assert_eq!(run.recovered.iteration, 200);
        assert_eq!(run.recovered.payload, synthetic_payload(200, 4 * 1024));
    }

    #[test]
    fn crash_mid_delta_chain_recovers_by_replaying_the_chain() {
        let run = scenario(CrashPoint::DeltaChain);
        assert!(run.report.is_clean(), "{}", run.report.render());
        assert_eq!(run.crashed_counter, 3, "the stranded second delta");
        assert_eq!(run.recovered.counter, 2, "the committed delta survives");
        assert_eq!(run.recovered.iteration, 150);
        assert_eq!(run.trace.chain_links, 1, "one delta replayed on the base");
        // The reconstructed state is the sparse mutation of the baseline.
        let base = synthetic_payload(100, 4 * 1024);
        let expected = sparse_payload(&base, 150, &[(0, 512), (2048, 512)]);
        assert_eq!(run.recovered.payload, expected);
        assert_eq!(
            run.report.expected_recovery.map(|m| m.counter),
            Some(run.recovered.counter),
            "forensic prediction matches chain replay"
        );
        assert!(run.report.expected_recovery.is_some_and(|m| m.is_delta()));
    }

    #[test]
    fn recovery_trace_measures_every_phase() {
        let run = scenario(CrashPoint::DuringPersist);
        assert!(run.trace.total_nanos > 0);
        assert!(run.trace.candidates_scanned >= 1);
        assert_eq!(run.trace.fallbacks, 0);
        assert_eq!(run.trace.counter, run.recovered.counter);
    }

    #[test]
    fn striped_store_survives_every_crash_point() {
        for point in CrashPoint::ALL {
            let run = run_crash_scenario(point, &ForensicsRunConfig::striped(2)).unwrap();
            assert!(run.report.is_clean(), "{point}: {}", run.report.render());
            match point {
                CrashPoint::AfterCommit => {
                    assert_eq!(run.recovered.counter, 2, "{point}");
                    assert_eq!(run.recovered.iteration, 200, "{point}");
                    assert_eq!(run.recovered.payload, synthetic_payload(200, 4 * 1024));
                }
                CrashPoint::DeltaChain => {
                    assert_eq!(run.recovered.counter, 2, "{point}: delta survives");
                    assert_eq!(run.recovered.iteration, 150, "{point}");
                }
                _ => {
                    assert_eq!(run.recovered.counter, 1, "{point}: baseline survives");
                    assert_eq!(run.recovered.iteration, 100, "{point}");
                }
            }
            assert_eq!(
                run.report.expected_recovery.map(|m| m.counter),
                Some(run.recovered.counter),
                "{point}: forensic prediction matches recovery"
            );
        }
    }

    #[test]
    fn tiered_store_survives_every_crash_point() {
        for point in CrashPoint::ALL {
            let run = run_crash_scenario(point, &ForensicsRunConfig::tiered()).unwrap();
            assert!(run.report.is_clean(), "{point}: {}", run.report.render());
            match point {
                CrashPoint::AfterCommit => {
                    assert_eq!(run.recovered.counter, 2, "{point}");
                    assert_eq!(run.recovered.payload, synthetic_payload(200, 4 * 1024));
                }
                CrashPoint::DeltaChain => {
                    assert_eq!(run.recovered.counter, 2, "{point}: delta survives");
                    assert_eq!(run.recovered.iteration, 150, "{point}");
                }
                _ => {
                    assert_eq!(run.recovered.counter, 1, "{point}: baseline survives");
                }
            }
            assert_eq!(
                run.report.expected_recovery.map(|m| m.counter),
                Some(run.recovered.counter),
                "{point}: forensic prediction matches recovery"
            );
        }
    }

    /// The tentpole cross-check: on every topology and at every crash
    /// point, the parallel restore path (4 readers) must recover the same
    /// checkpoint, bit for bit, as the sequential one (1 reader) — and the
    /// forensic auditor must bless the store either way.
    #[test]
    fn parallel_restore_is_bit_identical_to_sequential_at_every_crash_point() {
        let topologies = [ForensicsRunConfig::striped(2), ForensicsRunConfig::tiered()];
        for cfg in &topologies {
            for point in CrashPoint::ALL {
                let parallel = run_crash_scenario_with(
                    point,
                    cfg,
                    RestoreOptions {
                        readers: 4,
                        probe: 2,
                        job: None,
                    },
                )
                .unwrap();
                assert!(
                    parallel.report.is_clean(),
                    "{point}/{:?}: {}",
                    cfg.topology,
                    parallel.report.render()
                );
                // Re-run recovery sequentially on the same recovered store
                // image and compare everything that matters.
                let (sequential, seq_trace) = recover_instrumented_with(
                    Arc::clone(&parallel.device),
                    &Telemetry::disabled(),
                    RestoreOptions {
                        readers: 1,
                        probe: 1,
                        job: None,
                    },
                )
                .unwrap();
                assert_eq!(
                    parallel.recovered.payload, sequential.payload,
                    "{point}/{:?}: parallel and sequential restores diverge",
                    cfg.topology
                );
                assert_eq!(parallel.recovered.counter, sequential.counter);
                assert_eq!(parallel.recovered.iteration, sequential.iteration);
                assert_eq!(parallel.trace.chain_links, seq_trace.chain_links);
            }
        }
    }

    #[test]
    fn crash_point_names_round_trip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::from_name("nope"), None);
    }
}

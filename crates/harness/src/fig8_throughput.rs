//! Figure 8 (a–f): training throughput vs checkpoint frequency on the
//! SSD/A100 testbed for six models, comparing PCcheck against CheckFreq,
//! GPM (single-GPU models) and Gemini (distributed models), with the
//! no-checkpoint throughput as the horizontal reference line.

use pccheck_gpu::{ModelSpec, ModelZoo};
use pccheck_sim::StrategyCfg;
use pccheck_util::CsvWriter;

use crate::sweep::{sweep_ssd, SweepRow};
use crate::PAPER_INTERVALS;

/// The strategies compared for a given model (Gemini only in distributed
/// setups, matching §5.1).
pub fn strategies_for(model: &ModelSpec) -> Vec<StrategyCfg> {
    let mut s = vec![
        StrategyCfg::CheckFreq,
        StrategyCfg::Gpm,
        StrategyCfg::pccheck(2, 3),
    ];
    if model.is_distributed() {
        s.push(StrategyCfg::Gemini);
    }
    s
}

/// Runs the full six-model sweep.
pub fn run() -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for model in ModelZoo::figure8_models() {
        rows.extend(sweep_ssd(&model, &strategies_for(&model), &PAPER_INTERVALS));
    }
    rows
}

/// Runs one model's panel (used by the artifact-style "focus on 8b" flow).
pub fn run_model(name: &str) -> Vec<SweepRow> {
    let model = ModelZoo::by_name(name).expect("known model");
    sweep_ssd(&model, &strategies_for(&model), &PAPER_INTERVALS)
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[SweepRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "model",
            "strategy",
            "interval",
            "throughput",
            "slowdown",
            "write_time_secs",
        ],
    );
    for r in rows {
        w.row(&[
            &r.model,
            &r.strategy,
            &r.interval,
            &format_args!("{:.5}", r.throughput),
            &format_args!("{:.4}", r.slowdown),
            &format_args!("{:.3}", r.write_time_secs),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slowdown(rows: &[SweepRow], strategy: &str, interval: u64) -> f64 {
        rows.iter()
            .find(|r| r.strategy.starts_with(strategy) && r.interval == interval)
            .map(|r| r.slowdown)
            .expect("row present")
    }

    #[test]
    fn bert_panel_shapes_hold() {
        let rows = run_model("BERT");
        // PCcheck checkpointing every 10 iterations has small overhead...
        let pc10 = slowdown(&rows, "pccheck", 10);
        assert!(pc10 < 1.15, "pccheck@10 slowdown {pc10}");
        // ...GPM pays much more at the same frequency (it stalls training
        // for the whole persist), and CheckFreq collapses at interval 1
        // where its one-at-a-time rule serializes everything.
        let gpm10 = slowdown(&rows, "gpm", 10);
        assert!(gpm10 > 1.4, "gpm@10 {gpm10}");
        let cf1 = slowdown(&rows, "checkfreq", 1);
        let pc1 = slowdown(&rows, "pccheck", 1);
        assert!(cf1 > pc1 * 1.3, "checkfreq@1 {cf1} vs pccheck@1 {pc1}");
    }

    #[test]
    fn opt13b_matches_paper_anchor() {
        // §5.2.3: at interval 10, PCcheck sustains ~0.5 it/s (its ideal
        // rate) while CheckFreq drops to ~0.256 it/s — a ~2x gap driven by
        // the 16.2 GB / 37 s single-threaded persist. GPM is worse still.
        let rows = run_model("OPT-1.3B");
        let pc = slowdown(&rows, "pccheck", 10);
        let cf = slowdown(&rows, "checkfreq", 10);
        let gpm = slowdown(&rows, "gpm", 10);
        assert!(pc < 1.15, "pccheck@10 {pc}");
        assert!(
            (1.5..=2.5).contains(&cf),
            "checkfreq@10 {cf} (paper ~1.95x)"
        );
        assert!(gpm > cf, "gpm@10 {gpm} should exceed checkfreq {cf}");
        // And everyone converges by interval 50+ except GPM's stall.
        let pc50 = slowdown(&rows, "pccheck", 50);
        assert!(pc50 < 1.12, "pccheck@50 {pc50}");
    }

    #[test]
    fn distributed_panels_include_gemini() {
        let rows = run_model("BLOOM-7B");
        assert!(rows.iter().any(|r| r.strategy == "gemini"));
        // §5.2.1: Gemini 1.65–1.08× slower at intervals 10–100, PCcheck
        // < 1.02× at the same points.
        let gm10 = slowdown(&rows, "gemini", 10);
        let pc10 = slowdown(&rows, "pccheck", 10);
        assert!(gm10 > 1.3, "gemini@10 {gm10}");
        assert!(pc10 < 1.10, "pccheck@10 {pc10}");
        let gm100 = slowdown(&rows, "gemini", 100);
        assert!(gm100 < 1.3, "gemini@100 {gm100} should be mild");
    }

    #[test]
    fn single_gpu_panels_exclude_gemini() {
        let rows = run_model("VGG16");
        assert!(rows.iter().all(|r| r.strategy != "gemini"));
    }
}

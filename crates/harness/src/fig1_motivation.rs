//! Figure 1: BLOOM-7B training-throughput impact of CheckFreq and Gemini
//! at varying checkpoint intervals, plus the recovery time when a failure
//! occurs (the secondary axis' grey line).
//!
//! Recovery time used to be purely modeled ([`RecoveryModel`]); the
//! protocol component (scan slots, load the newest committed payload,
//! verify its digest) is now *measured* from the instrumented recovery
//! path and folded into the reported total. On the simulated device it
//! is microseconds against modeled tens of seconds, so the figure's
//! shape is unchanged — but the column now carries a real measurement.

use std::sync::Arc;

use pccheck::{recover_instrumented, CheckpointStore, RecoveryModel, Strategy};
use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
use pccheck_gpu::{ModelZoo, StateDigest};
use pccheck_sim::StrategyCfg;
use pccheck_telemetry::Telemetry;
use pccheck_util::{ByteSize, CsvWriter};

use crate::sweep::{self, load_time};
use crate::PAPER_INTERVALS;

/// One Figure 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Checkpoint interval.
    pub interval: u64,
    /// CheckFreq slowdown vs no checkpointing.
    pub checkfreq_slowdown: f64,
    /// Gemini slowdown vs no checkpointing.
    pub gemini_slowdown: f64,
    /// Worst-case recovery time at this interval (seconds): the CheckFreq
    /// model's redo/load terms plus the measured protocol overhead.
    pub recovery_secs: f64,
    /// Measured recovery-protocol time (seconds): scan + load + verify on
    /// a concrete store, from [`recover_instrumented`]'s trace.
    pub recovery_protocol_measured_secs: f64,
}

/// Measures the recovery protocol (slot scan, payload load, digest
/// verify) on a small concrete store and returns its wall-clock seconds.
fn measured_protocol_secs() -> f64 {
    let state = ByteSize::from_kb(64);
    let cap = CheckpointStore::required_capacity(state, 3) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let store =
        CheckpointStore::format(Arc::clone(&device), state, 3).expect("device sized for the store");
    let payload = vec![0x5A; state.as_u64() as usize];
    for iteration in [1u64, 2] {
        let lease = store.begin_checkpoint();
        store.write_payload(&lease, 0, &payload).expect("write");
        store
            .persist_payload(&lease, 0, payload.len() as u64)
            .expect("persist");
        let digest = StateDigest::of_payload(&payload, iteration).0;
        store
            .commit(lease, iteration, payload.len() as u64, digest)
            .expect("commit");
    }
    drop(store);
    let (_, trace) = recover_instrumented(device, &Telemetry::disabled())
        .expect("store holds committed checkpoints");
    trace.total_nanos as f64 / 1e9
}

/// Runs the experiment.
pub fn run() -> Vec<Fig1Row> {
    let model = ModelZoo::bloom_7b();
    let iter_time = model.iter_time(pccheck_gpu::GpuKind::A100);
    let load = load_time(&model);
    let protocol_secs = measured_protocol_secs();
    PAPER_INTERVALS
        .iter()
        .map(|&interval| {
            let cf = sweep::run_point(&model, StrategyCfg::CheckFreq, interval);
            let gm = sweep::run_point(&model, StrategyCfg::Gemini, interval);
            let ideal = sweep::run_point(&model, StrategyCfg::Ideal, interval);
            let recovery = RecoveryModel {
                iter_time,
                interval,
                write_time: cf.mean_write_time,
                load_time: load,
            };
            Fig1Row {
                interval,
                checkfreq_slowdown: cf.slowdown_vs(&ideal),
                gemini_slowdown: gm.slowdown_vs(&ideal),
                recovery_secs: recovery.worst_case(Strategy::CheckFreq).as_secs_f64()
                    + protocol_secs,
                recovery_protocol_measured_secs: protocol_secs,
            }
        })
        .collect()
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig1Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "interval",
            "checkfreq_slowdown",
            "gemini_slowdown",
            "recovery_secs",
            "recovery_protocol_measured_secs",
        ],
    );
    for r in rows {
        w.row(&[
            &r.interval,
            &format_args!("{:.4}", r.checkfreq_slowdown),
            &format_args!("{:.4}", r.gemini_slowdown),
            &format_args!("{:.2}", r.recovery_secs),
            &format_args!("{:.6}", r.recovery_protocol_measured_secs),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shapes_hold() {
        let rows = run();
        assert_eq!(rows.len(), 5);
        // Slowdown decreases with larger intervals.
        for pair in rows.windows(2) {
            assert!(
                pair[0].checkfreq_slowdown >= pair[1].checkfreq_slowdown * 0.98,
                "CheckFreq slowdown must be non-increasing: {pair:?}"
            );
        }
        // At interval 1 both baselines are far from ideal...
        assert!(rows[0].checkfreq_slowdown > 2.0);
        assert!(rows[0].gemini_slowdown > 2.0);
        // ...and still clearly off at interval 10 (the paper reports >10%
        // up to interval 50; our modeled Tw for an 18 GB shard is ~43 s, so
        // the CheckFreq stall vanishes between intervals 15 and 50 — see
        // EXPERIMENTS.md for the deviation note).
        let at10 = rows.iter().find(|r| r.interval == 10).unwrap();
        assert!(
            at10.checkfreq_slowdown > 1.15,
            "{}",
            at10.checkfreq_slowdown
        );
        // Recovery time grows with the interval.
        assert!(rows[4].recovery_secs > rows[0].recovery_secs);
        // The measured protocol overhead is real but tiny next to the
        // modeled redo/load terms.
        for r in &rows {
            assert!(r.recovery_protocol_measured_secs > 0.0);
            assert!(r.recovery_protocol_measured_secs < r.recovery_secs / 10.0);
        }
    }

    #[test]
    fn csv_is_well_formed() {
        let rows = run();
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("interval,"));
        assert_eq!(text.lines().count(), rows.len() + 1);
    }
}

//! Figure 1: BLOOM-7B training-throughput impact of CheckFreq and Gemini
//! at varying checkpoint intervals, plus the recovery time when a failure
//! occurs (the secondary axis' grey line).

use pccheck::{RecoveryModel, Strategy};
use pccheck_gpu::ModelZoo;
use pccheck_sim::StrategyCfg;
use pccheck_util::CsvWriter;

use crate::sweep::{self, load_time};
use crate::PAPER_INTERVALS;

/// One Figure 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Checkpoint interval.
    pub interval: u64,
    /// CheckFreq slowdown vs no checkpointing.
    pub checkfreq_slowdown: f64,
    /// Gemini slowdown vs no checkpointing.
    pub gemini_slowdown: f64,
    /// Worst-case recovery time at this interval (seconds), CheckFreq model.
    pub recovery_secs: f64,
}

/// Runs the experiment.
pub fn run() -> Vec<Fig1Row> {
    let model = ModelZoo::bloom_7b();
    let iter_time = model.iter_time(pccheck_gpu::GpuKind::A100);
    let load = load_time(&model);
    PAPER_INTERVALS
        .iter()
        .map(|&interval| {
            let cf = sweep::run_point(&model, StrategyCfg::CheckFreq, interval);
            let gm = sweep::run_point(&model, StrategyCfg::Gemini, interval);
            let ideal = sweep::run_point(&model, StrategyCfg::Ideal, interval);
            let recovery = RecoveryModel {
                iter_time,
                interval,
                write_time: cf.mean_write_time,
                load_time: load,
            };
            Fig1Row {
                interval,
                checkfreq_slowdown: cf.slowdown_vs(&ideal),
                gemini_slowdown: gm.slowdown_vs(&ideal),
                recovery_secs: recovery.worst_case(Strategy::CheckFreq).as_secs_f64(),
            }
        })
        .collect()
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig1Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "interval",
            "checkfreq_slowdown",
            "gemini_slowdown",
            "recovery_secs",
        ],
    );
    for r in rows {
        w.row(&[
            &r.interval,
            &format_args!("{:.4}", r.checkfreq_slowdown),
            &format_args!("{:.4}", r.gemini_slowdown),
            &format_args!("{:.2}", r.recovery_secs),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shapes_hold() {
        let rows = run();
        assert_eq!(rows.len(), 5);
        // Slowdown decreases with larger intervals.
        for pair in rows.windows(2) {
            assert!(
                pair[0].checkfreq_slowdown >= pair[1].checkfreq_slowdown * 0.98,
                "CheckFreq slowdown must be non-increasing: {pair:?}"
            );
        }
        // At interval 1 both baselines are far from ideal...
        assert!(rows[0].checkfreq_slowdown > 2.0);
        assert!(rows[0].gemini_slowdown > 2.0);
        // ...and still clearly off at interval 10 (the paper reports >10%
        // up to interval 50; our modeled Tw for an 18 GB shard is ~43 s, so
        // the CheckFreq stall vanishes between intervals 15 and 50 — see
        // EXPERIMENTS.md for the deviation note).
        let at10 = rows.iter().find(|r| r.interval == 10).unwrap();
        assert!(at10.checkfreq_slowdown > 1.15, "{}", at10.checkfreq_slowdown);
        // Recovery time grows with the interval.
        assert!(rows[4].recovery_secs > rows[0].recovery_secs);
    }

    #[test]
    fn csv_is_well_formed() {
        let rows = run();
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("interval,"));
        assert_eq!(text.lines().count(), rows.len() + 1);
    }
}

//! Figure 10: checkpointing overhead for BERT on the Intel Optane PMEM
//! machine (TitanRTX GPU). PMEM's higher bandwidth shrinks everyone's
//! overhead; PCcheck still wins at every frequency.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};

use crate::sweep::{iterations_for, SweepRow};
use crate::PAPER_INTERVALS;

/// Runs the PMEM BERT sweep.
pub fn run() -> Vec<SweepRow> {
    let model = ModelZoo::bert();
    let strategies = [
        StrategyCfg::CheckFreq,
        StrategyCfg::Gpm,
        StrategyCfg::pccheck(2, 3),
    ];
    let mut rows = Vec::new();
    for &interval in &PAPER_INTERVALS {
        let ideal = SimConfig::pmem_rtx(&model, interval, iterations_for(interval))
            .with_strategy(StrategyCfg::Ideal)
            .run();
        for &strategy in &strategies {
            let report = SimConfig::pmem_rtx(&model, interval, iterations_for(interval))
                .with_strategy(strategy)
                .run();
            rows.push(SweepRow {
                model: "BERT-PMEM".into(),
                strategy: report.strategy.clone(),
                interval,
                throughput: report.throughput,
                slowdown: report.slowdown_vs(&ideal),
                write_time_secs: report.mean_write_time.as_secs_f64(),
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[SweepRow], out: W) -> std::io::Result<()> {
    crate::fig8_throughput::write_csv(rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig8_throughput::run_model;

    fn slowdown(rows: &[SweepRow], strategy: &str, interval: u64) -> f64 {
        rows.iter()
            .find(|r| r.strategy.starts_with(strategy) && r.interval == interval)
            .map(|r| r.slowdown)
            .expect("row present")
    }

    #[test]
    fn pccheck_wins_at_every_frequency_on_pmem() {
        let rows = run();
        for &interval in &PAPER_INTERVALS {
            let pc = slowdown(&rows, "pccheck", interval);
            let cf = slowdown(&rows, "checkfreq", interval);
            let gpm = slowdown(&rows, "gpm", interval);
            assert!(pc <= cf * 1.01, "interval {interval}: pc {pc} cf {cf}");
            assert!(pc <= gpm * 1.01, "interval {interval}: pc {pc} gpm {gpm}");
        }
    }

    #[test]
    fn pmem_overheads_are_lower_than_ssd() {
        // §5.2.4: PMEM bandwidth is higher than the SSD's, so CheckFreq and
        // GPM perform better than in the SSD setup.
        let pmem = run();
        let ssd = run_model("BERT");
        // At interval 1 CheckFreq's stall is bandwidth-bound, so the faster
        // media shows directly.
        let cf_pmem = slowdown(&pmem, "checkfreq", 1);
        let cf_ssd = slowdown(&ssd, "checkfreq", 1);
        assert!(
            cf_pmem < cf_ssd,
            "interval 1: PMEM {cf_pmem} should beat SSD {cf_ssd}"
        );
        let gpm_pmem = slowdown(&pmem, "gpm", 10);
        let gpm_ssd = slowdown(&ssd, "gpm", 10);
        assert!(gpm_pmem < gpm_ssd, "gpm: PMEM {gpm_pmem} vs SSD {gpm_ssd}");
    }

    #[test]
    fn pccheck_interval_10_on_pmem_is_cheap() {
        // §5.2.4: checkpointing every 10 instead of every 100 iterations
        // keeps the same (small) overhead while recovering 10× faster.
        let rows = run();
        let pc10 = slowdown(&rows, "pccheck", 10);
        let pc100 = slowdown(&rows, "pccheck", 100);
        assert!(pc10 < 1.12, "pccheck@10 on PMEM {pc10}");
        assert!((pc10 - pc100).abs() < 0.1);
    }
}

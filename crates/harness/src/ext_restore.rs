//! Extension: parallel-restore sweep — recovery latency vs reader count
//! and stripe width.
//!
//! §4.2 treats checkpoint load time `l` as a device-bound constant. The
//! [`pccheck::RestorePipeline`] turns it into a tunable: `r` reader
//! threads pull verified chunks concurrently, so on an `N`-way striped
//! store the restore should approach `N×` a single reader's bandwidth —
//! the read-side mirror of the `ext_striping` persist sweep. This sweep
//! measures the wall-clock time to fetch and verify one committed
//! checkpoint across payload size × readers × stripe ways on throttled
//! simulated SSDs, where reader parallelism (not CPU) is the bottleneck.
//!
//! The checkpoint is persisted through [`pccheck::PersistPipeline`], so
//! the slot carries a per-chunk digest table and the restore verifies
//! chunks independently as they land — preemption-grade restart latency
//! is `payload / (min(r, ways) · member_bandwidth)` plus a verification
//! overhang that overlaps the reads.

use std::sync::Arc;
use std::time::Instant;

use pccheck::{CheckpointStore, PersistPipeline, PipelineCtx, RestorePipeline};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice, StripedDevice};
use pccheck_gpu::{SnapshotSource, StateDigest};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::{Bandwidth, ByteSize, CsvWriter};

/// A host-resident payload standing in for GPU weights.
struct HostPayload {
    data: Vec<u8>,
    step: u64,
}

impl SnapshotSource for HostPayload {
    fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.data.len() as u64)
    }

    fn step_count(&self) -> u64 {
        self.step
    }

    fn digest(&self) -> StateDigest {
        StateDigest::of_payload(&self.data, self.step)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        let o = offset as usize;
        dst.copy_from_slice(&self.data[o..o + dst.len()]);
    }
}

/// Reader counts swept.
pub const READERS: [usize; 3] = [1, 2, 4];

/// Stripe widths swept (1 = a single SSD, no striping).
pub const WAYS: [u32; 2] = [1, 4];

/// Per-member media bandwidth. Modest on purpose: restore must be
/// device-bound so the sweep measures read fan-out, not memcpy speed.
pub const MEMBER_MB_PER_SEC: f64 = 200.0;

/// Stripe unit. Must comfortably exceed each member's token-bucket burst
/// bank (~10 ms ≈ 2 MB at 200 MB/s): with small units a *single*
/// sequential reader harvests every idle member's banked refill credit
/// and already restores at aggregate bandwidth, hiding reader fan-out.
/// With 8 MiB units a lone reader pays real throttle time per unit while
/// `r` readers drain `r` members' buckets concurrently.
pub const STRIPE_UNIT: u64 = 8 * 1024 * 1024;

/// Restore read granularity (and the persist-side digest-table grain).
pub const READ_CHUNK: u64 = 128 * 1024;

/// Payload sizes swept by [`run`]. The larger size gives every 4-reader
/// run a whole stripe unit, so reader `k` maps to member `k`.
pub fn sizes() -> Vec<ByteSize> {
    vec![ByteSize::from_mb_u64(16), ByteSize::from_mb_u64(32)]
}

/// A single-size smoke geometry for CI: one stripe unit per reader at
/// the widest point, finishing in a couple hundred milliseconds.
pub fn smoke_sizes() -> Vec<ByteSize> {
    vec![ByteSize::from_mb_u64(32)]
}

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtRestoreRow {
    /// Checkpoint payload size.
    pub size: ByteSize,
    /// Stripe members backing the store.
    pub ways: u32,
    /// Parallel restore readers.
    pub readers: usize,
    /// Wall-clock fetch+verify time (seconds).
    pub restore_secs: f64,
    /// Speedup over the 1-reader run on the same geometry.
    pub speedup: f64,
}

/// A formatted store on a (possibly striped) throttled device set with one
/// committed checkpoint of `size` whose slot carries a digest table.
/// Public so `bench_pr5` drives the identical geometry.
pub fn committed_store(size: ByteSize, ways: u32) -> Arc<CheckpointStore> {
    let cap = CheckpointStore::required_capacity(size, 2) + ByteSize::from_kb(64);
    let throttled = |capacity| DeviceConfig {
        capacity,
        write_bandwidth: Bandwidth::from_mb_per_sec(MEMBER_MB_PER_SEC),
        throttled: true,
    };
    let device: Arc<dyn PersistentDevice> = if ways <= 1 {
        Arc::new(SsdDevice::new(throttled(cap)))
    } else {
        // Each member holds its 1/ways share plus slack for rounding to
        // whole stripe units.
        let member_cap = ByteSize::from_bytes(cap.as_u64() / u64::from(ways) + 2 * STRIPE_UNIT);
        let members = (0..ways)
            .map(|_| Arc::new(SsdDevice::new(throttled(member_cap))) as Arc<dyn PersistentDevice>)
            .collect();
        Arc::new(StripedDevice::new(
            members,
            ByteSize::from_bytes(STRIPE_UNIT),
        ))
    };
    let store = Arc::new(CheckpointStore::format(device, size, 2).expect("format store"));
    let src = HostPayload {
        data: (0..size.as_u64())
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect(),
        step: 1,
    };
    let persist = PersistPipeline::new(Arc::clone(&store))
        .with_writers(4)
        .with_staging(HostBufferPool::new(ByteSize::from_bytes(READ_CHUNK), 8));
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    let lease = persist.lease(ctx);
    let persist_start = persist
        .copy_streamed(ctx, &src, &lease, size)
        .expect("persist payload");
    persist
        .seal(ctx, &lease, 1, size, persist_start)
        .expect("seal");
    persist
        .commit(ctx, lease, 1, size.as_u64(), src.digest().0)
        .expect("commit");
    store
}

/// Times one verified fetch of the committed checkpoint with `readers`.
///
/// An untimed warmup fetch first drains the members' token buckets'
/// initial burst allowance (the bench_pr3 idiom), so the timed pass is
/// media-rate-bound instead of riding banked idle credit.
pub fn measure_store(store: &Arc<CheckpointStore>, readers: usize) -> f64 {
    let meta = store.latest_committed().expect("committed checkpoint");
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    let pipeline = RestorePipeline::new(Arc::clone(store))
        .with_readers(readers)
        .with_read_chunk(ByteSize::from_bytes(READ_CHUNK));
    pipeline.fetch_verified(ctx, &meta).expect("warmup restore");
    let t0 = Instant::now();
    let payload = pipeline
        .fetch_verified(ctx, &meta)
        .expect("restore verifies");
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(payload.len() as u64, meta.payload_len);
    secs
}

/// Runs the sweep over `sizes` × [`WAYS`] × [`READERS`].
pub fn run_with(sizes: &[ByteSize]) -> Vec<ExtRestoreRow> {
    let mut rows = Vec::new();
    for &size in sizes {
        for &ways in &WAYS {
            let store = committed_store(size, ways);
            let baseline = measure_store(&store, 1);
            for &readers in &READERS {
                let restore_secs = if readers == 1 {
                    baseline
                } else {
                    measure_store(&store, readers)
                };
                rows.push(ExtRestoreRow {
                    size,
                    ways,
                    readers,
                    restore_secs,
                    speedup: baseline / restore_secs,
                });
            }
        }
    }
    rows
}

/// Runs the full sweep.
pub fn run() -> Vec<ExtRestoreRow> {
    run_with(&sizes())
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[ExtRestoreRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &["size_mb", "ways", "readers", "restore_secs", "speedup"],
    );
    for r in rows {
        w.row(&[
            &format_args!("{:.1}", r.size.as_mb()),
            &r.ways,
            &r.readers,
            &format_args!("{:.4}", r.restore_secs),
            &format_args!("{:.2}", r.speedup),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared smoke sweep: the geometry is device-throttled, so the
    /// run costs real wall-clock time — both tests read the same rows.
    fn smoke_rows() -> &'static [ExtRestoreRow] {
        static ROWS: OnceLock<Vec<ExtRestoreRow>> = OnceLock::new();
        ROWS.get_or_init(|| run_with(&smoke_sizes()))
    }

    fn speedup_of(rows: &[ExtRestoreRow], ways: u32, readers: usize) -> f64 {
        rows.iter()
            .find(|r| r.ways == ways && r.readers == readers)
            .map(|r| r.speedup)
            .expect("row present")
    }

    #[test]
    fn four_readers_beat_one_on_a_wide_stripe() {
        let rows = smoke_rows();
        assert!((speedup_of(rows, 4, 1) - 1.0).abs() < 1e-9);
        let four = speedup_of(rows, 4, 4);
        // Same floor bench_pr5 asserts: ≥2× at 4 readers on a 4-way stripe.
        assert!(four >= 2.0, "4-way/4-reader speedup {four} < 2.0");
        let two = speedup_of(rows, 4, 2);
        assert!(two >= 1.5, "4-way/2-reader speedup {two} < 1.5");
    }

    #[test]
    fn single_device_restores_stay_device_bound() {
        let rows = smoke_rows();
        // One SSD serves ~one reader's bandwidth no matter how many
        // readers contend for it.
        let four = speedup_of(rows, 1, 4);
        assert!(four < 1.8, "1-way/4-reader speedup {four} should be flat");
    }
}

//! Experiment drivers for the PCcheck reproduction.
//!
//! One module per paper figure/table. Every experiment returns plain row
//! structs *and* can emit the CSV the original artifact's scripts produce,
//! so `cargo run -p pccheck-harness --bin figN` regenerates the paper's
//! plots' data. The `pccheck-bench` crate wraps the same entry points as
//! `cargo bench` targets.

pub mod ext_compress;
pub mod ext_delta;
pub mod ext_h100;
pub mod ext_jit;
pub mod ext_restore;
pub mod ext_striping;
pub mod fig10_pmem;
pub mod fig11_persist_micro;
pub mod fig12_concurrency;
pub mod fig13_threads;
pub mod fig14_dram;
pub mod fig1_motivation;
pub mod fig2_goodput_motivation;
pub mod fig8_throughput;
pub mod fig9_goodput;
pub mod forensics_run;
pub mod profile_run;
pub mod sweep;
pub mod tables;
pub mod telemetry_run;

/// The checkpoint intervals the paper sweeps in most figures.
pub const PAPER_INTERVALS: [u64; 5] = [1, 10, 25, 50, 100];

/// Default output directory for CSVs.
pub const RESULTS_DIR: &str = "results";

/// Ensures the results directory exists and returns the path for `name`.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn result_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("create results dir");
    dir.join(name)
}

//! Figure 14: sensitivity to the DRAM staging budget and chunked
//! pipelining — OPT-1.3B throughput at a fixed interval of 15, varying the
//! DRAM pool from `m` to `2m` and comparing the non-pipelined engine with
//! pipelined variants at different chunk counts.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::{ByteSize, CsvWriter};

use crate::sweep::iterations_for;

/// Fixed checkpoint interval (the paper uses 15).
pub const INTERVAL: u64 = 15;
/// DRAM budgets as multiples of the checkpoint size `m`.
pub const DRAM_FACTORS: [f64; 3] = [1.0, 1.5, 2.0];
/// Pipelined variants: chunks per checkpoint (the paper's `p_2`, `p_4`).
pub const PIPELINE_CHUNKS: [u64; 2] = [2, 4];

/// One Figure 14 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// DRAM budget as a multiple of `m`.
    pub dram_factor: f64,
    /// Variant label: `nopipe`, `p2`, `p4`.
    pub variant: String,
    /// Throughput (iterations/second).
    pub throughput: f64,
}

fn configure(dram_factor: f64, chunks_per_ckpt: Option<u64>) -> SimConfig {
    let model = ModelZoo::opt_1_3b();
    let mut cfg = SimConfig::ssd_a100(&model, INTERVAL, iterations_for(INTERVAL));
    let m = cfg.checkpoint_size.as_u64();
    match chunks_per_ckpt {
        Some(k) => {
            // Pipelined with k chunks per checkpoint.
            cfg.chunk_size = ByteSize::from_bytes(m.div_ceil(k));
            cfg.dram_chunks = ((dram_factor * k as f64).round() as usize).max(1);
            cfg.strategy = StrategyCfg::pccheck(2, 3);
        }
        None => {
            // Non-pipelined: the whole checkpoint stages in DRAM; needs
            // dram >= m, so the pool holds `factor` checkpoint-sized chunks.
            cfg.chunk_size = ByteSize::from_bytes(m);
            cfg.dram_chunks = (dram_factor.floor() as usize).max(1);
            cfg.strategy = StrategyCfg::PcCheck {
                n: 2,
                p: 3,
                pipelined: false,
            };
        }
    }
    cfg
}

/// Runs the sweep.
pub fn run() -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for &factor in &DRAM_FACTORS {
        let nopipe = configure(factor, None).run();
        rows.push(Fig14Row {
            dram_factor: factor,
            variant: "nopipe".into(),
            throughput: nopipe.throughput,
        });
        for &k in &PIPELINE_CHUNKS {
            let report = configure(factor, Some(k)).run();
            rows.push(Fig14Row {
                dram_factor: factor,
                variant: format!("p{k}"),
                throughput: report.throughput,
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig14Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["dram_factor", "variant", "throughput"]);
    for r in rows {
        w.row(&[
            &format_args!("{:.1}", r.dram_factor),
            &r.variant,
            &format_args!("{:.5}", r.throughput),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throughput(rows: &[Fig14Row], factor: f64, variant: &str) -> f64 {
        rows.iter()
            .find(|r| (r.dram_factor - factor).abs() < 1e-9 && r.variant == variant)
            .map(|r| r.throughput)
            .expect("row present")
    }

    #[test]
    fn pipelining_is_at_least_as_good() {
        // §5.4.3: "pipelining leads to slightly higher throughput compared
        // to the non-pipelined case, although the differences are small".
        let rows = run();
        for &factor in &DRAM_FACTORS {
            let np = throughput(&rows, factor, "nopipe");
            let p4 = throughput(&rows, factor, "p4");
            assert!(
                p4 >= np * 0.99,
                "factor {factor}: p4 ({p4}) vs nopipe ({np})"
            );
        }
    }

    #[test]
    fn shrinking_dram_to_m_costs_little() {
        // §5.4.3: DRAM of m adds at most ~7% over 2m.
        let rows = run();
        let at_m = throughput(&rows, 1.0, "p4");
        let at_2m = throughput(&rows, 2.0, "p4");
        let overhead = at_2m / at_m;
        assert!(overhead < 1.12, "m vs 2m should cost <~10%, got {overhead}");
        assert!(overhead >= 0.99, "more DRAM should not hurt: {overhead}");
    }

    #[test]
    fn grid_is_complete() {
        assert_eq!(run().len(), 9);
    }
}

//! Extension: RAID-0 striping sweep for the Figure-11 persist micro-benchmark.
//!
//! Figure 11 measures the end-to-end time to persist one solo checkpoint.
//! This extension re-runs that microbenchmark with the storage striped
//! across 1, 2, and 4 identical devices ([`SimConfig::with_stripe_ways`];
//! the concrete counterpart is `pccheck_device::StripedDevice`). Writer
//! threads are provisioned generously so the per-writer syscall cap never
//! hides the wider array: the persist time should then scale with the
//! aggregate media bandwidth, i.e. near-linearly in the stripe width.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::{ByteSize, CsvWriter};

/// Stripe widths swept.
pub const WAYS: [u32; 3] = [1, 2, 4];

/// Writer threads per checkpoint — enough that `p` per-writer caps exceed
/// the 4-way aggregate bandwidth, so the device array is the bottleneck.
pub const WRITERS: usize = 16;

/// Checkpoint sizes swept (the small and large ends of Table 3).
pub fn sizes() -> Vec<ByteSize> {
    vec![ByteSize::from_gb(1.1), ByteSize::from_gb(16.2)]
}

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtStripingRow {
    /// Checkpoint size.
    pub size: ByteSize,
    /// Stripe members.
    pub ways: u32,
    /// End-to-end solo persist time (seconds).
    pub persist_secs: f64,
    /// Speedup over the 1-way run of the same size.
    pub speedup: f64,
}

/// Measures the solo per-checkpoint write time at one stripe width.
pub fn measure(size: ByteSize, ways: u32) -> f64 {
    let mut cfg = SimConfig::ssd_a100(&ModelZoo::vgg16(), 2000, 2500)
        .with_strategy(StrategyCfg::pccheck(1, WRITERS))
        .with_stripe_ways(ways);
    cfg.checkpoint_size = size;
    // Finer chunks than Figure 11's m/20: the final chunk drains at the
    // per-writer cap regardless of stripe width, so a coarse tail would
    // mask the bandwidth scaling this sweep is after.
    cfg.chunk_size = ByteSize::from_bytes((size.as_u64() / 64).max(1));
    cfg.dram_chunks = 128;
    cfg.label = format!("stripe-{ways}-{size}");
    cfg.run().mean_write_time.as_secs_f64()
}

/// Runs the sweep.
pub fn run() -> Vec<ExtStripingRow> {
    let mut rows = Vec::new();
    for size in sizes() {
        let baseline = measure(size, 1);
        for ways in WAYS {
            let persist_secs = if ways == 1 {
                baseline
            } else {
                measure(size, ways)
            };
            rows.push(ExtStripingRow {
                size,
                ways,
                persist_secs,
                speedup: baseline / persist_secs,
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[ExtStripingRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["size_gb", "ways", "persist_secs", "speedup"]);
    for r in rows {
        w.row(&[
            &format_args!("{:.1}", r.size.as_gb()),
            &r.ways,
            &format_args!("{:.3}", r.persist_secs),
            &format_args!("{:.2}", r.speedup),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup_of(rows: &[ExtStripingRow], gb: f64, ways: u32) -> f64 {
        rows.iter()
            .find(|r| r.ways == ways && (r.size.as_gb() - gb).abs() < 0.01)
            .map(|r| r.speedup)
            .expect("row present")
    }

    #[test]
    fn striping_scales_persist_bandwidth() {
        let rows = run();
        for gb in [1.1, 16.2] {
            let two = speedup_of(&rows, gb, 2);
            let four = speedup_of(&rows, gb, 4);
            assert!((speedup_of(&rows, gb, 1) - 1.0).abs() < 1e-9);
            // Same floor the concrete bench_pr3 asserts for StripedDevice.
            assert!(two >= 1.8, "{gb} GB: 2-way speedup {two} < 1.8");
            assert!(four > two, "{gb} GB: 4-way {four} <= 2-way {two}");
            assert!(four >= 3.0, "{gb} GB: 4-way speedup {four} < 3.0");
        }
    }

    #[test]
    fn persist_time_is_monotone_in_width() {
        let rows = run();
        for gb in [1.1, 16.2] {
            let mut times: Vec<f64> = WAYS
                .iter()
                .map(|&w| {
                    rows.iter()
                        .find(|r| r.ways == w && (r.size.as_gb() - gb).abs() < 0.01)
                        .unwrap()
                        .persist_secs
                })
                .collect();
            let sorted = {
                let mut s = times.clone();
                s.sort_by(|a, b| b.partial_cmp(a).unwrap());
                s
            };
            assert_eq!(times, sorted, "{gb} GB: wider stripe must not be slower");
            times.dedup();
            assert_eq!(times.len(), WAYS.len(), "{gb} GB: widths must differ");
        }
    }
}

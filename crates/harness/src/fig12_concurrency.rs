//! Figure 12: sensitivity to the number of concurrent checkpoints (`N`) —
//! slowdown over no checkpointing for VGG-16, varying frequency and `N`.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::CsvWriter;

use crate::sweep::iterations_for;
use crate::PAPER_INTERVALS;

/// The concurrency levels the paper sweeps.
pub const N_VALUES: [usize; 3] = [1, 2, 4];

/// One Figure 12 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Checkpoint interval.
    pub interval: u64,
    /// Concurrent checkpoints `N`.
    pub n: usize,
    /// Slowdown over no checkpointing.
    pub slowdown: f64,
}

/// Runs the sweep.
pub fn run() -> Vec<Fig12Row> {
    let model = ModelZoo::vgg16();
    let mut rows = Vec::new();
    for &interval in &PAPER_INTERVALS {
        let ideal = SimConfig::ssd_a100(&model, interval, iterations_for(interval))
            .with_strategy(StrategyCfg::Ideal)
            .run();
        for &n in &N_VALUES {
            let report = SimConfig::ssd_a100(&model, interval, iterations_for(interval))
                .with_strategy(StrategyCfg::pccheck(n, 3))
                .run();
            rows.push(Fig12Row {
                interval,
                n,
                slowdown: report.slowdown_vs(&ideal),
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig12Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["interval", "n", "slowdown"]);
    for r in rows {
        w.row(&[&r.interval, &r.n, &format_args!("{:.4}", r.slowdown)])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slowdown(rows: &[Fig12Row], interval: u64, n: usize) -> f64 {
        rows.iter()
            .find(|r| r.interval == interval && r.n == n)
            .map(|r| r.slowdown)
            .expect("row present")
    }

    #[test]
    fn more_than_one_checkpoint_is_consistently_better() {
        // §5.4.1: "using more than one checkpoint is consistently better".
        let rows = run();
        for &interval in &[1u64, 10, 25] {
            let n1 = slowdown(&rows, interval, 1);
            let n2 = slowdown(&rows, interval, 2);
            assert!(
                n2 <= n1 * 1.001,
                "interval {interval}: N=2 ({n2}) should not lose to N=1 ({n1})"
            );
        }
        // And at interval 1 the benefit is pronounced.
        assert!(slowdown(&rows, 1, 4) < slowdown(&rows, 1, 1) * 0.9);
    }

    #[test]
    fn diminishing_returns_beyond_saturation() {
        // §5.4.1: ~4 concurrent checkpoints saturate the SSD; N=4 over N=2
        // helps much less than N=2 over N=1 at interval 1.
        let rows = run();
        let gain_12 = slowdown(&rows, 1, 1) / slowdown(&rows, 1, 2);
        let gain_24 = slowdown(&rows, 1, 2) / slowdown(&rows, 1, 4);
        assert!(
            gain_12 > gain_24 * 0.95,
            "first doubling ({gain_12}) should help at least as much as the second ({gain_24})"
        );
    }

    #[test]
    fn slowdown_shrinks_with_interval() {
        let rows = run();
        for &n in &N_VALUES {
            let s1 = slowdown(&rows, 1, n);
            let s100 = slowdown(&rows, 100, n);
            assert!(s100 < s1, "N={n}: {s100} should be below {s1}");
            assert!(s100 < 1.25, "N={n}: interval-100 slowdown {s100}");
        }
    }
}

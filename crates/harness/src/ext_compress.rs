//! Extension: chunk-codec compressibility × dedup-hit-rate sweep.
//!
//! Sweeps payload compressibility (the tile period of
//! [`TrainingState::compressible`], with `0` meaning RNG-dense synthetic
//! state) against update sparsity (which controls how many chunks survive
//! unchanged between checkpoints and therefore the cross-checkpoint dedup
//! hit rate) through the concrete
//! [`PersistPipeline::checkpoint_framed`] path. Each row reports the
//! physical bytes the framed path persisted against the logical bytes the
//! raw path would have written — the persist-bytes reduction
//! `BENCH_pr10.json` asserts on the high-redundancy sweep — plus how many
//! checkpoints actually framed and how many chunks resolved as dedup
//! references. Every run finishes with a cold recovery and checks the
//! reconstructed payload bit-for-bit against the final device-side state.

use std::sync::Arc;

use pccheck::{
    recover, CheckpointStore, DeltaPolicy, FramedOutcome, PersistPipeline, PipelineCtx,
};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::{ByteSize, CsvWriter};

/// Tile periods swept (`0` = RNG-dense incompressible state).
pub const PERIODS: [usize; 3] = [0, 16, 64];

/// Update sparsities swept (fraction of each tensor mutated per step).
pub const SPARSITIES: [f64; 3] = [0.05, 0.50, 1.00];

/// Training-state size per run.
pub const STATE_BYTES: u64 = 256 * 1024;

/// Staging/codec chunk size.
pub const CHUNK_BYTES: u64 = 8 * 1024;

/// Checkpoints per run.
pub const CHECKPOINTS: u64 = 8;

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtCompressRow {
    /// Tile period of the state (`0` = incompressible).
    pub period: usize,
    /// Fraction of each tensor mutated per step.
    pub sparsity: f64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Bytes the raw path would persist (checkpoints × state size).
    pub logical_bytes: u64,
    /// Bytes the framed path actually persisted.
    pub persisted_bytes: u64,
    /// `logical_bytes / persisted_bytes`.
    pub bytes_saved_ratio: f64,
    /// Checkpoints that persisted a frame (vs raw fallback).
    pub framed: u64,
    /// Chunks stored as dedup references across the run.
    pub dedup_chunks: u64,
    /// Cold recovery reproduced the final state bit-for-bit.
    pub recovered_bit_identical: bool,
}

/// Runs [`CHECKPOINTS`] checkpoints at one (period, sparsity) point and
/// returns the measured row.
pub fn measure(period: usize, sparsity: f64) -> ExtCompressRow {
    let size = ByteSize::from_bytes(STATE_BYTES);
    let state = if period > 0 {
        TrainingState::compressible(size, 42, period)
    } else {
        TrainingState::synthetic(size, 42)
    };
    let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
    gpu.update();
    // Dedup bases stay pinned until their dependents retire, so leave
    // headroom beyond the double-buffer minimum.
    let slots = 4;
    let cap = CheckpointStore::required_capacity(gpu.state_size(), slots) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let store =
        Arc::new(CheckpointStore::format(Arc::clone(&device), gpu.state_size(), slots).unwrap());
    // The framed copy stages the whole snapshot, so the pool must cover it.
    let pool_chunks = (STATE_BYTES / CHUNK_BYTES) as usize;
    let pipeline = PersistPipeline::new(store)
        .with_writers(2)
        .with_staging(HostBufferPool::new(ByteSize::from_bytes(CHUNK_BYTES), pool_chunks))
        .with_codec(true);
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    // Permissive policy: the codec decides per-chunk; the chain cap only
    // bounds how long a dedup base stays pinned.
    let policy = DeltaPolicy {
        max_dirty_ratio: 1.0,
        max_chain: 8,
    };
    let mut persisted_bytes = 0u64;
    let mut framed = 0u64;
    let mut dedup_chunks = 0u64;
    let mut final_state = Vec::new();
    for iter in 1..=CHECKPOINTS {
        if iter > 1 {
            gpu.update_sparse(sparsity);
        }
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let (_, outcome) = pipeline
            .checkpoint_framed(ctx, &guard, iter, digest.0, policy)
            .unwrap();
        if iter == CHECKPOINTS {
            final_state = vec![0u8; STATE_BYTES as usize];
            guard.copy_range_to_host(0, &mut final_state);
        }
        drop(guard);
        match outcome {
            FramedOutcome::Framed {
                payload_len,
                dedup_chunks: chunks,
                ..
            } => {
                persisted_bytes += payload_len;
                framed += 1;
                dedup_chunks += chunks;
            }
            FramedOutcome::Raw => persisted_bytes += STATE_BYTES,
        }
    }
    let recovered = recover(device).expect("committed store recovers");
    let recovered_bit_identical =
        recovered.iteration == CHECKPOINTS && recovered.payload == final_state;
    let logical_bytes = CHECKPOINTS * STATE_BYTES;
    ExtCompressRow {
        period,
        sparsity,
        checkpoints: CHECKPOINTS,
        logical_bytes,
        persisted_bytes,
        bytes_saved_ratio: logical_bytes as f64 / persisted_bytes as f64,
        framed,
        dedup_chunks,
        recovered_bit_identical,
    }
}

/// Runs the full period × sparsity sweep.
pub fn run() -> Vec<ExtCompressRow> {
    let mut rows = Vec::new();
    for &period in &PERIODS {
        for &sparsity in &SPARSITIES {
            rows.push(measure(period, sparsity));
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[ExtCompressRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "period",
            "sparsity",
            "checkpoints",
            "logical_bytes",
            "persisted_bytes",
            "bytes_saved_ratio",
            "framed",
            "dedup_chunks",
            "recovered_bit_identical",
        ],
    );
    for r in rows {
        w.row(&[
            &r.period,
            &format_args!("{:.2}", r.sparsity),
            &r.checkpoints,
            &r.logical_bytes,
            &r.persisted_bytes,
            &format_args!("{:.2}", r.bytes_saved_ratio),
            &r.framed,
            &r.dedup_chunks,
            &r.recovered_bit_identical,
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_redundancy_sweep_saves_at_least_three_x() {
        let row = measure(16, 0.05);
        assert_eq!(row.framed, row.checkpoints, "every checkpoint frames");
        assert!(
            row.bytes_saved_ratio >= 3.0,
            "period-16 tiles at 5% sparsity must save >=3x, got {:.2}",
            row.bytes_saved_ratio
        );
        assert!(row.recovered_bit_identical);
    }

    #[test]
    fn dense_incompressible_payloads_fall_back_to_raw() {
        let row = measure(0, 1.00);
        assert_eq!(row.framed, 0, "RNG-dense state must never frame");
        assert_eq!(row.persisted_bytes, row.logical_bytes);
        assert!((row.bytes_saved_ratio - 1.0).abs() < 1e-9);
        assert!(row.recovered_bit_identical);
    }

    #[test]
    fn tiled_states_dedup_chunks_at_any_sparsity() {
        let sparse = measure(64, 0.05);
        let dense = measure(64, 1.00);
        // Period-64 tiles repeat within every snapshot, so chunk dedup
        // engages regardless of the update pattern; sparsity only shifts
        // which chunks hit (the exact counts differ within noise).
        assert!(sparse.dedup_chunks > 0, "sparse run must dedup chunks");
        assert!(dense.dedup_chunks > 0, "dense run must dedup chunks");
        assert!(
            sparse.bytes_saved_ratio > 3.0 && dense.bytes_saved_ratio > 3.0,
            "tiled payloads must stay well-compressed at any sparsity \
             ({:.2}x sparse, {:.2}x dense)",
            sparse.bytes_saved_ratio,
            dense.bytes_saved_ratio
        );
        assert!(sparse.recovered_bit_identical && dense.recovered_bit_identical);
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let rows = vec![measure(16, 0.50)];
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("period,sparsity,"));
    }
}

//! Shared sweep helpers: run a (model × interval × strategy) grid of
//! simulations and collect throughput/slowdown/goodput rows.

use pccheck_gpu::ModelSpec;
use pccheck_sim::{SimConfig, SimReport, StrategyCfg};
use pccheck_trace::{GoodputReplay, PreemptionTrace};
use pccheck_util::SimDuration;

/// One (strategy, interval) measurement for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Workload name.
    pub model: String,
    /// Strategy name.
    pub strategy: String,
    /// Checkpoint interval in iterations.
    pub interval: u64,
    /// Absolute throughput (iterations/second).
    pub throughput: f64,
    /// Slowdown relative to the no-checkpoint run (≥ 1).
    pub slowdown: f64,
    /// Mean end-to-end checkpoint write time `Tw` (seconds).
    pub write_time_secs: f64,
}

/// Iterations to simulate for a given interval: enough checkpoint cycles
/// for steady state, bounded to keep sweeps fast.
pub fn iterations_for(interval: u64) -> u64 {
    (interval * 20).clamp(200, 3000)
}

/// Runs the no-checkpoint baseline for a config template.
pub fn ideal_report(template: &SimConfig) -> SimReport {
    template.clone().with_strategy(StrategyCfg::Ideal).run()
}

/// Runs one strategy at one interval on the SSD/A100 testbed.
pub fn run_point(model: &ModelSpec, strategy: StrategyCfg, interval: u64) -> SimReport {
    SimConfig::ssd_a100(model, interval, iterations_for(interval))
        .with_strategy(strategy)
        .run()
}

/// Sweeps `strategies × intervals` for `model`, with slowdowns relative to
/// the ideal run at the same interval count.
pub fn sweep_ssd(
    model: &ModelSpec,
    strategies: &[StrategyCfg],
    intervals: &[u64],
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &interval in intervals {
        let ideal = SimConfig::ssd_a100(model, interval, iterations_for(interval))
            .with_strategy(StrategyCfg::Ideal)
            .run();
        for &strategy in strategies {
            let report = run_point(model, strategy, interval);
            rows.push(SweepRow {
                model: model.name.to_string(),
                strategy: report.strategy.clone(),
                interval,
                throughput: report.throughput,
                slowdown: report.slowdown_vs(&ideal),
                write_time_secs: report.mean_write_time.as_secs_f64(),
            });
        }
    }
    rows
}

/// One goodput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputRow {
    /// Workload name.
    pub model: String,
    /// Strategy name.
    pub strategy: String,
    /// Checkpoint interval in iterations.
    pub interval: u64,
    /// Useful iterations/second over the trace window.
    pub goodput: f64,
    /// Rollbacks replayed.
    pub rollbacks: usize,
    /// Average iterations lost per rollback.
    pub avg_lost_iterations: f64,
}

/// Checkpoint load time for goodput replays: reading `m` back from the
/// device at its (read ≈ write) bandwidth.
pub fn load_time(model: &ModelSpec) -> SimDuration {
    let cfg = SimConfig::ssd_a100(model, 10, 10);
    cfg.storage_bandwidth.transfer_time(cfg.checkpoint_size)
}

/// Replays the spot trace for `strategies × intervals` on `model`,
/// including the ideal upper bound.
pub fn goodput_sweep(
    model: &ModelSpec,
    strategies: &[StrategyCfg],
    intervals: &[u64],
    trace: &PreemptionTrace,
) -> Vec<GoodputRow> {
    let replay = GoodputReplay::new(load_time(model));
    let mut rows = Vec::new();
    for &interval in intervals {
        let iter_time = SimConfig::ssd_a100(model, interval, 10).iter_time;
        let ideal = replay.ideal(iter_time, interval, trace);
        rows.push(GoodputRow {
            model: model.name.to_string(),
            strategy: "ideal".into(),
            interval,
            goodput: ideal.goodput,
            rollbacks: ideal.rollbacks,
            avg_lost_iterations: ideal.avg_lost_iterations,
        });
        for &strategy in strategies {
            let report = run_point(model, strategy, interval);
            let g = replay.replay(&report, trace);
            rows.push(GoodputRow {
                model: model.name.to_string(),
                strategy: report.strategy.clone(),
                interval,
                goodput: g.goodput,
                rollbacks: g.rollbacks,
                avg_lost_iterations: g.avg_lost_iterations,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_gpu::ModelZoo;

    #[test]
    fn iterations_scale_with_interval() {
        assert_eq!(iterations_for(1), 200);
        assert_eq!(iterations_for(25), 500);
        assert_eq!(iterations_for(100), 2000);
        assert_eq!(iterations_for(1000), 3000);
    }

    #[test]
    fn sweep_produces_full_grid() {
        let rows = sweep_ssd(
            &ModelZoo::vgg16(),
            &[StrategyCfg::CheckFreq, StrategyCfg::pccheck(2, 3)],
            &[10, 50],
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.slowdown >= 0.99));
        assert!(rows.iter().all(|r| r.throughput > 0.0));
    }

    #[test]
    fn goodput_sweep_includes_ideal() {
        let trace = PreemptionTrace::synthetic_gcp_a100(3);
        let rows = goodput_sweep(
            &ModelZoo::vgg16(),
            &[StrategyCfg::pccheck(2, 3)],
            &[25],
            &trace,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].strategy, "ideal");
        assert!(rows[0].goodput >= rows[1].goodput * 0.999);
    }

    #[test]
    fn load_time_is_checkpoint_over_bandwidth() {
        // 16.2 GB read back at the raw device rate (1.5 GB/s) ≈ 10.8 s.
        let lt = load_time(&ModelZoo::opt_1_3b());
        assert!(
            (lt.as_secs_f64() - 10.8).abs() < 0.2,
            "got {}",
            lt.as_secs_f64()
        );
    }
}

//! Instrumented concrete runs: one training loop, one telemetry timeline.
//!
//! The figure modules replay the paper's experiments through the DES for
//! speed; this module instead runs the *concrete* (wall-clock) substrate
//! with a [`Telemetry`] recorder attached to both the training loop and
//! the checkpointer. One run yields the paper's Fig. 8 ingredients (stall
//! time, per-phase latency) and Fig. 9 ingredients (iteration timeline +
//! commit timeline → rollback depth → goodput) from a single timeline,
//! plus exportable JSONL / Chrome-trace views of the same events.

use std::sync::Arc;

use pccheck::{
    recover_instrumented, CheckpointStore, PcCheckConfig, PcCheckEngine, PccheckError,
    RecoveryTrace,
};
use pccheck_baselines::{
    CheckFreqCheckpointer, GeminiCheckpointer, GpmCheckpointer, TraditionalCheckpointer,
};
use pccheck_device::{DeviceConfig, NetworkConfig, NetworkLink, PersistentDevice, SsdDevice};
use pccheck_gpu::{Checkpointer, Gpu, GpuConfig, TrainingLoop, TrainingReport, TrainingState};
use pccheck_telemetry::{RunAccounting, Telemetry, TelemetrySnapshot};
use pccheck_util::{ByteSize, SimDuration};

/// Geometry of an instrumented concrete run.
#[derive(Debug, Clone)]
pub struct InstrumentedRunConfig {
    /// Training-state size.
    pub state_bytes: u64,
    /// Iterations to run.
    pub iterations: u64,
    /// Checkpoint every `interval` iterations.
    pub interval: u64,
    /// Modeled compute time per iteration (`T`).
    pub iter_compute: SimDuration,
    /// PCcheck's `N` (ignored by the baselines).
    pub max_concurrent: usize,
    /// Synthetic-state seed.
    pub seed: u64,
    /// After training, run the recovery path against the same device and
    /// record its trace (PCcheck only — the baselines keep their own
    /// store formats). Off by default because recovery opens its own
    /// span and shifts the run's requested/committed counters.
    pub restore_leg: bool,
}

impl Default for InstrumentedRunConfig {
    fn default() -> Self {
        InstrumentedRunConfig {
            state_bytes: 256 * 1024,
            iterations: 20,
            interval: 5,
            iter_compute: SimDuration::ZERO,
            max_concurrent: 2,
            seed: 7,
            restore_leg: false,
        }
    }
}

/// Everything one instrumented run produces.
#[derive(Debug)]
pub struct InstrumentedRun {
    /// The strategy that ran (`pccheck`, `traditional`, `checkfreq`,
    /// `gpm`, or `gemini`).
    pub strategy: String,
    /// Wall-clock training report.
    pub report: TrainingReport,
    /// Aggregated histograms/counters/gauges.
    pub snapshot: TelemetrySnapshot,
    /// Stall/goodput accounting derived from the event stream.
    pub accounting: RunAccounting,
    /// Measured recovery trace, when the run included a restore leg
    /// ([`InstrumentedRunConfig::restore_leg`]).
    pub recovery: Option<RecoveryTrace>,
    /// The live handle, for exporting the raw events afterwards.
    pub telemetry: Telemetry,
}

fn ssd_for(state: ByteSize, slots: u32) -> Arc<dyn PersistentDevice> {
    let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(4);
    Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)))
}

/// A built checkpointer, plus the underlying device when its store
/// speaks the PCcheck recovery format (used by the optional restore leg).
fn build_checkpointer(
    strategy: &str,
    cfg: &InstrumentedRunConfig,
    gpu: &Gpu,
    telemetry: &Telemetry,
) -> Result<(Box<dyn Checkpointer>, Option<Arc<dyn PersistentDevice>>), PccheckError> {
    let state = gpu.state_size();
    match strategy {
        "pccheck" => {
            let device = ssd_for(state, cfg.max_concurrent as u32 + 1);
            let engine = PcCheckEngine::new(
                PcCheckConfig::builder()
                    .max_concurrent(cfg.max_concurrent)
                    .build()?,
                Arc::clone(&device),
                state,
            )?
            .with_telemetry(telemetry.clone());
            Ok((Box::new(engine), Some(device)))
        }
        "traditional" => Ok((
            Box::new(
                TraditionalCheckpointer::new(ssd_for(state, 2), state)?
                    .with_telemetry(telemetry.clone()),
            ),
            None,
        )),
        "checkfreq" => Ok((
            Box::new(
                CheckFreqCheckpointer::new(ssd_for(state, 2), state)?
                    .with_telemetry(telemetry.clone()),
            ),
            None,
        )),
        "gpm" => Ok((
            Box::new(
                GpmCheckpointer::new(ssd_for(state, 2), state)?.with_telemetry(telemetry.clone()),
            ),
            None,
        )),
        "gemini" => {
            let cap = GeminiCheckpointer::required_remote_capacity(state);
            let link = Arc::new(NetworkLink::new(NetworkConfig::fast_for_tests(), cap));
            Ok((
                Box::new(GeminiCheckpointer::new(link, state)?.with_telemetry(telemetry.clone())),
                None,
            ))
        }
        other => Err(PccheckError::InvalidConfig(format!(
            "unknown strategy {other:?} (expected pccheck|traditional|checkfreq|gpm|gemini)"
        ))),
    }
}

/// Strategies [`run_instrumented`] understands.
pub const STRATEGIES: [&str; 5] = ["pccheck", "traditional", "checkfreq", "gpm", "gemini"];

/// Runs `strategy` under `cfg` with telemetry attached to both the
/// training loop and the checkpointer.
///
/// # Errors
///
/// Returns [`PccheckError::InvalidConfig`] for an unknown strategy or
/// invalid geometry; device errors surface from the engine.
pub fn run_instrumented(
    strategy: &str,
    cfg: &InstrumentedRunConfig,
) -> Result<InstrumentedRun, PccheckError> {
    let telemetry = Telemetry::enabled();
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(cfg.state_bytes), cfg.seed),
    );
    let (ckpt, device) = build_checkpointer(strategy, cfg, &gpu, &telemetry)?;
    let lp = TrainingLoop::new(gpu, cfg.iter_compute)
        .with_interval(cfg.interval)
        .with_telemetry(telemetry.clone());
    let report = lp.run(cfg.iterations, ckpt.as_ref());
    let recovery = match (cfg.restore_leg, device) {
        (true, Some(device)) => {
            let (_recovered, trace) = recover_instrumented(device, &telemetry)?;
            Some(trace)
        }
        _ => None,
    };
    let accounting = RunAccounting::from_events(&telemetry.events());
    let snapshot = telemetry
        .snapshot()
        .expect("telemetry was constructed enabled");
    Ok(InstrumentedRun {
        strategy: strategy.to_string(),
        report,
        snapshot,
        accounting,
        recovery,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_telemetry::Phase;

    #[test]
    fn pccheck_run_produces_full_telemetry() {
        let cfg = InstrumentedRunConfig::default();
        let run = run_instrumented("pccheck", &cfg).unwrap();
        assert_eq!(run.report.checkpoints_requested, 4);
        assert_eq!(run.snapshot.counters.requested, 4);
        assert_eq!(run.snapshot.counters.terminated(), 4);
        assert_eq!(run.accounting.iterations, 20);
        assert!(run.snapshot.phase(Phase::Persist).count >= 1);
        assert!(run.accounting.throughput() > 0.0);
        // Online accounting agrees with the training report's iteration
        // count and produces a finite slowdown.
        assert!(run.accounting.slowdown().is_finite());
    }

    #[test]
    fn every_strategy_runs_and_commits() {
        let cfg = InstrumentedRunConfig {
            iterations: 10,
            interval: 5,
            ..InstrumentedRunConfig::default()
        };
        for strategy in STRATEGIES {
            let run = run_instrumented(strategy, &cfg).unwrap();
            assert_eq!(run.strategy, strategy);
            assert_eq!(run.snapshot.counters.requested, 2, "{strategy}");
            assert!(run.snapshot.counters.committed >= 1, "{strategy}");
            assert_eq!(run.snapshot.counters.failed, 0, "{strategy}");
        }
    }

    #[test]
    fn restore_leg_appends_recovery_trace() {
        let cfg = InstrumentedRunConfig {
            restore_leg: true,
            ..InstrumentedRunConfig::default()
        };
        let run = run_instrumented("pccheck", &cfg).unwrap();
        let trace = run.recovery.expect("restore leg ran");
        // The run checkpoints at iterations 5/10/15/20; recovery lands on
        // the newest committed one.
        assert_eq!(trace.iteration, 20);
        assert!(trace.total_nanos > 0);
        // The recovery span rides the same timeline: one extra requested
        // span beyond the training run's four.
        assert_eq!(run.snapshot.counters.requested, 5);
        // Baselines have no PCcheck store to recover from; the flag is a
        // quiet no-op there.
        let run = run_instrumented("traditional", &cfg).unwrap();
        assert!(run.recovery.is_none());
    }

    #[test]
    fn unknown_strategy_is_rejected() {
        let err = run_instrumented("dynamo", &InstrumentedRunConfig::default()).unwrap_err();
        assert!(matches!(err, PccheckError::InvalidConfig(_)));
    }
}

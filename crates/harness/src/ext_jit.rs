//! Extension experiment: just-in-time checkpointing vs PCcheck under
//! varying bulk-preemption rates.
//!
//! §2.2 argues that JIT checkpointing's assumption — some replica always
//! survives to persist state within the grace period — "might not be true
//! when training over preemptible resources, where *bulky* VM preemptions
//! are very common". This experiment quantifies the argument: goodput of
//! JIT and of PCcheck's periodic checkpointing as the fraction of bulk
//! revocations sweeps from 0 to 80%.

use pccheck_gpu::{GpuKind, ModelZoo};
use pccheck_sim::StrategyCfg;
use pccheck_trace::{GoodputReplay, JitReplay, PreemptionTrace};
use pccheck_util::{Bandwidth, CsvWriter, SimDuration};

use crate::sweep::{load_time, run_point};

/// Burst probabilities swept.
pub const BURST_PROBS: [f64; 5] = [0.0, 0.2, 0.4, 0.6, 0.8];

/// One row: goodput of both schemes at one bulk-preemption rate.
#[derive(Debug, Clone, PartialEq)]
pub struct JitRow {
    /// Probability that a preemption arrives as a bulk revocation.
    pub burst_prob: f64,
    /// JIT goodput (iterations/second).
    pub jit_goodput: f64,
    /// PCcheck periodic goodput at interval 10.
    pub pccheck_goodput: f64,
}

/// Runs the sweep on OPT-1.3B with the GCP preemption rate.
pub fn run(seed: u64) -> Vec<JitRow> {
    let model = ModelZoo::opt_1_3b();
    let iter_time = model.iter_time(GpuKind::A100);
    let load = load_time(&model);
    // PCcheck's failure-free behavior does not depend on the trace; run it
    // once at interval 10.
    let pccheck_report = run_point(&model, StrategyCfg::pccheck(2, 3), 10);
    let replay = GoodputReplay::new(load);
    let jit = JitReplay {
        shard_size: model.shard_size(),
        save_bandwidth: Bandwidth::from_gb_per_sec(1.5),
        grace: JitReplay::GCP_GRACE,
        load_time: load,
        iter_time,
    };
    BURST_PROBS
        .iter()
        .map(|&burst_prob| {
            let trace = PreemptionTrace::synthetic(
                seed,
                SimDuration::from_secs(16 * 3600),
                pccheck_trace::preemption::GCP_A100_PREEMPTIONS_PER_HOUR,
                burst_prob,
            );
            JitRow {
                burst_prob,
                jit_goodput: jit.replay(&trace).goodput,
                pccheck_goodput: replay.replay(&pccheck_report, &trace).goodput,
            }
        })
        .collect()
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[JitRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["burst_prob", "jit_goodput", "pccheck_goodput"]);
    for r in rows {
        w.row(&[
            &format_args!("{:.1}", r.burst_prob),
            &format_args!("{:.5}", r.jit_goodput),
            &format_args!("{:.5}", r.pccheck_goodput),
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_degrades_with_bulk_preemptions_pccheck_does_not() {
        let rows = run(11);
        assert_eq!(rows.len(), 5);
        // JIT goodput falls monotonically-ish with burst probability...
        let first = rows.first().expect("rows");
        let last = rows.last().expect("rows");
        assert!(
            last.jit_goodput < first.jit_goodput * 0.9,
            "jit: {} -> {}",
            first.jit_goodput,
            last.jit_goodput
        );
        // ...while PCcheck's stays roughly flat (rollbacks cost a bounded
        // interval regardless of bulkiness).
        let pc_drop = (first.pccheck_goodput - last.pccheck_goodput) / first.pccheck_goodput;
        assert!(pc_drop < 0.12, "pccheck drop {pc_drop}");
        // At GCP preemption rates even "no-burst" traces have chance
        // clusters within the re-replication window, so JIT never clearly
        // beats periodic checkpointing here — the paper's §2.2 position.
        // Under heavy bursts the gap is decisive.
        assert!(
            last.pccheck_goodput > last.jit_goodput * 1.1,
            "heavy bursts: pccheck {} vs jit {}",
            last.pccheck_goodput,
            last.jit_goodput
        );
    }
}

//! Figure 2: goodput as a function of checkpoint interval for BLOOM-7B on
//! the spot-VM preemption trace — CheckFreq, Gemini, PCcheck, and the
//! ideal system.

use pccheck_gpu::ModelZoo;
use pccheck_sim::StrategyCfg;
use pccheck_trace::PreemptionTrace;
use pccheck_util::CsvWriter;

use crate::sweep::{goodput_sweep, GoodputRow};
use crate::PAPER_INTERVALS;

/// Runs the experiment (seeded trace for reproducibility).
pub fn run(seed: u64) -> Vec<GoodputRow> {
    let trace = PreemptionTrace::synthetic_gcp_a100(seed);
    goodput_sweep(
        &ModelZoo::bloom_7b(),
        &[
            StrategyCfg::CheckFreq,
            StrategyCfg::Gemini,
            StrategyCfg::pccheck(2, 3),
        ],
        &PAPER_INTERVALS,
        &trace,
    )
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[GoodputRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "model",
            "strategy",
            "interval",
            "goodput",
            "rollbacks",
            "avg_lost_iters",
        ],
    );
    for r in rows {
        w.row(&[
            &r.model,
            &r.strategy,
            &r.interval,
            &format_args!("{:.5}", r.goodput),
            &r.rollbacks,
            &format_args!("{:.2}", r.avg_lost_iterations),
        ])?;
    }
    w.flush()
}

/// Peak goodput per strategy across intervals, as a fraction of the ideal
/// peak (the paper: CheckFreq reaches only 66%, Gemini 58% of ideal).
pub fn peak_fraction_of_ideal(rows: &[GoodputRow], strategy_prefix: &str) -> f64 {
    let peak = |p: &str| {
        rows.iter()
            .filter(|r| r.strategy.starts_with(p))
            .map(|r| r.goodput)
            .fold(0.0f64, f64::max)
    };
    let ideal = peak("ideal");
    if ideal == 0.0 {
        return 0.0;
    }
    peak(strategy_prefix) / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shapes_hold() {
        let rows = run(1);
        // 5 intervals × 4 curves.
        assert_eq!(rows.len(), 20);
        // PCcheck's peak goodput beats both baselines' peaks and approaches
        // the ideal.
        let pc = peak_fraction_of_ideal(&rows, "pccheck");
        let cf = peak_fraction_of_ideal(&rows, "checkfreq");
        let gm = peak_fraction_of_ideal(&rows, "gemini");
        assert!(pc > cf, "pccheck {pc} vs checkfreq {cf}");
        assert!(pc > gm, "pccheck {pc} vs gemini {gm}");
        assert!(pc > 0.80, "pccheck should approach ideal, got {pc}");
        assert!(cf < 0.95, "checkfreq must fall short of ideal: {cf}");
    }

    #[test]
    fn csv_round_trips() {
        let rows = run(2);
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("BLOOM-7B"));
    }
}

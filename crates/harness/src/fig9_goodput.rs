//! Figure 9 (a–f): goodput when replaying the Google Cloud A100 spot
//! preemption trace, for the six Figure-8 models.

use pccheck_gpu::{ModelSpec, ModelZoo};
use pccheck_trace::PreemptionTrace;
use pccheck_util::CsvWriter;

use crate::fig8_throughput::strategies_for;
use crate::sweep::{goodput_sweep, GoodputRow};
use crate::PAPER_INTERVALS;

/// Runs the full six-model goodput sweep with a seeded trace.
pub fn run(seed: u64) -> Vec<GoodputRow> {
    let trace = PreemptionTrace::synthetic_gcp_a100(seed);
    let mut rows = Vec::new();
    for model in ModelZoo::figure8_models() {
        rows.extend(run_model(&model, &trace));
    }
    rows
}

/// Runs one model's panel.
pub fn run_model(model: &ModelSpec, trace: &PreemptionTrace) -> Vec<GoodputRow> {
    goodput_sweep(model, &strategies_for(model), &PAPER_INTERVALS, trace)
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[GoodputRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "model",
            "strategy",
            "interval",
            "goodput",
            "rollbacks",
            "avg_lost_iters",
        ],
    );
    for r in rows {
        w.row(&[
            &r.model,
            &r.strategy,
            &r.interval,
            &format_args!("{:.5}", r.goodput),
            &r.rollbacks,
            &format_args!("{:.2}", r.avg_lost_iterations),
        ])?;
    }
    w.flush()
}

/// The maximum per-interval goodput ratio of PCcheck over `baseline`
/// across a model's rows (the paper's "up to 2.86× higher goodput").
pub fn max_ratio_vs(rows: &[GoodputRow], baseline: &str) -> f64 {
    let mut best: f64 = 0.0;
    for r in rows.iter().filter(|r| r.strategy.starts_with("pccheck")) {
        if let Some(b) = rows
            .iter()
            .find(|b| b.strategy.starts_with(baseline) && b.interval == r.interval)
        {
            if b.goodput > 0.0 {
                best = best.max(r.goodput / b.goodput);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt13b_goodput_shapes_hold() {
        let trace = PreemptionTrace::synthetic_gcp_a100(1);
        let rows = run_model(&ModelZoo::opt_1_3b(), &trace);
        // PCcheck beats CheckFreq substantially at frequent checkpointing
        // (paper: 1.77× at interval 10 for OPT-1.3B).
        let ratio = max_ratio_vs(&rows, "checkfreq");
        assert!(ratio > 1.2, "pccheck/checkfreq max ratio {ratio}");
        // PCcheck's best point approaches ideal's best point.
        let peak = |p: &str| {
            rows.iter()
                .filter(|r| r.strategy.starts_with(p))
                .map(|r| r.goodput)
                .fold(0.0f64, f64::max)
        };
        assert!(peak("pccheck") > 0.85 * peak("ideal"));
    }

    #[test]
    fn goodput_has_an_interior_optimum_for_baselines() {
        // Checkpointing every iteration wastes time on overhead; very rare
        // checkpoints waste time on rollbacks. The best interval for
        // CheckFreq on VGG16 lies strictly inside the sweep.
        let trace = PreemptionTrace::synthetic_gcp_a100(2);
        let rows = run_model(&ModelZoo::vgg16(), &trace);
        let cf: Vec<_> = rows.iter().filter(|r| r.strategy == "checkfreq").collect();
        let best = cf
            .iter()
            .max_by(|a, b| a.goodput.partial_cmp(&b.goodput).expect("finite"))
            .expect("rows");
        assert!(
            best.interval > 1,
            "interval-1 checkpointing should not be optimal for CheckFreq"
        );
    }
}

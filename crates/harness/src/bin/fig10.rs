//! Regenerates Figure 10: BERT checkpointing overhead on Optane PMEM.
use pccheck_harness::{fig10_pmem as fig10, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig10::run();
    println!("Figure 10 — BERT on PMEM (TitanRTX): slowdown vs interval");
    println!(
        "{:>14} {:>9} {:>12} {:>10}",
        "strategy", "interval", "throughput", "slowdown"
    );
    for r in &rows {
        println!(
            "{:>14} {:>9} {:>12.4} {:>10.3}",
            r.strategy, r.interval, r.throughput, r.slowdown
        );
    }
    let path = result_path("fig10_pmem.csv");
    fig10::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

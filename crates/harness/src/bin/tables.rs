//! Regenerates Tables 1 and 3.
use pccheck_harness::{result_path, tables};
use pccheck_util::ByteSize;

fn main() -> std::io::Result<()> {
    let m = ByteSize::from_gb(4.0);
    let t1 = tables::table1(m, 3);
    println!("Table 1 — memory footprint for m = {m}, N = 3");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "algorithm", "gpu", "dram_min", "dram_max", "storage"
    );
    for r in &t1 {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            r.algorithm,
            r.footprint.gpu.to_string(),
            r.footprint.dram_min.to_string(),
            r.footprint.dram_max.to_string(),
            r.footprint.storage.to_string()
        );
    }
    tables::write_table1_csv(
        &t1,
        std::fs::File::create(result_path("table1_footprint.csv"))?,
    )?;
    println!("\nTable 3 — evaluated models");
    for mspec in tables::table3() {
        println!(
            "{:>14} {:>10} batch_a100={:<3} ckpt={:>6.1} GB nodes={}",
            mspec.name,
            mspec.dataset,
            mspec.batch_a100,
            mspec.checkpoint_size.as_gb(),
            mspec.nodes
        );
    }
    tables::write_table3_csv(std::fs::File::create(result_path("table3_models.csv"))?)?;
    println!("wrote results/table1_footprint.csv, results/table3_models.csv");
    Ok(())
}

//! Runs every figure/table experiment and writes all CSVs under results/.
fn main() -> std::io::Result<()> {
    use pccheck_harness::*;
    macro_rules! step {
        ($name:expr, $body:expr) => {{
            println!("== {} ==", $name);
            $body;
        }};
    }
    step!("table1+3", {
        let t1 = tables::table1(pccheck_util::ByteSize::from_gb(4.0), 3);
        tables::write_table1_csv(
            &t1,
            std::fs::File::create(result_path("table1_footprint.csv"))?,
        )?;
        tables::write_table3_csv(std::fs::File::create(result_path("table3_models.csv"))?)?;
    });
    step!(
        "fig1",
        fig1_motivation::write_csv(
            &fig1_motivation::run(),
            std::fs::File::create(result_path("fig1_motivation.csv"))?
        )?
    );
    step!(
        "fig2",
        fig2_goodput_motivation::write_csv(
            &fig2_goodput_motivation::run(42),
            std::fs::File::create(result_path("fig2_goodput_motivation.csv"))?
        )?
    );
    step!(
        "fig8",
        fig8_throughput::write_csv(
            &fig8_throughput::run(),
            std::fs::File::create(result_path("fig8_throughput.csv"))?
        )?
    );
    step!(
        "fig9",
        fig9_goodput::write_csv(
            &fig9_goodput::run(42),
            std::fs::File::create(result_path("fig9_goodput.csv"))?
        )?
    );
    step!(
        "fig10",
        fig10_pmem::write_csv(
            &fig10_pmem::run(),
            std::fs::File::create(result_path("fig10_pmem.csv"))?
        )?
    );
    step!(
        "fig11",
        fig11_persist_micro::write_csv(
            &fig11_persist_micro::run(),
            std::fs::File::create(result_path("fig11_persist_micro.csv"))?
        )?
    );
    step!(
        "fig12",
        fig12_concurrency::write_csv(
            &fig12_concurrency::run(),
            std::fs::File::create(result_path("fig12_concurrency.csv"))?
        )?
    );
    step!(
        "fig13",
        fig13_threads::write_csv(
            &fig13_threads::run(),
            std::fs::File::create(result_path("fig13_threads.csv"))?
        )?
    );
    step!(
        "fig14",
        fig14_dram::write_csv(
            &fig14_dram::run(),
            std::fs::File::create(result_path("fig14_dram.csv"))?
        )?
    );
    step!(
        "ext_h100",
        ext_h100::write_csv(
            &ext_h100::run(),
            std::fs::File::create(result_path("ext_h100.csv"))?
        )?
    );
    step!(
        "ext_jit",
        ext_jit::write_csv(
            &ext_jit::run(42),
            std::fs::File::create(result_path("ext_jit.csv"))?
        )?
    );
    println!("all experiments written to results/");
    Ok(())
}

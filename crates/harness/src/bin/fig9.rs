//! Regenerates Figure 9 (a-f): goodput replaying the GCP A100 spot trace.
use pccheck_harness::{fig9_goodput as fig9, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig9::run(42);
    println!("Figure 9 — goodput (iters/s) on the spot preemption trace");
    println!(
        "{:>14} {:>14} {:>9} {:>12} {:>10}",
        "model", "strategy", "interval", "goodput", "rollbacks"
    );
    for r in &rows {
        println!(
            "{:>14} {:>14} {:>9} {:>12.5} {:>10}",
            r.model, r.strategy, r.interval, r.goodput, r.rollbacks
        );
    }
    let path = result_path("fig9_goodput.csv");
    fig9::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

//! Regenerates Figure 14: DRAM budget and pipelining (OPT-1.3B).
use pccheck_harness::{fig14_dram as fig14, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig14::run();
    println!("Figure 14 — OPT-1.3B throughput at interval 15, varying DRAM and chunking");
    println!(
        "{:>12} {:>9} {:>12}",
        "dram_factor", "variant", "throughput"
    );
    for r in &rows {
        println!(
            "{:>12.1} {:>9} {:>12.4}",
            r.dram_factor, r.variant, r.throughput
        );
    }
    let path = result_path("fig14_dram.csv");
    fig14::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

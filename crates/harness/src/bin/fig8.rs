//! Regenerates Figure 8 (a-f): throughput vs checkpoint frequency, 6 models.
use pccheck_harness::{fig8_throughput as fig8, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig8::run();
    println!("Figure 8 — training throughput (iters/s) with checkpointing on SSD/A100");
    println!(
        "{:>14} {:>14} {:>9} {:>12} {:>10}",
        "model", "strategy", "interval", "throughput", "slowdown"
    );
    for r in &rows {
        println!(
            "{:>14} {:>14} {:>9} {:>12.4} {:>10.3}",
            r.model, r.strategy, r.interval, r.throughput, r.slowdown
        );
    }
    let path = result_path("fig8_throughput.csv");
    fig8::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

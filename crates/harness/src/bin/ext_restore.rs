//! Extension: parallel-restore sweep — recovery latency vs readers × stripe width.
use pccheck_harness::{ext_restore, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_restore::run();
    println!("Extension — restore time vs reader count and stripe width");
    println!(
        "{:>8} {:>5} {:>8} {:>13} {:>8}",
        "size_mb", "ways", "readers", "restore_secs", "speedup"
    );
    for r in &rows {
        println!(
            "{:>8.1} {:>5} {:>8} {:>13.4} {:>8.2}",
            r.size.as_mb(),
            r.ways,
            r.readers,
            r.restore_secs,
            r.speedup
        );
    }
    let path = result_path("ext_restore.csv");
    ext_restore::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_restore")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

//! Extension: just-in-time checkpointing vs PCcheck under bulk preemptions.
use pccheck_harness::{ext_jit, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_jit::run(42);
    println!("Extension — JIT checkpointing vs PCcheck (SS2.2's bulky-preemption argument)");
    println!(
        "{:>11} {:>13} {:>17}",
        "burst_prob", "jit_goodput", "pccheck_goodput"
    );
    for r in &rows {
        println!(
            "{:>11.1} {:>13.5} {:>17.5}",
            r.burst_prob, r.jit_goodput, r.pccheck_goodput
        );
    }
    let path = result_path("ext_jit.csv");
    ext_jit::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_jit")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

//! Extension: chunk-codec compressibility × dedup-hit-rate sweep.
use pccheck_harness::{ext_compress, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_compress::run();
    println!("Extension — chunk codec: persist bytes vs compressibility and update sparsity");
    println!(
        "{:>7} {:>9} {:>12} {:>13} {:>15} {:>12} {:>7} {:>12} {:>10}",
        "period",
        "sparsity",
        "checkpoints",
        "logical_bytes",
        "persisted_bytes",
        "saved_ratio",
        "framed",
        "dedup_chunks",
        "recovered"
    );
    for r in &rows {
        println!(
            "{:>7} {:>9.2} {:>12} {:>13} {:>15} {:>12.2} {:>7} {:>12} {:>10}",
            r.period,
            r.sparsity,
            r.checkpoints,
            r.logical_bytes,
            r.persisted_bytes,
            r.bytes_saved_ratio,
            r.framed,
            r.dedup_chunks,
            r.recovered_bit_identical
        );
    }
    let path = result_path("ext_compress.csv");
    ext_compress::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_compress")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

//! Regenerates Figure 13: sensitivity to writer threads (OPT-350M).
use pccheck_harness::{fig13_threads as fig13, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig13::run();
    println!("Figure 13 — OPT-350M slowdown at interval 10, varying N x p");
    println!("{:>4} {:>4} {:>10}", "N", "p", "slowdown");
    for r in &rows {
        println!("{:>4} {:>4} {:>10.3}", r.n, r.p, r.slowdown);
    }
    let path = result_path("fig13_threads.csv");
    fig13::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

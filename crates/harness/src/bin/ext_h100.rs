//! Extension: OPT-1.3B on the Azure H100/NVMe testbed vs A100/pd-ssd.
use pccheck_harness::{ext_h100, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_h100::run();
    println!("Extension — H100/NVMe variant (SS5.2.1): same patterns, double the speed");
    println!(
        "{:>20} {:>14} {:>9} {:>12} {:>10}",
        "testbed", "strategy", "interval", "throughput", "slowdown"
    );
    for r in &rows {
        println!(
            "{:>20} {:>14} {:>9} {:>12.4} {:>10.3}",
            r.model, r.strategy, r.interval, r.throughput, r.slowdown
        );
    }
    let path = result_path("ext_h100.csv");
    ext_h100::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_h100")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

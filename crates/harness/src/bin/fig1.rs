//! Regenerates Figure 1: BLOOM-7B slowdown of CheckFreq/Gemini + recovery time.
use pccheck_harness::{fig1_motivation, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig1_motivation::run();
    println!("Figure 1 — BLOOM-7B slowdown vs checkpoint interval (SSD/A100)");
    println!(
        "{:>8} {:>18} {:>16} {:>14}",
        "interval", "checkfreq_slowdn", "gemini_slowdn", "recovery_s"
    );
    for r in &rows {
        println!(
            "{:>8} {:>18.3} {:>16.3} {:>14.1}",
            r.interval, r.checkfreq_slowdown, r.gemini_slowdown, r.recovery_secs
        );
    }
    let path = result_path("fig1_motivation.csv");
    fig1_motivation::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

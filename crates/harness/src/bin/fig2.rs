//! Regenerates Figure 2: BLOOM-7B goodput on the spot preemption trace.
use pccheck_harness::{fig2_goodput_motivation as fig2, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig2::run(42);
    println!("Figure 2 — BLOOM-7B goodput vs checkpoint interval (spot trace)");
    println!(
        "{:>10} {:>14} {:>12} {:>10}",
        "strategy", "interval", "goodput", "rollbacks"
    );
    for r in &rows {
        println!(
            "{:>10} {:>14} {:>12.5} {:>10}",
            r.strategy, r.interval, r.goodput, r.rollbacks
        );
    }
    println!(
        "peak/ideal: checkfreq={:.2} gemini={:.2} pccheck={:.2}",
        fig2::peak_fraction_of_ideal(&rows, "checkfreq"),
        fig2::peak_fraction_of_ideal(&rows, "gemini"),
        fig2::peak_fraction_of_ideal(&rows, "pccheck")
    );
    let path = result_path("fig2_goodput_motivation.csv");
    fig2::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

//! Regenerates Figure 12: sensitivity to concurrent checkpoints (VGG-16).
use pccheck_harness::{fig12_concurrency as fig12, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig12::run();
    println!("Figure 12 — VGG-16 slowdown, varying N and checkpoint interval");
    println!("{:>9} {:>4} {:>10}", "interval", "N", "slowdown");
    for r in &rows {
        println!("{:>9} {:>4} {:>10.3}", r.interval, r.n, r.slowdown);
    }
    let path = result_path("fig12_concurrency.csv");
    fig12::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

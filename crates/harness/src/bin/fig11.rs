//! Regenerates Figure 11: time to persist one checkpoint, varying sizes.
use pccheck_harness::{fig11_persist_micro as fig11, result_path};

fn main() -> std::io::Result<()> {
    let rows = fig11::run();
    println!("Figure 11 — end-to-end time to persist one checkpoint (SSD/A100)");
    println!("{:>9} {:>14} {:>14}", "size_gb", "strategy", "persist_secs");
    for r in &rows {
        println!(
            "{:>9.1} {:>14} {:>14.3}",
            r.size.as_gb(),
            r.strategy,
            r.persist_secs
        );
    }
    let path = result_path("fig11_persist_micro.csv");
    fig11::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    Ok(())
}

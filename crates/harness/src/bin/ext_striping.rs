//! Extension: striped-device sweep of the Figure-11 persist micro-benchmark.
use pccheck_harness::{ext_striping, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_striping::run();
    println!("Extension — persist time vs RAID-0 stripe width (Figure 11 microbenchmark)");
    println!(
        "{:>8} {:>5} {:>13} {:>8}",
        "size_gb", "ways", "persist_secs", "speedup"
    );
    for r in &rows {
        println!(
            "{:>8.1} {:>5} {:>13.3} {:>8.2}",
            r.size.as_gb(),
            r.ways,
            r.persist_secs,
            r.speedup
        );
    }
    let path = result_path("ext_striping.csv");
    ext_striping::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_striping")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

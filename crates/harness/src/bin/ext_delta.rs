//! Extension: incremental delta checkpointing sparsity × chain-length sweep.
use pccheck_harness::{ext_delta, profile_run, result_path};

fn main() -> std::io::Result<()> {
    let rows = ext_delta::run();
    println!("Extension — delta checkpointing: persist bytes vs sparsity and chain length");
    println!(
        "{:>9} {:>10} {:>12} {:>11} {:>12} {:>12} {:>10}",
        "sparsity",
        "max_chain",
        "checkpoints",
        "full_bytes",
        "delta_bytes",
        "saved_ratio",
        "fallbacks"
    );
    for r in &rows {
        println!(
            "{:>9.2} {:>10} {:>12} {:>11} {:>12} {:>12.2} {:>10}",
            r.sparsity,
            r.max_chain,
            r.checkpoints,
            r.full_bytes,
            r.delta_bytes,
            r.bytes_saved_ratio,
            r.full_fallbacks
        );
    }
    let path = result_path("ext_delta.csv");
    ext_delta::write_csv(&rows, std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());
    let profile = profile_run::drop_profile("ext_delta")?;
    println!("dropped profile {}", profile.display());
    Ok(())
}

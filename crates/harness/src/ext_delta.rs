//! Extension: incremental delta checkpointing sweep.
//!
//! Sweeps update sparsity × delta chain length through the concrete
//! [`PersistPipeline::checkpoint_delta`] path: each run drives a real
//! [`Gpu`] whose [`Gpu::update_sparse`] mutates only a fraction of every
//! tensor, so the pipeline's dirty-extent tracking decides per checkpoint
//! whether to persist a delta (extent table + packed dirty bytes) or fall
//! back to a full streamed copy (dirty ratio above policy, chain at its
//! cap, or no committed base). The row reports the persisted payload bytes
//! against what the full path would have written — the persist-bytes
//! reduction `BENCH_pr4.json` asserts at 10% sparsity.

use std::sync::Arc;

use pccheck::{CheckpointStore, DeltaOutcome, DeltaPolicy, PersistPipeline, PipelineCtx};
use pccheck_device::{DeviceConfig, HostBufferPool, PersistentDevice, SsdDevice};
use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
use pccheck_telemetry::{SpanId, Telemetry};
use pccheck_util::{ByteSize, CsvWriter};

/// Update sparsities swept (fraction of each tensor mutated per step).
pub const SPARSITIES: [f64; 4] = [0.01, 0.10, 0.50, 1.00];

/// Delta chain-length caps swept.
pub const CHAIN_LENGTHS: [u32; 3] = [2, 4, 8];

/// Training-state size per run.
pub const STATE_BYTES: u64 = 256 * 1024;

/// Staging chunk size.
pub const CHUNK_BYTES: u64 = 8 * 1024;

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtDeltaRow {
    /// Fraction of each tensor mutated per step.
    pub sparsity: f64,
    /// Chain-length cap the policy enforced.
    pub max_chain: u32,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Bytes the full path would persist (checkpoints × state size).
    pub full_bytes: u64,
    /// Bytes the delta path actually persisted.
    pub delta_bytes: u64,
    /// `full_bytes / delta_bytes`.
    pub bytes_saved_ratio: f64,
    /// Checkpoints that fell back to a full copy (first checkpoint, chain
    /// cap, or dirty ratio above policy).
    pub full_fallbacks: u64,
}

/// Runs `2 × (max_chain + 1)` checkpoints at one sparsity and returns the
/// measured row.
pub fn measure(sparsity: f64, max_chain: u32) -> ExtDeltaRow {
    let gpu = Gpu::new(
        GpuConfig::fast_for_tests(),
        TrainingState::synthetic(ByteSize::from_bytes(STATE_BYTES), 42),
    );
    gpu.update();
    // Chain roots stay pinned until their dependents retire, so the store
    // needs the whole chain plus a free slot to lease from.
    let slots = max_chain + 2;
    let cap = CheckpointStore::required_capacity(gpu.state_size(), slots) + ByteSize::from_kb(4);
    let device: Arc<dyn PersistentDevice> =
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
    let store = Arc::new(CheckpointStore::format(device, gpu.state_size(), slots).unwrap());
    let pipeline = PersistPipeline::new(store)
        .with_writers(2)
        .with_staging(HostBufferPool::new(ByteSize::from_bytes(CHUNK_BYTES), 8));
    let telemetry = Telemetry::disabled();
    let ctx = PipelineCtx {
        telemetry: &telemetry,
        span: SpanId::NONE,
    };
    // 0.75 keeps the 50%-sparse runs on the delta path while still letting
    // dense (100%) updates fall back to the full copy.
    let policy = DeltaPolicy {
        max_dirty_ratio: 0.75,
        max_chain,
    };
    let checkpoints = u64::from(max_chain + 1) * 2;
    let mut delta_bytes = 0u64;
    let mut full_fallbacks = 0u64;
    for iter in 1..=checkpoints {
        if iter > 1 {
            gpu.update_sparse(sparsity);
        }
        let guard = gpu.lock_weights_shared_owned();
        let digest = guard.digest();
        let (_, kind) = pipeline
            .checkpoint_delta(ctx, &guard, iter, digest.0, policy)
            .unwrap();
        drop(guard);
        match kind {
            DeltaOutcome::Delta { payload_len, .. } => delta_bytes += payload_len,
            DeltaOutcome::Full => {
                delta_bytes += STATE_BYTES;
                full_fallbacks += 1;
            }
        }
    }
    let full_bytes = checkpoints * STATE_BYTES;
    ExtDeltaRow {
        sparsity,
        max_chain,
        checkpoints,
        full_bytes,
        delta_bytes,
        bytes_saved_ratio: full_bytes as f64 / delta_bytes as f64,
        full_fallbacks,
    }
}

/// Runs the full sparsity × chain-length sweep.
pub fn run() -> Vec<ExtDeltaRow> {
    let mut rows = Vec::new();
    for &sparsity in &SPARSITIES {
        for &max_chain in &CHAIN_LENGTHS {
            rows.push(measure(sparsity, max_chain));
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[ExtDeltaRow], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "sparsity",
            "max_chain",
            "checkpoints",
            "full_bytes",
            "delta_bytes",
            "bytes_saved_ratio",
            "full_fallbacks",
        ],
    );
    for r in rows {
        w.row(&[
            &format_args!("{:.2}", r.sparsity),
            &r.max_chain,
            &r.checkpoints,
            &r.full_bytes,
            &r.delta_bytes,
            &format_args!("{:.2}", r.bytes_saved_ratio),
            &r.full_fallbacks,
        ])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_updates_cut_persisted_bytes() {
        let row = measure(0.10, 4);
        // One full root per 5-checkpoint cycle, deltas otherwise.
        assert_eq!(row.checkpoints, 10);
        assert_eq!(row.full_fallbacks, 2, "one full root per chain cycle");
        assert!(
            row.bytes_saved_ratio > 2.0,
            "10% sparsity must save >2x, got {:.2}",
            row.bytes_saved_ratio
        );
    }

    #[test]
    fn dense_updates_always_fall_back_to_full_copies() {
        let row = measure(1.00, 2);
        assert_eq!(row.full_fallbacks, row.checkpoints);
        assert!((row.bytes_saved_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn longer_chains_save_more_at_fixed_sparsity() {
        let short = measure(0.10, 2);
        let long = measure(0.10, 8);
        assert!(
            long.bytes_saved_ratio > short.bytes_saved_ratio,
            "chain 8 ({:.2}x) must beat chain 2 ({:.2}x)",
            long.bytes_saved_ratio,
            short.bytes_saved_ratio
        );
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let rows = vec![measure(0.5, 2)];
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("sparsity,max_chain,"));
    }
}

//! Tables 1 and 3 as printable, testable artifacts.

use pccheck::footprint::{self, Footprint};
use pccheck_gpu::{ModelSpec, ModelZoo};
use pccheck_util::{ByteSize, CsvWriter};

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// The footprint for a checkpoint of size `m`.
    pub footprint: Footprint,
}

/// Builds Table 1 for checkpoint size `m` and PCcheck concurrency `n`.
pub fn table1(m: ByteSize, n: usize) -> Vec<Table1Row> {
    vec![
        Table1Row {
            algorithm: "CheckFreq".into(),
            footprint: footprint::checkfreq(m),
        },
        Table1Row {
            algorithm: "GPM".into(),
            footprint: footprint::gpm(m),
        },
        Table1Row {
            algorithm: "Gemini".into(),
            footprint: footprint::gemini(m),
        },
        Table1Row {
            algorithm: "PCcheck".into(),
            footprint: footprint::pccheck(m, n),
        },
    ]
}

/// Writes Table 1 as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_table1_csv<W: std::io::Write>(rows: &[Table1Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &["algorithm", "gpu_mem", "dram_min", "dram_max", "storage"],
    );
    for r in rows {
        w.row(&[
            &r.algorithm,
            &r.footprint.gpu,
            &r.footprint.dram_min,
            &r.footprint.dram_max,
            &r.footprint.storage,
        ])?;
    }
    w.flush()
}

/// Writes Table 3 (the model catalog) as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_table3_csv<W: std::io::Write>(out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(
        out,
        &[
            "model",
            "dataset",
            "batch_a100",
            "batch_rtx",
            "checkpoint_gb",
            "nodes",
        ],
    );
    for m in table3() {
        let rtx = m
            .batch_rtx
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".into());
        w.row(&[
            &m.name,
            &m.dataset,
            &m.batch_a100,
            &rtx,
            &format_args!("{:.1}", m.checkpoint_size.as_gb()),
            &m.nodes,
        ])?;
    }
    w.flush()
}

/// Table 3's rows (the six evaluated models).
pub fn table3() -> Vec<ModelSpec> {
    ModelZoo::figure8_models()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let m = ByteSize::from_gb(4.0);
        let rows = table1(m, 3);
        assert_eq!(rows.len(), 4);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm == name)
                .expect("algorithm present")
        };
        assert_eq!(by("CheckFreq").footprint.storage, m * 2);
        assert_eq!(by("GPM").footprint.dram_max, ByteSize::ZERO);
        assert_eq!(by("Gemini").footprint.storage, ByteSize::ZERO);
        assert_eq!(by("PCcheck").footprint.storage, m * 4); // (N+1)m, N=3
    }

    #[test]
    fn table3_csv_contains_all_models() {
        let mut buf = Vec::new();
        write_table3_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for name in [
            "VGG16",
            "BERT",
            "TransformerXL",
            "OPT-1.3B",
            "OPT-2.7B",
            "BLOOM-7B",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("108.0"), "BLOOM checkpoint size present");
    }

    #[test]
    fn table1_csv_is_well_formed() {
        let rows = table1(ByteSize::from_gb(1.0), 2);
        let mut buf = Vec::new();
        write_table1_csv(&rows, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 5);
    }
}

//! Figure 13: sensitivity to the number of parallel writer threads per
//! checkpoint (`p`) — OPT-350M at a fixed checkpoint interval of 10,
//! varying `p` for each `N`.

use pccheck_gpu::ModelZoo;
use pccheck_sim::{SimConfig, StrategyCfg};
use pccheck_util::CsvWriter;

use crate::sweep::iterations_for;

/// Fixed checkpoint interval (the paper uses 10).
pub const INTERVAL: u64 = 10;
/// Concurrency levels swept.
pub const N_VALUES: [usize; 3] = [1, 2, 3];
/// Writer-thread counts swept.
pub const P_VALUES: [usize; 3] = [1, 2, 3];

/// One Figure 13 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Concurrent checkpoints `N`.
    pub n: usize,
    /// Writer threads per checkpoint `p`.
    pub p: usize,
    /// Slowdown over no checkpointing.
    pub slowdown: f64,
}

/// Runs the sweep.
pub fn run() -> Vec<Fig13Row> {
    let model = ModelZoo::opt_350m();
    let iters = iterations_for(INTERVAL);
    let ideal = SimConfig::ssd_a100(&model, INTERVAL, iters)
        .with_strategy(StrategyCfg::Ideal)
        .run();
    let mut rows = Vec::new();
    for &n in &N_VALUES {
        for &p in &P_VALUES {
            let report = SimConfig::ssd_a100(&model, INTERVAL, iters)
                .with_strategy(StrategyCfg::pccheck(n, p))
                .run();
            rows.push(Fig13Row {
                n,
                p,
                slowdown: report.slowdown_vs(&ideal),
            });
        }
    }
    rows
}

/// Writes the rows as CSV.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv<W: std::io::Write>(rows: &[Fig13Row], out: W) -> std::io::Result<()> {
    let mut w = CsvWriter::new(out, &["n", "p", "slowdown"]);
    for r in rows {
        w.row(&[&r.n, &r.p, &format_args!("{:.4}", r.slowdown)])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slowdown(rows: &[Fig13Row], n: usize, p: usize) -> f64 {
        rows.iter()
            .find(|r| r.n == n && r.p == p)
            .map(|r| r.slowdown)
            .expect("row present")
    }

    #[test]
    fn more_writers_help_most_at_low_concurrency() {
        // §5.4.2: 3 threads instead of 1 improve by 1.36×/1.16×/1.13× for
        // N=1/2/3 — the benefit shrinks as N grows.
        let rows = run();
        let gain_n1 = slowdown(&rows, 1, 1) / slowdown(&rows, 1, 3);
        let gain_n3 = slowdown(&rows, 3, 1) / slowdown(&rows, 3, 3);
        assert!(gain_n1 > 1.0, "p=3 must help at N=1: gain {gain_n1}");
        assert!(
            gain_n1 >= gain_n3 * 0.98,
            "benefit should shrink with N: N=1 gain {gain_n1}, N=3 gain {gain_n3}"
        );
    }

    #[test]
    fn writers_never_hurt_within_the_swept_range() {
        let rows = run();
        for &n in &N_VALUES {
            let p1 = slowdown(&rows, n, 1);
            let p3 = slowdown(&rows, n, 3);
            assert!(p3 <= p1 * 1.001, "N={n}: p=3 {p3} vs p=1 {p1}");
        }
    }

    #[test]
    fn grid_is_complete() {
        assert_eq!(run().len(), 9);
    }
}

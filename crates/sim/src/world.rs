//! The simulation world: training actor + checkpoint state machines over
//! fluid resources.
//!
//! One [`World`] simulates one node training one model with one
//! checkpointing strategy. Two fluid resources exist: the PCIe link
//! (GPU→DRAM snapshot copies) and the persistence media (storage device or,
//! for Gemini, the network). Training alternates compute (`T`) and update
//! (`U`) phases; checkpoints hold the weights (blocking `U`) while their
//! snapshot copy is in flight, and persist in the background according to
//! each strategy's admission rules.

use std::collections::{HashMap, VecDeque};

use pccheck_util::{ByteSize, SimDuration, SimTime};

use crate::config::{SimConfig, StrategyCfg};
use crate::fluid::FluidResource;
use crate::report::{CommitRecord, SimReport};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrainState {
    /// T phase running; ends at `compute_ends`.
    Computing,
    /// T done; U waiting for in-flight snapshot copies to release the
    /// weights.
    WaitingUpdate,
    /// U done at a checkpoint boundary; waiting for the strategy to admit
    /// the checkpoint (CheckFreq/Gemini: previous persist; GPM/traditional:
    /// this persist; PCcheck: a free ticket).
    WaitingAdmission,
    /// All iterations finished (checkpoints may still be draining).
    Finished,
}

/// Which phase a fluid job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Copy,
    Persist,
}

#[derive(Debug)]
struct Ckpt {
    iteration: u64,
    started: SimTime,
    /// Chunk sizes (all `b` except possibly the last).
    chunks: Vec<ByteSize>,
    /// Next chunk to start copying (needs a DRAM buffer).
    stage_next: usize,
    /// Chunks fully copied to DRAM.
    copied: usize,
    /// Copy in flight? (chunk copies are sequential per checkpoint — one
    /// DMA stream each.)
    copy_in_flight: bool,
    /// Chunks copied and waiting for a writer slot.
    persist_ready: VecDeque<usize>,
    /// Persist jobs in flight (≤ p for PCcheck).
    persists_in_flight: usize,
    /// Chunks durable.
    persisted: usize,
    /// Whether this checkpoint still holds the weights read-lock.
    holds_weights: bool,
    /// Whether this checkpoint stages through the DRAM pool (PCcheck only).
    uses_dram_pool: bool,
    /// In non-pipelined mode, persists start only after all copies finish.
    pipelined: bool,
    /// Max concurrent persist jobs for this checkpoint.
    writer_slots: usize,
}

impl Ckpt {
    fn all_copied(&self) -> bool {
        self.copied == self.chunks.len()
    }

    fn done(&self) -> bool {
        self.persisted == self.chunks.len()
    }
}

/// The simulator.
#[derive(Debug)]
pub struct World {
    cfg: SimConfig,
    now: SimTime,
    pcie: FluidResource,
    media: FluidResource,
    /// Maps fluid job ids to (checkpoint key, chunk index, phase).
    jobs: HashMap<u64, (u64, usize, Phase)>,
    next_job: u64,
    ckpts: HashMap<u64, Ckpt>,
    next_ckpt: u64,
    /// PCcheck tickets in use.
    tickets: usize,
    /// Free DRAM chunks in the staging pool.
    dram_free: usize,
    /// Checkpoints waiting for a DRAM buffer, FIFO.
    dram_waiters: VecDeque<u64>,
    train: TrainState,
    compute_ends: Option<SimTime>,
    iter_done: u64,
    stall_since: Option<SimTime>,
    stall_total: SimDuration,
    /// Checkpoint id the training actor is blocked on (GPM/traditional wait
    /// for their own; CheckFreq/Gemini for the previous).
    blocking_on: Option<u64>,
    /// A checkpoint request deferred by admission (its iteration).
    pending_request: Option<u64>,
    training_finished_at: Option<SimTime>,
    commits: Vec<CommitRecord>,
    iteration_times: Vec<SimTime>,
    write_times: Vec<SimDuration>,
}

impl World {
    /// Builds the world for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if a non-pipelined PCcheck configuration's DRAM pool cannot
    /// stage a whole checkpoint (the concrete engine would deadlock the
    /// same way; the config is invalid).
    pub fn new(cfg: SimConfig) -> Self {
        if let StrategyCfg::PcCheck {
            pipelined: false, ..
        } = cfg.strategy
        {
            assert!(
                cfg.chunk_size * cfg.dram_chunks as u64 >= cfg.checkpoint_size,
                "non-pipelined PCcheck must stage the full checkpoint in DRAM"
            );
        }
        let pcie = FluidResource::new(cfg.pcie_bandwidth, None);
        // The media resource models the whole topology: striping multiplies
        // the aggregate ceiling while the per-writer syscall cap stays put.
        let media = FluidResource::new(cfg.effective_storage_bandwidth(), cfg.per_writer_cap());
        let dram_free = cfg.dram_chunks;
        World {
            pcie,
            media,
            jobs: HashMap::new(),
            next_job: 0,
            ckpts: HashMap::new(),
            next_ckpt: 0,
            tickets: 0,
            dram_free,
            dram_waiters: VecDeque::new(),
            train: TrainState::Computing,
            compute_ends: None,
            iter_done: 0,
            stall_since: None,
            stall_total: SimDuration::ZERO,
            blocking_on: None,
            pending_request: None,
            training_finished_at: None,
            commits: Vec::new(),
            iteration_times: Vec::new(),
            write_times: Vec::new(),
            now: SimTime::ZERO,
            cfg,
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        self.start_compute();
        loop {
            let mut t_next = SimTime::MAX;
            if let Some(ce) = self.compute_ends {
                t_next = t_next.min(ce);
            }
            if let Some(t) = self.pcie.next_completion(self.now) {
                t_next = t_next.min(t);
            }
            if let Some(t) = self.media.next_completion(self.now) {
                t_next = t_next.min(t);
            }
            if t_next == SimTime::MAX {
                assert!(
                    self.train == TrainState::Finished && self.ckpts.is_empty(),
                    "simulation deadlock at {} (state {:?}, {} ckpts in flight)",
                    self.now,
                    self.train,
                    self.ckpts.len()
                );
                break;
            }
            self.now = t_next;
            for job in self.pcie.take_completed(self.now) {
                self.on_job_done(job);
            }
            for job in self.media.take_completed(self.now) {
                self.on_job_done(job);
            }
            if self.compute_ends == Some(self.now) {
                self.compute_ends = None;
                self.on_compute_done();
            }
            if self.train == TrainState::Finished && self.ckpts.is_empty() {
                break;
            }
        }
        self.finalize()
    }

    fn finalize(self) -> SimReport {
        let train_end = self
            .training_finished_at
            .unwrap_or(self.now)
            .saturating_since(SimTime::ZERO);
        let elapsed = if train_end.is_zero() {
            SimDuration::from_nanos(1)
        } else {
            train_end
        };
        let mean_write_time = if self.write_times.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(
                self.write_times
                    .iter()
                    .map(|w| w.as_secs_f64())
                    .sum::<f64>()
                    / self.write_times.len() as f64,
            )
        };
        SimReport {
            strategy: self.cfg.strategy.name(),
            label: self.cfg.label.clone(),
            iterations: self.iter_done,
            elapsed,
            throughput: self.iter_done as f64 / elapsed.as_secs_f64(),
            stall_time: self.stall_total,
            commits: self.commits,
            mean_write_time,
            iteration_times: self.iteration_times,
        }
    }

    // ------------------------------------------------------------------
    // Training actor
    // ------------------------------------------------------------------

    fn start_compute(&mut self) {
        self.train = TrainState::Computing;
        self.compute_ends = Some(self.now + self.cfg.iter_time);
    }

    fn on_compute_done(&mut self) {
        // U phase: needs the weights exclusively.
        if self.any_weight_holder() {
            self.enter_stall(TrainState::WaitingUpdate);
        } else {
            self.finish_update();
        }
    }

    fn any_weight_holder(&self) -> bool {
        self.ckpts.values().any(|c| c.holds_weights)
    }

    fn enter_stall(&mut self, state: TrainState) {
        self.train = state;
        if self.stall_since.is_none() {
            self.stall_since = Some(self.now);
        }
    }

    fn leave_stall(&mut self) {
        if let Some(since) = self.stall_since.take() {
            self.stall_total += self.now.saturating_since(since);
        }
    }

    fn finish_update(&mut self) {
        self.leave_stall();
        self.iter_done += 1;
        self.iteration_times.push(self.now);
        let at_boundary = self.iter_done % self.cfg.interval == 0
            && !matches!(self.cfg.strategy, StrategyCfg::Ideal);
        if self.iter_done >= self.cfg.iterations {
            // Training time ends at the last update; the final boundary's
            // checkpoint still fires (the concrete loop checkpoints, then
            // drains) but the drain is excluded from the throughput metric.
            self.train = TrainState::Finished;
            self.training_finished_at = Some(self.now);
            if at_boundary {
                if let StrategyCfg::PcCheck { .. } = self.cfg.strategy {
                    self.tickets += 1; // paired with the completion decrement
                }
                self.spawn_checkpoint(self.iter_done);
            }
            return;
        }
        if at_boundary {
            self.request_checkpoint(self.iter_done);
        } else {
            self.start_compute();
        }
    }

    // ------------------------------------------------------------------
    // Strategy admission
    // ------------------------------------------------------------------

    fn request_checkpoint(&mut self, iteration: u64) {
        match self.cfg.strategy {
            StrategyCfg::Ideal => self.start_compute(),
            StrategyCfg::Traditional | StrategyCfg::Gpm => {
                // Fully synchronous: start and block on it.
                let id = self.spawn_checkpoint(iteration);
                self.blocking_on = Some(id);
                self.enter_stall(TrainState::WaitingAdmission);
            }
            StrategyCfg::CheckFreq | StrategyCfg::Gemini => {
                if let Some(&existing) = self.ckpts.keys().next() {
                    // One at a time: wait for the previous persist.
                    self.blocking_on = Some(existing);
                    self.pending_request = Some(iteration);
                    self.enter_stall(TrainState::WaitingAdmission);
                } else {
                    self.spawn_checkpoint(iteration);
                    self.start_compute();
                }
            }
            StrategyCfg::PcCheck { n, .. } => {
                if self.tickets < n {
                    self.tickets += 1;
                    self.spawn_checkpoint(iteration);
                    self.start_compute();
                } else {
                    self.pending_request = Some(iteration);
                    self.enter_stall(TrainState::WaitingAdmission);
                }
            }
        }
    }

    /// Called when a checkpoint completes, to unblock the training actor.
    fn on_checkpoint_complete(&mut self, id: u64) {
        if matches!(self.cfg.strategy, StrategyCfg::PcCheck { .. }) {
            self.tickets -= 1;
        }
        if self.train != TrainState::WaitingAdmission {
            return;
        }
        match self.cfg.strategy {
            StrategyCfg::Traditional | StrategyCfg::Gpm => {
                if self.blocking_on == Some(id) {
                    self.blocking_on = None;
                    self.leave_stall();
                    self.start_compute();
                }
            }
            StrategyCfg::CheckFreq | StrategyCfg::Gemini => {
                if self.blocking_on == Some(id) {
                    self.blocking_on = None;
                    if let Some(iter) = self.pending_request.take() {
                        self.spawn_checkpoint(iter);
                    }
                    self.leave_stall();
                    self.start_compute();
                }
            }
            StrategyCfg::PcCheck { n, .. } => {
                if self.tickets < n {
                    if let Some(iter) = self.pending_request.take() {
                        self.tickets += 1;
                        self.spawn_checkpoint(iter);
                        self.leave_stall();
                        self.start_compute();
                    }
                }
            }
            StrategyCfg::Ideal => {}
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint state machine
    // ------------------------------------------------------------------

    fn spawn_checkpoint(&mut self, iteration: u64) -> u64 {
        let id = self.next_ckpt;
        self.next_ckpt += 1;

        let (chunks, uses_pool, writer_slots, pipelined, direct) = match self.cfg.strategy {
            StrategyCfg::PcCheck { p, pipelined, .. } => (
                split_chunks(self.cfg.checkpoint_size, self.cfg.chunk_size),
                true,
                p,
                pipelined,
                false,
            ),
            StrategyCfg::Gpm => {
                // Kernel copies go straight to the device; model the UVM
                // inefficiency by inflating the transferred bytes.
                let size = ByteSize::from_bytes(
                    (self.cfg.checkpoint_size.as_u64() as f64 / self.cfg.gpm_efficiency()) as u64,
                );
                (vec![size], false, 1, true, true)
            }
            StrategyCfg::Gemini => (vec![self.cfg.checkpoint_size], false, 1, true, false),
            _ => (vec![self.cfg.checkpoint_size], false, 1, true, false),
        };

        let mut ckpt = Ckpt {
            iteration,
            started: self.now,
            chunks,
            stage_next: 0,
            copied: 0,
            copy_in_flight: false,
            persist_ready: VecDeque::new(),
            persists_in_flight: 0,
            persisted: 0,
            holds_weights: !direct,
            uses_dram_pool: uses_pool,
            pipelined,
            writer_slots,
        };
        if direct {
            // GPM: the whole payload is immediately a persist job.
            ckpt.persist_ready.push_back(0);
            ckpt.copied = ckpt.chunks.len();
            ckpt.stage_next = ckpt.chunks.len();
        }
        self.ckpts.insert(id, ckpt);
        if direct {
            self.start_persists(id);
        } else {
            self.try_stage(id);
        }
        id
    }

    /// Tries to start the next chunk copy for checkpoint `id` (needs a DRAM
    /// buffer when pooled, and chunk copies are sequential per checkpoint).
    fn try_stage(&mut self, id: u64) {
        let Some(ckpt) = self.ckpts.get_mut(&id) else {
            return;
        };
        if ckpt.copy_in_flight || ckpt.stage_next >= ckpt.chunks.len() {
            return;
        }
        if ckpt.uses_dram_pool {
            if self.dram_free == 0 {
                if !self.dram_waiters.contains(&id) {
                    self.dram_waiters.push_back(id);
                }
                return;
            }
            self.dram_free -= 1;
        }
        let chunk_idx = ckpt.stage_next;
        ckpt.stage_next += 1;
        ckpt.copy_in_flight = true;
        let size = ckpt.chunks[chunk_idx];
        let job = self.next_job;
        self.next_job += 1;
        self.jobs.insert(job, (id, chunk_idx, Phase::Copy));
        self.pcie.add_job(job, size, self.now);
    }

    /// Starts as many persist jobs as writer slots allow for `id`.
    fn start_persists(&mut self, id: u64) {
        let Some(ckpt) = self.ckpts.get_mut(&id) else {
            return;
        };
        if !ckpt.pipelined && !ckpt.all_copied() {
            return; // staged mode: wait for the full snapshot
        }
        while ckpt.persists_in_flight < ckpt.writer_slots {
            let Some(chunk_idx) = ckpt.persist_ready.pop_front() else {
                break;
            };
            ckpt.persists_in_flight += 1;
            let size = ckpt.chunks[chunk_idx];
            let job = self.next_job;
            self.next_job += 1;
            self.jobs.insert(job, (id, chunk_idx, Phase::Persist));
            self.media.add_job(job, size, self.now);
        }
    }

    fn on_job_done(&mut self, job: u64) {
        let (id, chunk_idx, phase) = self.jobs.remove(&job).expect("job registered");
        match phase {
            Phase::Copy => self.on_copy_done(id, chunk_idx),
            Phase::Persist => self.on_persist_done(id, chunk_idx),
        }
    }

    fn on_copy_done(&mut self, id: u64, chunk_idx: usize) {
        let released_weights;
        {
            let ckpt = self.ckpts.get_mut(&id).expect("ckpt exists");
            ckpt.copied += 1;
            ckpt.copy_in_flight = false;
            ckpt.persist_ready.push_back(chunk_idx);
            released_weights = ckpt.all_copied() && ckpt.holds_weights;
            if released_weights {
                ckpt.holds_weights = false;
            }
        }
        self.start_persists(id);
        self.try_stage(id);
        if released_weights && self.train == TrainState::WaitingUpdate && !self.any_weight_holder()
        {
            self.finish_update();
        }
    }

    fn on_persist_done(&mut self, id: u64, _chunk_idx: usize) {
        let done;
        {
            let ckpt = self.ckpts.get_mut(&id).expect("ckpt exists");
            ckpt.persisted += 1;
            ckpt.persists_in_flight -= 1;
            if ckpt.uses_dram_pool {
                self.dram_free += 1;
            }
            done = ckpt.done();
        }
        // A freed DRAM buffer may unblock a stage for any waiting ckpt.
        while self.dram_free > 0 {
            let Some(waiter) = self.dram_waiters.pop_front() else {
                break;
            };
            self.try_stage(waiter);
        }
        self.start_persists(id);
        if done {
            let ckpt = self.ckpts.remove(&id).expect("ckpt exists");
            self.write_times
                .push(self.now.saturating_since(ckpt.started));
            self.commits.push(CommitRecord {
                time: self.now,
                iteration: ckpt.iteration,
            });
            self.on_checkpoint_complete(id);
        }
    }
}

fn split_chunks(total: ByteSize, chunk: ByteSize) -> Vec<ByteSize> {
    let mut chunks = Vec::new();
    let mut remaining = total.as_u64();
    let b = chunk.as_u64().max(1);
    while remaining > 0 {
        let n = b.min(remaining);
        chunks.push(ByteSize::from_bytes(n));
        remaining -= n;
    }
    if chunks.is_empty() {
        chunks.push(ByteSize::from_bytes(1));
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_gpu::ModelZoo;
    use pccheck_util::Bandwidth;

    fn base(interval: u64, iters: u64) -> SimConfig {
        SimConfig::ssd_a100(&ModelZoo::vgg16(), interval, iters)
    }

    #[test]
    fn ideal_throughput_is_one_over_t() {
        let report = base(10, 100).with_strategy(StrategyCfg::Ideal).run();
        // VGG16: 60 ms → 16.67 it/s.
        assert!((report.throughput - 1000.0 / 60.0).abs() < 0.05);
        assert_eq!(report.iterations, 100);
        assert!(report.commits.is_empty());
        assert_eq!(report.stall_time, SimDuration::ZERO);
    }

    #[test]
    fn traditional_pays_full_copy_and_persist() {
        let report = base(10, 100).with_strategy(StrategyCfg::Traditional).run();
        let ideal = base(10, 100).with_strategy(StrategyCfg::Ideal).run();
        let slowdown = report.slowdown_vs(&ideal);
        // Analytic: every 10 iterations (0.6 s of compute) training stalls
        // for copy (1.1 GB / 12 GB/s ≈ 0.09 s) + single-writer persist
        // (1.1 GB / 0.432 GB/s ≈ 2.54 s) → slowdown ≈ (0.6+2.64)/0.6 ≈ 5.4.
        assert!(slowdown > 4.2, "slowdown {slowdown}");
        assert!(slowdown < 6.8, "slowdown {slowdown}");
        assert_eq!(report.commits.len(), 10);
    }

    #[test]
    fn checkfreq_beats_traditional_but_stalls_at_high_frequency() {
        let traditional = base(1, 60).with_strategy(StrategyCfg::Traditional).run();
        let checkfreq = base(1, 60).with_strategy(StrategyCfg::CheckFreq).run();
        assert!(
            checkfreq.throughput > traditional.throughput,
            "CheckFreq ({}) must beat traditional ({})",
            checkfreq.throughput,
            traditional.throughput
        );
        // But at interval 1 it still crawls: each boundary waits for the
        // previous ~5 s persist.
        let ideal = base(1, 60).with_strategy(StrategyCfg::Ideal).run();
        assert!(checkfreq.slowdown_vs(&ideal) > 5.0);
    }

    #[test]
    fn pccheck_beats_checkfreq_at_high_frequency() {
        for interval in [1u64, 10, 25] {
            let cf = base(interval, 200)
                .with_strategy(StrategyCfg::CheckFreq)
                .run();
            let pc = base(interval, 200)
                .with_strategy(StrategyCfg::pccheck(4, 3))
                .run();
            assert!(
                pc.throughput > cf.throughput,
                "interval {interval}: pccheck {} <= checkfreq {}",
                pc.throughput,
                cf.throughput
            );
        }
    }

    #[test]
    fn pccheck_overhead_small_at_moderate_frequency() {
        // VGG16, interval 25: paper shows PCcheck close to ideal.
        let ideal = base(25, 400).with_strategy(StrategyCfg::Ideal).run();
        let pc = base(25, 400)
            .with_strategy(StrategyCfg::pccheck(4, 3))
            .run();
        let slowdown = pc.slowdown_vs(&ideal);
        assert!(
            slowdown < 1.35,
            "PCcheck at interval 25 should be near-ideal, got {slowdown}"
        );
    }

    #[test]
    fn pipelined_strategies_converge_to_ideal_at_low_frequency() {
        let ideal = base(200, 400).with_strategy(StrategyCfg::Ideal).run();
        for strat in [StrategyCfg::CheckFreq, StrategyCfg::pccheck(2, 3)] {
            let r = base(200, 400).with_strategy(strat).run();
            let slowdown = r.slowdown_vs(&ideal);
            assert!(
                slowdown < 1.25,
                "{}: slowdown {slowdown} at interval 200",
                r.strategy
            );
        }
        // GPM never converges on VGG16: its slow UVM copy stalls training
        // for seconds per checkpoint ("GPM's overheads remain significant
        // at these frequencies", §5.2.1).
        let gpm = base(200, 400).with_strategy(StrategyCfg::Gpm).run();
        let slowdown = gpm.slowdown_vs(&ideal);
        assert!(
            slowdown > 1.3,
            "gpm should stay visibly slow on VGG16: {slowdown}"
        );
    }

    #[test]
    fn gpm_stalls_more_than_checkfreq_at_moderate_frequency() {
        // §5.2.1: at lower checkpoint frequencies GPM's full stall hurts
        // more than CheckFreq's pipelining.
        let gpm = base(50, 300).with_strategy(StrategyCfg::Gpm).run();
        let cf = base(50, 300).with_strategy(StrategyCfg::CheckFreq).run();
        assert!(
            gpm.throughput < cf.throughput,
            "gpm {} should trail checkfreq {}",
            gpm.throughput,
            cf.throughput
        );
    }

    #[test]
    fn more_concurrent_checkpoints_help_at_interval_one() {
        let one = base(1, 100).with_strategy(StrategyCfg::pccheck(1, 3)).run();
        let four = base(1, 100).with_strategy(StrategyCfg::pccheck(4, 3)).run();
        assert!(
            four.throughput > one.throughput,
            "N=4 ({}) must beat N=1 ({}) at interval 1",
            four.throughput,
            one.throughput
        );
    }

    #[test]
    fn more_writer_threads_shorten_write_time() {
        let p1 = base(10, 200)
            .with_strategy(StrategyCfg::pccheck(1, 1))
            .run();
        let p3 = base(10, 200)
            .with_strategy(StrategyCfg::pccheck(1, 3))
            .run();
        assert!(
            p3.mean_write_time < p1.mean_write_time,
            "p=3 ({}) must persist faster than p=1 ({})",
            p3.mean_write_time,
            p1.mean_write_time
        );
    }

    #[test]
    fn gemini_is_limited_by_the_network() {
        // BLOOM-7B shard (18 GB) over 15 Gbps ≈ 10.3 s per checkpoint; at
        // interval 10 (12.5 s compute) the stall is mild, at interval 1 it
        // dominates.
        let model = ModelZoo::bloom_7b();
        let ideal = SimConfig::ssd_a100(&model, 1, 50)
            .with_strategy(StrategyCfg::Ideal)
            .run();
        let g1 = SimConfig::ssd_a100(&model, 1, 50)
            .with_strategy(StrategyCfg::Gemini)
            .run();
        assert!(
            g1.slowdown_vs(&ideal) > 3.0,
            "got {}",
            g1.slowdown_vs(&ideal)
        );
        let g100 = SimConfig::ssd_a100(&model, 100, 300)
            .with_strategy(StrategyCfg::Gemini)
            .run();
        let ideal100 = SimConfig::ssd_a100(&model, 100, 300)
            .with_strategy(StrategyCfg::Ideal)
            .run();
        assert!(g100.slowdown_vs(&ideal100) < 1.15);
    }

    #[test]
    fn commits_are_monotone_in_time_and_bounded_by_iterations() {
        let r = base(5, 100).with_strategy(StrategyCfg::pccheck(3, 2)).run();
        for pair in r.commits.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(r.commits.iter().all(|c| c.iteration <= 100));
        assert_eq!(r.commits.len(), 100 / 5);
        assert_eq!(r.iteration_times.len(), 100);
    }

    #[test]
    fn write_time_under_contention_exceeds_solo_write_time() {
        let solo = base(50, 200)
            .with_strategy(StrategyCfg::pccheck(4, 3))
            .run();
        let contended = base(1, 200).with_strategy(StrategyCfg::pccheck(4, 3)).run();
        assert!(
            contended.mean_write_time > solo.mean_write_time,
            "contended Tw {} must exceed solo Tw {}",
            contended.mean_write_time,
            solo.mean_write_time
        );
    }

    #[test]
    fn dram_pool_limits_are_respected() {
        // A tiny DRAM pool forces staging stalls but must not deadlock.
        let mut cfg = base(5, 50).with_strategy(StrategyCfg::pccheck(4, 2));
        cfg.dram_chunks = 2;
        let r = cfg.run();
        assert_eq!(r.iterations, 50);
    }

    #[test]
    #[should_panic(expected = "non-pipelined PCcheck")]
    fn non_pipelined_with_tiny_pool_is_rejected() {
        let mut cfg = base(5, 50).with_strategy(StrategyCfg::PcCheck {
            n: 2,
            p: 2,
            pipelined: false,
        });
        cfg.dram_chunks = 2; // 2 chunks of m/20 cannot stage m
        cfg.run();
    }

    #[test]
    fn non_pipelined_with_big_pool_works() {
        let mut cfg = base(10, 100).with_strategy(StrategyCfg::PcCheck {
            n: 2,
            p: 2,
            pipelined: false,
        });
        cfg.dram_chunks = 64; // > 20 chunks of m/20: full checkpoint fits
        let pipe = base(10, 100)
            .with_strategy(StrategyCfg::pccheck(2, 2))
            .run();
        let staged = cfg.run();
        assert_eq!(staged.iterations, 100);
        // §5.4.3: pipelining is slightly better (or equal).
        assert!(pipe.throughput >= staged.throughput * 0.99);
    }

    #[test]
    fn striping_shortens_write_time_and_raises_throughput() {
        // Figure-11 flavor: same per-member device, wider stripe → higher
        // aggregate persist bandwidth. Multiple writers are needed to use
        // it (the per-writer cap is per-member and does not scale).
        let single = base(1, 100).with_strategy(StrategyCfg::pccheck(2, 4)).run();
        let striped = base(1, 100)
            .with_strategy(StrategyCfg::pccheck(2, 4))
            .with_stripe_ways(4)
            .run();
        assert!(
            striped.mean_write_time < single.mean_write_time,
            "4-way stripe Tw {} must beat single-device Tw {}",
            striped.mean_write_time,
            single.mean_write_time
        );
        assert!(
            striped.throughput >= single.throughput,
            "striping must not lose throughput: {} < {}",
            striped.throughput,
            single.throughput
        );
    }

    #[test]
    fn faster_storage_reduces_overhead() {
        let mut slow = base(10, 200).with_strategy(StrategyCfg::pccheck(2, 3));
        let mut fast = slow.clone();
        slow.storage_bandwidth = Bandwidth::from_gb_per_sec(0.2);
        fast.storage_bandwidth = Bandwidth::from_gb_per_sec(4.0);
        let slow_r = slow.run();
        let fast_r = fast.run();
        assert!(fast_r.throughput > slow_r.throughput);
    }

    #[test]
    fn split_chunks_covers_exactly() {
        let chunks = split_chunks(ByteSize::from_bytes(1000), ByteSize::from_bytes(300));
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.as_u64()).sum::<u64>(), 1000);
        assert_eq!(chunks[3].as_u64(), 100);
        assert_eq!(
            split_chunks(ByteSize::from_bytes(10), ByteSize::from_bytes(100)).len(),
            1
        );
    }
}

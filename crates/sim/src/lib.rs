//! Discrete-event simulator for the PCcheck reproduction.
//!
//! The paper's headline experiments train models with 16–108 GB checkpoint
//! states for thousands of iterations — hours of wall-clock time on real
//! hardware, impossible to replicate byte-for-byte here. This crate runs
//! the *same scheduling policies* as the concrete engines in virtual time:
//!
//! * training is an actor alternating compute (`T`) and update (`U`) phases,
//! * the PCIe link and the storage device (or network link, for Gemini)
//!   are *fluid resources*: in-flight transfers share bandwidth equally,
//!   optionally capped per job to model single-writer-thread limits,
//! * every checkpointing strategy — ideal, traditional, CheckFreq, GPM,
//!   Gemini, PCcheck — is a state machine over those resources with exactly
//!   the admission/stall rules of its concrete implementation: CheckFreq
//!   admits one checkpoint at a time, GPM stalls training, PCcheck takes
//!   one of `N` tickets, stages chunks through a bounded DRAM pool, and
//!   fans out over `p` writer slots.
//!
//! The output is a [`SimReport`]: elapsed virtual time, throughput,
//! per-checkpoint write times, and the commit log that the goodput replay
//! (crate `pccheck-trace`) rolls back against.
//!
//! # Examples
//!
//! ```
//! use pccheck_sim::{SimConfig, StrategyCfg};
//! use pccheck_gpu::ModelZoo;
//!
//! let model = ModelZoo::vgg16();
//! let base = SimConfig::ssd_a100(&model, 10, 500);
//! let ideal = base.clone().with_strategy(StrategyCfg::Ideal).run();
//! let pc = base.with_strategy(StrategyCfg::pccheck(2, 3)).run();
//! let slowdown = pc.slowdown_vs(&ideal);
//! assert!(slowdown >= 1.0);
//! ```

pub mod config;
pub mod fluid;
pub mod report;
pub mod world;

pub use config::{MediaKind, SimConfig, StrategyCfg};
pub use fluid::FluidResource;
pub use report::SimReport;
pub use world::World;

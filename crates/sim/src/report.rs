//! Simulation results.

use serde::{Deserialize, Serialize};

use pccheck_util::{SimDuration, SimTime};

/// One committed checkpoint in the simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// Virtual time the checkpoint became durable.
    pub time: SimTime,
    /// The training iteration it captured.
    pub iteration: u64,
}

/// Results of a simulated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Strategy name.
    pub strategy: String,
    /// Workload label.
    pub label: String,
    /// Iterations executed.
    pub iterations: u64,
    /// Virtual elapsed time.
    pub elapsed: SimDuration,
    /// Iterations per (virtual) second.
    pub throughput: f64,
    /// Total time the training actor spent blocked on checkpointing
    /// (admission stalls + inline persists + update/copy conflicts).
    pub stall_time: SimDuration,
    /// Commit log, in commit order.
    pub commits: Vec<CommitRecord>,
    /// Mean end-to-end write time of a checkpoint (start of snapshot to
    /// durable), i.e. the paper's `Tw` under real contention.
    pub mean_write_time: SimDuration,
    /// Completion times of each iteration (for goodput replay).
    pub iteration_times: Vec<SimTime>,
}

impl SimReport {
    /// Slowdown of this run relative to `baseline` (≥ 1 when checkpointing
    /// costs anything).
    pub fn slowdown_vs(&self, baseline: &SimReport) -> f64 {
        baseline.throughput / self.throughput
    }

    /// The latest iteration committed no later than `t` (what a failure at
    /// `t` can recover to).
    pub fn latest_commit_at(&self, t: SimTime) -> Option<CommitRecord> {
        self.commits
            .iter()
            .filter(|c| c.time <= t)
            .max_by_key(|c| c.iteration)
            .copied()
    }

    /// The number of iterations finished no later than `t`.
    pub fn iterations_done_at(&self, t: SimTime) -> u64 {
        self.iteration_times.partition_point(|&it| it <= t) as u64
    }

    /// Mean interval (iterations) between consecutive commits.
    pub fn mean_commit_interval(&self) -> f64 {
        if self.commits.len() < 2 {
            return self.iterations as f64;
        }
        let first = self.commits.first().expect("len>=2").iteration;
        let last = self.commits.last().expect("len>=2").iteration;
        (last - first) as f64 / (self.commits.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            strategy: "test".into(),
            label: "w".into(),
            iterations: 4,
            elapsed: SimDuration::from_secs(4),
            throughput: 1.0,
            stall_time: SimDuration::ZERO,
            commits: vec![
                CommitRecord {
                    time: SimTime::from_secs_f64(1.5),
                    iteration: 1,
                },
                CommitRecord {
                    time: SimTime::from_secs_f64(3.5),
                    iteration: 3,
                },
            ],
            mean_write_time: SimDuration::from_millis(500),
            iteration_times: vec![
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.0),
                SimTime::from_secs_f64(3.0),
                SimTime::from_secs_f64(4.0),
            ],
        }
    }

    #[test]
    fn latest_commit_at_respects_time() {
        let r = report();
        assert_eq!(r.latest_commit_at(SimTime::from_secs_f64(1.0)), None);
        assert_eq!(
            r.latest_commit_at(SimTime::from_secs_f64(2.0))
                .unwrap()
                .iteration,
            1
        );
        assert_eq!(
            r.latest_commit_at(SimTime::from_secs_f64(10.0))
                .unwrap()
                .iteration,
            3
        );
    }

    #[test]
    fn iterations_done_counts_completed() {
        let r = report();
        assert_eq!(r.iterations_done_at(SimTime::from_secs_f64(0.5)), 0);
        assert_eq!(r.iterations_done_at(SimTime::from_secs_f64(2.0)), 2);
        assert_eq!(r.iterations_done_at(SimTime::from_secs_f64(99.0)), 4);
    }

    #[test]
    fn slowdown_and_commit_interval() {
        let base = report();
        let mut slow = report();
        slow.throughput = 0.5;
        assert_eq!(slow.slowdown_vs(&base), 2.0);
        assert_eq!(base.mean_commit_interval(), 2.0);
    }
}

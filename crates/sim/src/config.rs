//! Simulation configuration: hardware profiles and strategy parameters.

use serde::{Deserialize, Serialize};

use pccheck_gpu::{GpuKind, ModelSpec};
use pccheck_util::{Bandwidth, ByteSize, SimDuration};

use crate::report::SimReport;
use crate::world::World;

/// Raw pd-ssd write bandwidth (GB/s). Calibrated so that (a) the
/// single-threaded torch.save path reproduces §1's 16 GB / 37 s
/// measurement via [`SINGLE_WRITER_FRACTION`], and (b) BLOOM-7B's 18 GB
/// shards sustain interval-10 checkpointing with N=2 concurrent
/// checkpoints at <2% overhead, as Figure 8f reports.
pub const SSD_RAW_GBPS: f64 = 1.5;

/// Fraction of device bandwidth one writer thread can sustain by itself:
/// 0.4324/1.5, anchoring the single-writer rate to §1's measured
/// 16 GB / 37 s. mmap-write syscall and serialization overheads keep a
/// single writer far from saturating the media; §5.4.2 shows 2–4 writers
/// are needed.
pub const SINGLE_WRITER_FRACTION: f64 = (16.0 / 37.0) / SSD_RAW_GBPS;

/// GPM's effective SSD efficiency: UVM kernel copies into an mmapped file
/// are very slow. Calibrated from §5.2.1's anchor — GPM at 1.9× slowdown
/// for OPT-1.3B at interval 50 implies ~0.18 GB/s effective (16.2 GB
/// stalling ~90 s per 100 s of compute).
pub const GPM_SSD_EFFICIENCY: f64 = 0.12;

/// GPM on PMEM: much closer to native (it was designed for this media;
/// Figure 10 shows it competitive at low frequencies).
pub const GPM_PMEM_EFFICIENCY: f64 = 0.5;

/// Fraction of the NIC available to Gemini's checkpoint transfers: the
/// checkpoint traffic interleaves with activation/gradient exchange
/// (§2.2), so only part of the measured 15 Gbps serves checkpoints.
/// Calibrated from §5.2.1's 1.65× slowdown for BLOOM-7B at interval 10.
pub const GEMINI_NETWORK_SHARE: f64 = 0.4;

/// The checkpointing strategy a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyCfg {
    /// Checkpoints cost nothing (the horizontal line in Figures 8–10).
    Ideal,
    /// Synchronous snapshot + persist on the training thread (Figure 3).
    Traditional,
    /// One asynchronous checkpoint at a time (Figure 4).
    CheckFreq,
    /// Stall-and-persist straight from GPU memory.
    Gpm,
    /// One asynchronous checkpoint at a time to remote DRAM.
    Gemini,
    /// PCcheck: `n` concurrent checkpoints, `p` writers each.
    PcCheck {
        /// Concurrent checkpoints (the paper's `N`).
        n: usize,
        /// Writer threads per checkpoint (the paper's `p`).
        p: usize,
        /// Pipelined chunk copy/persist (Figure 7) vs staged (Figure 6).
        pipelined: bool,
    },
}

impl StrategyCfg {
    /// PCcheck with pipelining on — the configuration the paper evaluates.
    pub fn pccheck(n: usize, p: usize) -> StrategyCfg {
        StrategyCfg::PcCheck {
            n,
            p,
            pipelined: true,
        }
    }

    /// Short name used in CSV output.
    pub fn name(&self) -> String {
        match self {
            StrategyCfg::Ideal => "ideal".into(),
            StrategyCfg::Traditional => "traditional".into(),
            StrategyCfg::CheckFreq => "checkfreq".into(),
            StrategyCfg::Gpm => "gpm".into(),
            StrategyCfg::Gemini => "gemini".into(),
            StrategyCfg::PcCheck { n, p, pipelined } => {
                if *pipelined {
                    format!("pccheck-{n}-{p}")
                } else {
                    format!("pccheck-{n}-{p}-nopipe")
                }
            }
        }
    }
}

/// The storage media a simulation persists to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediaKind {
    /// GCP `pd-ssd` (or any mmap+msync disk).
    Ssd,
    /// Intel Optane PMEM, nt-store path.
    Pmem,
    /// Remote DRAM over the network (Gemini's media).
    Network,
}

/// Full configuration of one simulated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Human-readable workload label.
    pub label: String,
    /// Iteration time `t`.
    pub iter_time: SimDuration,
    /// Per-node checkpoint size `m` (the shard, for distributed models).
    pub checkpoint_size: ByteSize,
    /// Checkpoint every `interval` iterations.
    pub interval: u64,
    /// Iterations to simulate.
    pub iterations: u64,
    /// Strategy under test.
    pub strategy: StrategyCfg,
    /// PCIe bandwidth (GPU→DRAM copies).
    pub pcie_bandwidth: Bandwidth,
    /// Storage (or network) bandwidth.
    pub storage_bandwidth: Bandwidth,
    /// The media kind (selects per-writer caps and GPM efficiency).
    pub media: MediaKind,
    /// PCcheck DRAM chunk size `b`.
    pub chunk_size: ByteSize,
    /// PCcheck DRAM pool size in chunks `c`.
    pub dram_chunks: usize,
    /// Device topology: number of RAID-0 stripe members. 1 = a single
    /// device; N > 1 aggregates N devices of `storage_bandwidth` each
    /// (the concrete counterpart is `pccheck_device::StripedDevice`).
    #[serde(default = "default_stripe_ways")]
    pub stripe_ways: u32,
}

fn default_stripe_ways() -> u32 {
    1
}

impl SimConfig {
    /// The paper's SSD/A100 testbed for `model`, checkpointing every
    /// `interval` iterations for `iterations` iterations. PCcheck knobs
    /// default to §3.4's guidance (b scaled to the checkpoint: ~1/20th,
    /// DRAM pool 2·m).
    pub fn ssd_a100(model: &ModelSpec, interval: u64, iterations: u64) -> Self {
        let shard = model.shard_size();
        let chunk = ByteSize::from_bytes((shard.as_u64() / 20).clamp(1, 500 * 1024 * 1024));
        SimConfig {
            label: model.name.to_string(),
            iter_time: model.iter_time(GpuKind::A100),
            checkpoint_size: shard,
            interval,
            iterations,
            strategy: StrategyCfg::pccheck(2, 3),
            pcie_bandwidth: GpuKind::A100.pcie_bandwidth(),
            storage_bandwidth: Bandwidth::from_gb_per_sec(SSD_RAW_GBPS),
            media: MediaKind::Ssd,
            chunk_size: chunk,
            dram_chunks: 40, // 2·m worth of chunks at m/20 per chunk
            stripe_ways: 1,
        }
    }

    /// The Azure H100/NVMe variant of SS5.2.1 ("the iteration time was
    /// halved, and the disk bandwidth doubled"): same workload, faster
    /// everything, same qualitative patterns.
    pub fn nvme_h100(model: &ModelSpec, interval: u64, iterations: u64) -> Self {
        let mut cfg = Self::ssd_a100(model, interval, iterations);
        cfg.iter_time = model.iter_time(GpuKind::H100);
        cfg.pcie_bandwidth = GpuKind::H100.pcie_bandwidth();
        cfg.storage_bandwidth = Bandwidth::from_gb_per_sec(2.0 * SSD_RAW_GBPS);
        cfg
    }

    /// The PMEM/TitanRTX testbed (Figure 10).
    pub fn pmem_rtx(model: &ModelSpec, interval: u64, iterations: u64) -> Self {
        let mut cfg = Self::ssd_a100(model, interval, iterations);
        cfg.iter_time = model.iter_time(GpuKind::TitanRtx);
        cfg.pcie_bandwidth = GpuKind::TitanRtx.pcie_bandwidth();
        cfg.storage_bandwidth = Bandwidth::from_gb_per_sec(4.01);
        cfg.media = MediaKind::Pmem;
        cfg
    }

    /// Gemini's network media on the same workload: the 15 Gbps NIC,
    /// discounted by the share training traffic leaves for checkpoints.
    pub fn gemini_network(model: &ModelSpec, interval: u64, iterations: u64) -> Self {
        let mut cfg = Self::ssd_a100(model, interval, iterations);
        cfg.storage_bandwidth = Bandwidth::from_gbit_per_sec(15.0).scaled(GEMINI_NETWORK_SHARE);
        cfg.media = MediaKind::Network;
        cfg.strategy = StrategyCfg::Gemini;
        cfg
    }

    /// Replaces the strategy (Gemini automatically switches the media to
    /// the network profile).
    pub fn with_strategy(mut self, strategy: StrategyCfg) -> Self {
        self.strategy = strategy;
        if matches!(strategy, StrategyCfg::Gemini) {
            self.storage_bandwidth =
                Bandwidth::from_gbit_per_sec(15.0).scaled(GEMINI_NETWORK_SHARE);
            self.media = MediaKind::Network;
        }
        self
    }

    /// Replaces the checkpoint interval.
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Stripes the storage across `ways` identical devices (RAID-0).
    pub fn with_stripe_ways(mut self, ways: u32) -> Self {
        self.stripe_ways = ways.max(1);
        self
    }

    /// Aggregate media bandwidth across all stripe members.
    /// `storage_bandwidth` stays per-member so hardware profiles keep
    /// their calibrated single-device numbers.
    pub fn effective_storage_bandwidth(&self) -> Bandwidth {
        self.storage_bandwidth
            .scaled(self.stripe_ways.max(1) as f64)
    }

    /// The per-writer-thread bandwidth cap for this media (none for the
    /// network: one TCP stream saturates the NIC).
    pub fn per_writer_cap(&self) -> Option<Bandwidth> {
        match self.media {
            MediaKind::Ssd | MediaKind::Pmem => {
                Some(self.storage_bandwidth.scaled(SINGLE_WRITER_FRACTION))
            }
            MediaKind::Network => None,
        }
    }

    /// GPM's effective copy efficiency on this media.
    pub fn gpm_efficiency(&self) -> f64 {
        match self.media {
            MediaKind::Ssd => GPM_SSD_EFFICIENCY,
            MediaKind::Pmem => GPM_PMEM_EFFICIENCY,
            MediaKind::Network => 1.0,
        }
    }

    /// Runs the simulation to completion.
    pub fn run(self) -> SimReport {
        World::new(self).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_gpu::ModelZoo;

    #[test]
    fn ssd_profile_matches_testbed() {
        let cfg = SimConfig::ssd_a100(&ModelZoo::opt_1_3b(), 10, 100);
        assert_eq!(cfg.iter_time, SimDuration::from_secs(2));
        // Raw device rate; the per-writer cap reproduces the paper's
        // measured single-threaded 16 GB / 37 s.
        assert!((cfg.storage_bandwidth.as_gb_per_sec() - 1.5).abs() < 1e-9);
        assert!((cfg.per_writer_cap().unwrap().as_gb_per_sec() - 0.4324).abs() < 1e-3);
        assert_eq!(cfg.media, MediaKind::Ssd);
        assert!((cfg.checkpoint_size.as_gb() - 16.2).abs() < 1e-9);
    }

    #[test]
    fn distributed_models_use_shards() {
        let cfg = SimConfig::ssd_a100(&ModelZoo::bloom_7b(), 10, 100);
        assert!((cfg.checkpoint_size.as_gb() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn pmem_profile_is_faster_storage_slower_gpu() {
        let ssd = SimConfig::ssd_a100(&ModelZoo::bert(), 10, 100);
        let pmem = SimConfig::pmem_rtx(&ModelZoo::bert(), 10, 100);
        assert!(pmem.storage_bandwidth > ssd.storage_bandwidth);
        assert!(pmem.iter_time > ssd.iter_time);
        assert_eq!(pmem.media, MediaKind::Pmem);
    }

    #[test]
    fn gemini_switches_media() {
        let cfg =
            SimConfig::ssd_a100(&ModelZoo::bloom_7b(), 10, 100).with_strategy(StrategyCfg::Gemini);
        assert_eq!(cfg.media, MediaKind::Network);
        assert!(cfg.per_writer_cap().is_none());
        // 40% of 15 Gbps.
        assert!((cfg.storage_bandwidth.as_bytes_per_sec() - 0.4 * 1.875e9).abs() < 1e3);
    }

    #[test]
    fn per_writer_cap_is_half_the_device() {
        let cfg = SimConfig::ssd_a100(&ModelZoo::vgg16(), 10, 100);
        let cap = cfg.per_writer_cap().unwrap();
        assert!(
            (cap.as_bytes_per_sec()
                - cfg.storage_bandwidth.as_bytes_per_sec() * SINGLE_WRITER_FRACTION)
                .abs()
                < 1.0
        );
    }

    #[test]
    fn strategy_names_for_csv() {
        assert_eq!(StrategyCfg::Ideal.name(), "ideal");
        assert_eq!(StrategyCfg::pccheck(2, 3).name(), "pccheck-2-3");
        assert_eq!(
            StrategyCfg::PcCheck {
                n: 1,
                p: 1,
                pipelined: false
            }
            .name(),
            "pccheck-1-1-nopipe"
        );
    }

    #[test]
    fn stripe_ways_scales_aggregate_not_per_member() {
        let cfg = SimConfig::ssd_a100(&ModelZoo::opt_1_3b(), 10, 100);
        assert_eq!(cfg.stripe_ways, 1);
        assert!(
            (cfg.effective_storage_bandwidth().as_gb_per_sec()
                - cfg.storage_bandwidth.as_gb_per_sec())
            .abs()
                < 1e-12
        );
        let striped = cfg.clone().with_stripe_ways(4);
        // Per-member profile number untouched; aggregate ×4.
        assert!((striped.storage_bandwidth.as_gb_per_sec() - 1.5).abs() < 1e-9);
        assert!((striped.effective_storage_bandwidth().as_gb_per_sec() - 6.0).abs() < 1e-9);
        // Per-writer cap derives from the member, not the aggregate.
        assert_eq!(striped.per_writer_cap(), cfg.per_writer_cap());
        // Zero clamps to a single device rather than dividing by zero.
        assert_eq!(cfg.with_stripe_ways(0).stripe_ways, 1);
    }

    #[test]
    fn stripe_ways_serde_default_is_single_device() {
        // Configs serialized before the knob existed deserialize with the
        // `#[serde(default)]` below; pin the default it resolves to.
        assert_eq!(super::default_stripe_ways(), 1);
    }

    #[test]
    fn gpm_efficiency_by_media() {
        let ssd = SimConfig::ssd_a100(&ModelZoo::bert(), 10, 100);
        let pmem = SimConfig::pmem_rtx(&ModelZoo::bert(), 10, 100);
        assert!(ssd.gpm_efficiency() < pmem.gpm_efficiency());
    }
}

//! Fluid (processor-sharing) resources.
//!
//! A storage device or PCIe link serves several in-flight transfers at
//! once; to first order each active transfer receives an equal share of
//! the bandwidth. That is the mechanism behind the paper's saturation
//! observations (§5.4.1: more than ~4 concurrent checkpoints just split
//! the same SSD bandwidth). [`FluidResource`] implements this model with an
//! optional *per-job rate cap* expressing that a single writer thread
//! cannot saturate the device by itself — the reason PCcheck uses `p`
//! parallel writers per checkpoint (§5.4.2).

use pccheck_util::{Bandwidth, SimDuration, SimTime};

/// Identifier of a fluid job, assigned by the caller.
pub type JobId = u64;

#[derive(Debug, Clone, Copy)]
struct FluidJob {
    id: JobId,
    remaining: f64, // bytes
}

/// A bandwidth resource shared equally among in-flight jobs.
///
/// # Examples
///
/// ```
/// use pccheck_sim::FluidResource;
/// use pccheck_util::{Bandwidth, ByteSize, SimTime, SimDuration};
///
/// let mut r = FluidResource::new(Bandwidth::from_bytes_per_sec(100.0), None);
/// r.add_job(1, ByteSize::from_bytes(100), SimTime::ZERO);
/// r.add_job(2, ByteSize::from_bytes(100), SimTime::ZERO);
/// // Two jobs share 100 B/s → 50 B/s each → both complete at t=2s.
/// let t = r.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(2));
/// ```
#[derive(Debug, Clone)]
pub struct FluidResource {
    rate: f64,
    per_job_cap: Option<f64>,
    jobs: Vec<FluidJob>,
    last_update: SimTime,
}

impl FluidResource {
    /// Creates a resource with aggregate bandwidth `rate` and an optional
    /// per-job cap (a single job can never exceed the cap even when alone).
    pub fn new(rate: Bandwidth, per_job_cap: Option<Bandwidth>) -> Self {
        FluidResource {
            rate: rate.as_bytes_per_sec(),
            per_job_cap: per_job_cap.map(Bandwidth::as_bytes_per_sec),
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
        }
    }

    /// Number of in-flight jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Bytes/sec each in-flight job currently receives.
    pub fn rate_per_job(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let share = self.rate / self.jobs.len() as f64;
        match self.per_job_cap {
            Some(cap) => share.min(cap),
            None => share,
        }
    }

    /// Adds a job of `size` bytes at time `now` (advancing internal
    /// bookkeeping first).
    ///
    /// # Panics
    ///
    /// Panics if `id` is already in flight.
    pub fn add_job(&mut self, id: JobId, size: pccheck_util::ByteSize, now: SimTime) {
        self.advance_to(now);
        assert!(
            self.jobs.iter().all(|j| j.id != id),
            "job {id} already in flight"
        );
        self.jobs.push(FluidJob {
            id,
            remaining: size.as_u64() as f64,
        });
    }

    /// Advances all jobs to time `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            let r = self.rate_per_job();
            for j in &mut self.jobs {
                j.remaining = (j.remaining - r * dt).max(0.0);
            }
        }
        self.last_update = self.last_update.max(now);
    }

    /// Bytes below which a job counts as finished: sub-byte dust plus
    /// whatever the resource moves in ~2 ns. Without this slack, rounding
    /// completion times to nanoseconds can leave a residue that never
    /// drains (a zero-length timestep → simulation livelock).
    fn epsilon_bytes(&self) -> f64 {
        self.rate_per_job() * 2e-9 + 0.5
    }

    /// The earliest time any in-flight job completes, assuming the job set
    /// does not change before then. Guaranteed to be strictly after `now`
    /// unless a job is already reapable at `now`.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.jobs.is_empty() {
            return None;
        }
        let already = now.saturating_since(self.last_update).as_secs_f64();
        let r = self.rate_per_job();
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_remaining <= self.epsilon_bytes() {
            return Some(now);
        }
        let secs = ((min_remaining / r) - already).max(0.0);
        let t = now + SimDuration::from_secs_f64(secs);
        Some(if t <= now {
            now + SimDuration::from_nanos(1)
        } else {
            t
        })
    }

    /// Removes and returns the ids of jobs that have finished by `now`.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance_to(now);
        let eps = self.epsilon_bytes();
        let mut done = Vec::new();
        self.jobs.retain(|j| {
            if j.remaining <= eps {
                done.push(j.id);
                false
            } else {
                true
            }
        });
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_util::ByteSize;

    fn bw(b: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(b)
    }

    #[test]
    fn single_job_runs_at_full_rate() {
        let mut r = FluidResource::new(bw(100.0), None);
        r.add_job(1, ByteSize::from_bytes(200), SimTime::ZERO);
        let t = r.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs_f64(2.0));
        assert_eq!(r.take_completed(t), vec![1]);
        assert_eq!(r.active_jobs(), 0);
        assert!(r.next_completion(t).is_none());
    }

    #[test]
    fn sharing_halves_the_rate() {
        let mut r = FluidResource::new(bw(100.0), None);
        r.add_job(1, ByteSize::from_bytes(100), SimTime::ZERO);
        r.add_job(2, ByteSize::from_bytes(300), SimTime::ZERO);
        // Job 1 finishes at t=2 (50 B/s each)...
        let t1 = r.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t1, SimTime::from_secs_f64(2.0));
        assert_eq!(r.take_completed(t1), vec![1]);
        // ...then job 2 gets full rate: 200 bytes left / 100 B/s = 2 s more.
        let t2 = r.next_completion(t1).unwrap();
        assert_eq!(t2, SimTime::from_secs_f64(4.0));
        assert_eq!(r.take_completed(t2), vec![2]);
    }

    #[test]
    fn per_job_cap_limits_single_writer() {
        let mut r = FluidResource::new(bw(100.0), Some(bw(40.0)));
        r.add_job(1, ByteSize::from_bytes(80), SimTime::ZERO);
        // Alone but capped at 40 B/s: 2 s.
        assert_eq!(
            r.next_completion(SimTime::ZERO).unwrap(),
            SimTime::from_secs_f64(2.0)
        );
        // Three jobs: share = 33.3 < cap → sharing dominates.
        r.add_job(2, ByteSize::from_bytes(80), SimTime::ZERO);
        r.add_job(3, ByteSize::from_bytes(80), SimTime::ZERO);
        assert!((r.rate_per_job() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_existing_job() {
        let mut r = FluidResource::new(bw(100.0), None);
        r.add_job(1, ByteSize::from_bytes(200), SimTime::ZERO);
        // At t=1, job 1 has 100 bytes left; job 2 arrives.
        let t_mid = SimTime::from_secs_f64(1.0);
        r.add_job(2, ByteSize::from_bytes(100), t_mid);
        // Both now at 50 B/s; both finish at t=3.
        let t = r.next_completion(t_mid).unwrap();
        assert_eq!(t, SimTime::from_secs_f64(3.0));
        let mut done = r.take_completed(t);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn zero_size_job_completes_immediately() {
        let mut r = FluidResource::new(bw(10.0), None);
        r.add_job(1, ByteSize::ZERO, SimTime::ZERO);
        assert_eq!(r.next_completion(SimTime::ZERO), Some(SimTime::ZERO));
        assert_eq!(r.take_completed(SimTime::ZERO), vec![1]);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn duplicate_job_id_panics() {
        let mut r = FluidResource::new(bw(10.0), None);
        r.add_job(1, ByteSize::from_bytes(10), SimTime::ZERO);
        r.add_job(1, ByteSize::from_bytes(10), SimTime::ZERO);
    }

    #[test]
    fn aggregate_throughput_is_conserved() {
        // 4 equal jobs on an uncapped resource finish exactly when one job
        // of 4x the size would.
        let mut shared = FluidResource::new(bw(100.0), None);
        for id in 0..4 {
            shared.add_job(id, ByteSize::from_bytes(250), SimTime::ZERO);
        }
        let t = shared.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs_f64(10.0));
        assert_eq!(shared.take_completed(t).len(), 4);
    }
}

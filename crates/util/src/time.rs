//! Virtual time for the discrete-event simulator.
//!
//! [`SimTime`] is an absolute instant on the simulated clock; [`SimDuration`]
//! is a span between instants. Both are nanosecond-resolution `u64`s, which
//! gives ~584 years of simulated range — far beyond the 16-hour preemption
//! traces the experiments replay.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time (nanosecond resolution).
///
/// # Examples
///
/// ```
/// use pccheck_util::SimDuration;
/// let iter_time = SimDuration::from_millis(60); // VGG16 iteration (§5.2.3)
/// assert_eq!((iter_time * 100).as_secs_f64(), 6.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "duration overflow: {secs} s");
        SimDuration(ns.round() as u64)
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// The minimum of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The maximum of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiplies by a non-negative float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Converts to a real [`std::time::Duration`] (used when a concrete
    /// engine sleeps to emulate modeled latency).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3} us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

/// An absolute instant on the simulated clock.
///
/// `SimTime` only supports operations that keep "instant" and "duration"
/// distinct: instants differ by durations, durations add to instants.
///
/// # Examples
///
/// ```
/// use pccheck_util::{SimDuration, SimTime};
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(5);
/// assert_eq!(t1 - t0, SimDuration::from_secs(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from fractional seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant, saturating at zero if `earlier` is
    /// actually later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos())
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(1);
        assert_eq!(a + b, SimDuration::from_secs(4));
        assert_eq!(a - b, SimDuration::from_secs(2));
        assert_eq!(a * 2, SimDuration::from_secs(6));
        assert_eq!(a / 3, SimDuration::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_millis(1500));
        let total: SimDuration = vec![a, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_secs(4));
    }

    #[test]
    fn instant_duration_algebra() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1 - t0, SimDuration::from_nanos(50));
        assert_eq!(t1 - SimDuration::from_nanos(150), SimTime::ZERO);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_pick_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5 ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000 us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000 ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000 s");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.0)), "t+1.000000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_rejected() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(3),
                SimTime::from_nanos(5)
            ]
        );
    }
}

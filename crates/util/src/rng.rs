//! Deterministic RNG construction.
//!
//! Every stochastic component (synthetic preemption traces, workload
//! payloads, property tests' fixtures) derives its generator from an explicit
//! seed through this module, so any experiment can be replayed exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = pccheck_util::rng::seeded(42);
/// let mut b = pccheck_util::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Components that need independent streams (e.g., each node in a distributed
/// run) use the same parent seed with distinct labels, keeping the whole
/// experiment reproducible from one number.
///
/// # Examples
///
/// ```
/// let a = pccheck_util::rng::derive_seed(1, "node-0");
/// let b = pccheck_util::rng::derive_seed(1, "node-1");
/// assert_ne!(a, b);
/// assert_eq!(a, pccheck_util::rng::derive_seed(1, "node-0"));
/// ```
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent via splitmix-style finalizer.
    let h = crate::fnv::fnv1a(label.as_bytes());
    let mut z = parent ^ h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fills `buf` with deterministic pseudo-random bytes from `seed`.
///
/// Used to give checkpoint tensors verifiable content without storing a
/// reference copy.
pub fn fill_deterministic(buf: &mut [u8], seed: u64) {
    let mut rng = seeded(seed);
    rng.fill(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let s1 = derive_seed(99, "trace");
        let s2 = derive_seed(99, "trace");
        let s3 = derive_seed(99, "workload");
        let s4 = derive_seed(100, "trace");
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, s4);
    }

    #[test]
    fn fill_deterministic_is_stable() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_deterministic(&mut a, 5);
        fill_deterministic(&mut b, 5);
        assert_eq!(a, b);
        let mut c = [0u8; 64];
        fill_deterministic(&mut c, 6);
        assert_ne!(a, c);
    }
}

//! A minimal dependency-free JSON reader.
//!
//! The workspace emits all of its JSON by hand (telemetry exporters, bench
//! artifacts, profile summaries) and deliberately avoids a serialization
//! stack; this module is the matching *reader* so the profile differ can
//! load archived `pccheck.profile.v1` artifacts and the test suite can
//! validate exporter output for well-formedness — the role `serde_json`
//! would play in a dependency-heavy workspace.
//!
//! The parser is a strict recursive-descent implementation of RFC 8259:
//! objects, arrays, strings (with `\uXXXX` escapes and surrogate pairs),
//! numbers (held as `f64`), booleans, `null`. Object keys keep insertion
//! order. Nesting depth is bounded so adversarial inputs cannot blow the
//! stack.
//!
//! ```
//! use pccheck_util::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"phase":"persist","nanos":1500,"ok":true}"#).unwrap();
//! assert_eq!(v.get("phase").and_then(|p| p.as_str()), Some("persist"));
//! assert_eq!(v.get("nanos").and_then(|n| n.as_u64()), Some(1500));
//! ```

use std::fmt;

/// Maximum object/array nesting the parser accepts.
const MAX_DEPTH: usize = 128;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep source order and may repeat keys (lookup
    /// returns the first).
    Object(Vec<(String, JsonValue)>),
}

/// Parse failure: a message plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            v = (v << 4) | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-1.5e3").unwrap(),
            JsonValue::Number(-1500.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn containers_parse_and_navigate() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b").and_then(|b| b.as_str()), Some("c"));
        assert!(v.get("d").unwrap().get("e").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA\u{e9}"));
        // Surrogate pair: U+1F600.
        let v = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Raw multibyte passthrough.
        let v = JsonValue::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn numbers_convert() {
        assert_eq!(JsonValue::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(JsonValue::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-7").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("7.5").unwrap().as_f64(), Some(7.5));
        assert_eq!(JsonValue::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"unterminated",
            "[1] trailing",
            "\"\u{1}\"",
            "{'a':1}",
            "+1",
            "--1",
            "[1 2]",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let err = JsonValue::parse("[1,,2]").unwrap_err();
        assert!(err.offset > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_return_first() {
        let v = JsonValue::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(|k| k.as_u64()), Some(1));
    }

    #[test]
    fn whitespace_everywhere() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}

//! Token-bucket bandwidth throttling for the concrete (real-thread) engines.
//!
//! The simulated SSD/PMEM/PCIe devices in `pccheck-device` share a
//! [`TokenBucket`] per physical resource. Each writer thread acquires tokens
//! (bytes) before its write proceeds; when the bucket is dry the thread
//! blocks, which reproduces bandwidth contention between concurrent
//! checkpoints on real hardware.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::units::{Bandwidth, ByteSize};

#[derive(Debug)]
struct BucketState {
    /// Tokens (bytes) currently available.
    available: f64,
    /// Last refill timestamp.
    last_refill: Instant,
}

/// A thread-safe token bucket metering bytes at a configured bandwidth.
///
/// Capacity is bounded (one "burst" worth of tokens) so long idle periods do
/// not bank unbounded credit.
///
/// # Examples
///
/// ```
/// use pccheck_util::{Bandwidth, ByteSize, TokenBucket};
/// // A fast bucket: 1 GB/s, so 1 MB acquires essentially instantly.
/// let bucket = TokenBucket::new(Bandwidth::from_gb_per_sec(1.0));
/// bucket.acquire(ByteSize::from_mb_u64(1));
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst: f64,
    state: Mutex<BucketState>,
    cond: Condvar,
}

impl TokenBucket {
    /// Default burst window: the bucket can hold this many seconds of tokens.
    const BURST_WINDOW_SECS: f64 = 0.010;

    /// Creates a bucket refilling at `rate`, with a 10 ms burst capacity.
    pub fn new(rate: Bandwidth) -> Self {
        Self::with_burst_window(rate, Self::BURST_WINDOW_SECS)
    }

    /// Creates a bucket with an explicit burst window in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not strictly positive and finite.
    pub fn with_burst_window(rate: Bandwidth, window_secs: f64) -> Self {
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "invalid burst window {window_secs}"
        );
        let burst = rate.as_bytes_per_sec() * window_secs;
        TokenBucket {
            rate,
            burst: burst.max(1.0),
            state: Mutex::new(BucketState {
                available: burst.max(1.0),
                last_refill: Instant::now(),
            }),
            cond: Condvar::new(),
        }
    }

    /// The configured refill rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Blocks until `size` bytes of tokens have been consumed.
    ///
    /// Requests larger than the burst capacity are consumed in slices, so a
    /// huge write cannot monopolize the bucket: other threads interleave at
    /// burst granularity, giving processor-sharing-like fairness.
    pub fn acquire(&self, size: ByteSize) {
        let mut remaining = size.as_u64() as f64;
        while remaining > 0.0 {
            let want = remaining.min(self.burst);
            self.acquire_slice(want);
            remaining -= want;
        }
    }

    fn acquire_slice(&self, want: f64) {
        let mut state = self.state.lock();
        loop {
            self.refill(&mut state);
            if state.available >= want {
                state.available -= want;
                // Wake another waiter: tokens may remain for smaller requests.
                self.cond.notify_one();
                return;
            }
            let deficit = want - state.available;
            let wait_secs = deficit / self.rate.as_bytes_per_sec();
            let timeout = Duration::from_secs_f64(wait_secs.clamp(1e-6, 0.050));
            self.cond.wait_for(&mut state, timeout);
        }
    }

    fn refill(&self, state: &mut BucketState) {
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        if elapsed > 0.0 {
            state.available =
                (state.available + elapsed * self.rate.as_bytes_per_sec()).min(self.burst);
            state.last_refill = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_blocks_to_enforce_rate() {
        // 10 MB/s bucket; acquiring 2 MB beyond the burst should take ~0.2 s.
        let bucket = TokenBucket::new(Bandwidth::from_mb_per_sec(10.0));
        let start = Instant::now();
        bucket.acquire(ByteSize::from_mb_u64(2));
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.1, "finished too fast: {elapsed}s");
        assert!(elapsed < 1.0, "took far too long: {elapsed}s");
    }

    #[test]
    fn small_acquires_within_burst_are_fast() {
        let bucket = TokenBucket::new(Bandwidth::from_gb_per_sec(1.0));
        let start = Instant::now();
        bucket.acquire(ByteSize::from_kb(64));
        assert!(start.elapsed().as_secs_f64() < 0.05);
    }

    #[test]
    fn concurrent_acquirers_share_bandwidth() {
        // Two threads each pulling 1 MB from a 10 MB/s bucket: total 2 MB
        // must take ~0.2 s, no matter the interleaving.
        let bucket = Arc::new(TokenBucket::new(Bandwidth::from_mb_per_sec(10.0)));
        let start = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&bucket);
                std::thread::spawn(move || b.acquire(ByteSize::from_mb_u64(1)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.1, "contention not enforced: {elapsed}s");
        assert!(elapsed < 1.5, "deadlock-ish slowness: {elapsed}s");
    }

    #[test]
    fn zero_byte_acquire_is_noop() {
        let bucket = TokenBucket::new(Bandwidth::from_mb_per_sec(1.0));
        bucket.acquire(ByteSize::ZERO);
    }

    #[test]
    fn rate_accessor_round_trips() {
        let bucket = TokenBucket::new(Bandwidth::from_mb_per_sec(5.0));
        assert!((bucket.rate().as_gb_per_sec() - 5.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid burst window")]
    fn invalid_burst_window_rejected() {
        TokenBucket::with_burst_window(Bandwidth::from_mb_per_sec(1.0), 0.0);
    }
}

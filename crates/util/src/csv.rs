//! A minimal CSV writer for experiment output.
//!
//! The artifact scripts of the original paper emit one `.csv` per figure;
//! this module reproduces that workflow without pulling in a CSV dependency.
//! Fields containing commas, quotes or newlines are quoted per RFC 4180.

use std::fmt::Display;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes rows of an experiment result table as CSV.
///
/// # Examples
///
/// ```
/// use pccheck_util::CsvWriter;
/// let mut out = Vec::new();
/// {
///     let mut w = CsvWriter::new(&mut out, &["interval", "throughput"]);
///     w.row(&[&10, &0.95f64]).unwrap();
/// }
/// assert_eq!(String::from_utf8(out).unwrap(), "interval,throughput\n10,0.95\n");
/// ```
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    inner: W,
    columns: usize,
    header_written: bool,
    header: String,
}

impl CsvWriter<BufWriter<File>> {
    /// Creates a CSV file at `path` with the given header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create<P: AsRef<Path>>(path: P, header: &[&str]) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(CsvWriter::new(BufWriter::new(file), header))
    }
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a writer; the header row is emitted lazily before the first row.
    pub fn new(inner: W, header: &[&str]) -> Self {
        CsvWriter {
            inner,
            columns: header.len(),
            header_written: false,
            header: header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// Writes one row of display-formatted fields.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the number of fields differs from the header width.
    pub fn row(&mut self, fields: &[&dyn Display]) -> io::Result<()> {
        assert_eq!(
            fields.len(),
            self.columns,
            "row width {} != header width {}",
            fields.len(),
            self.columns
        );
        if !self.header_written {
            writeln!(self.inner, "{}", self.header)?;
            self.header_written = true;
        }
        let line = fields
            .iter()
            .map(|f| escape(&f.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(self.inner, "{line}")
    }

    /// Writes a row of raw string fields.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the number of fields differs from the header width.
    pub fn row_strs(&mut self, fields: &[&str]) -> io::Result<()> {
        let dyns: Vec<&dyn Display> = fields.iter().map(|f| f as &dyn Display).collect();
        self.row(&dyns)
    }

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.header_written {
            writeln!(self.inner, "{}", self.header)?;
            self.header_written = true;
        }
        self.inner.flush()
    }
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(f: impl FnOnce(&mut CsvWriter<&mut Vec<u8>>)) -> String {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf, &["a", "b"]);
            f(&mut w);
            w.flush().unwrap();
        }
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn writes_header_then_rows() {
        let out = render(|w| {
            w.row(&[&1, &"x"]).unwrap();
            w.row(&[&2, &"y"]).unwrap();
        });
        assert_eq!(out, "a,b\n1,x\n2,y\n");
    }

    #[test]
    fn header_written_even_without_rows() {
        let out = render(|_| {});
        assert_eq!(out, "a,b\n");
    }

    #[test]
    fn quotes_fields_with_commas_and_quotes() {
        let out = render(|w| {
            w.row_strs(&["hello, world", "say \"hi\""]).unwrap();
        });
        assert_eq!(out, "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        render(|w| {
            w.row(&[&1]).unwrap();
        });
    }

    #[test]
    fn create_writes_file() {
        let dir = std::env::temp_dir().join("pccheck-util-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        {
            let mut w = CsvWriter::create(&path, &["x"]).unwrap();
            w.row(&[&42]).unwrap();
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x\n42\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}

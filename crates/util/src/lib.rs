//! Shared primitives for the PCcheck reproduction.
//!
//! This crate hosts the small, dependency-light vocabulary types that every
//! other crate in the workspace speaks:
//!
//! * [`ByteSize`] — an exact byte count with human-readable formatting and
//!   GB/MB constructors matching the paper's units.
//! * [`Bandwidth`] — bytes/second with transfer-time arithmetic.
//! * [`SimTime`] / [`SimDuration`] — the virtual clock used by the
//!   discrete-event simulator (nanosecond resolution, totally ordered).
//! * [`stats`] — summary statistics (mean/stddev/percentiles) used when
//!   aggregating repeated experiment runs.
//! * [`csv`] — a tiny dependency-free CSV writer for experiment output.
//! * [`json`] — a tiny dependency-free JSON reader (the workspace emits
//!   JSON by hand; this is the matching parser for artifacts and tests).
//! * [`rng`] — deterministic seeded RNG construction so every experiment is
//!   reproducible bit-for-bit.
//! * [`throttle`] — a token-bucket rate limiter used by the concrete
//!   (real-thread) storage devices to model limited bandwidth.
//!
//! # Examples
//!
//! ```
//! use pccheck_util::{Bandwidth, ByteSize};
//!
//! // How long does a 16.2 GB OPT-1.3B checkpoint take on a ~0.44 GB/s SSD?
//! let ckpt = ByteSize::from_gb(16.2);
//! let ssd = Bandwidth::from_gb_per_sec(0.44);
//! let t = ssd.transfer_time(ckpt);
//! assert!(t.as_secs_f64() > 35.0 && t.as_secs_f64() < 39.0);
//! ```

pub mod csv;
pub mod fnv;
pub mod json;
pub mod rng;
pub mod stats;
pub mod throttle;
pub mod time;
pub mod units;

pub use csv::CsvWriter;
pub use fnv::{chunk_digest, fnv1a, fnv1a_fold, FNV_PRIME, FNV_SEED};
pub use json::{JsonError, JsonValue};
pub use stats::Summary;
pub use throttle::TokenBucket;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize};

//! Canonical FNV-1a digests shared across the workspace.
//!
//! One seed, one prime, three disciplines:
//!
//! - [`fnv1a`] / [`fnv1a_fold`]: byte-serial FNV-1a. This is the
//!   whole-payload checksum convention — checkpoint metadata CRCs, extent
//!   tables, and flight-record framing all fold with the same constants so
//!   a digest computed on the persist path verifies on the recovery path.
//! - [`chunk_digest`]: word-folding FNV-style mix, ~8× faster than the
//!   byte-serial form. Used wherever digest throughput bounds a hot loop:
//!   per-chunk restore verification (CDT1 tables) and the persist-path
//!   codec's content addresses. Only ever compared against digests
//!   produced by the same function.
//!
//! Every earlier crate carried its own copy of these loops; they are
//! hoisted here so the codec's content-addressed dedup index and the
//! digest tables are guaranteed to agree byte for byte.

/// FNV-1a seed, shared with the checkpoint metadata checksum.
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Folds `data` into a running FNV-1a state (start from [`FNV_SEED`]).
pub fn fnv1a_fold(mut h: u64, data: &[u8]) -> u64 {
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of `data` from the standard seed.
pub fn fnv1a(data: &[u8]) -> u64 {
    fnv1a_fold(FNV_SEED, data)
}

/// Fast per-chunk digest: FNV-style mix folding eight bytes per multiply
/// instead of one.
///
/// Restore verifies one digest per in-flight chunk *on the read path*, so
/// digest throughput bounds how much verification can overlap I/O —
/// byte-serial FNV-1a (~hundreds of MB/s) would make a multi-reader
/// restore CPU-bound on small hosts. This variant is ~8× faster and only
/// ever compared against digests produced by the same function (CDT1
/// digest tables, chunk-frame content addresses), so it needs no
/// compatibility with the whole-payload FNV-1a disciplines. The length is
/// mixed into the seed so a chunk and its zero-padded extension digest
/// differently.
pub fn chunk_digest(data: &[u8]) -> u64 {
    let mut h = FNV_SEED ^ (data.len() as u64);
    let words = data.len() / 8;
    for w in data[..words * 8].chunks_exact(8) {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte window"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    fnv1a_fold(h, &data[words * 8..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_composes() {
        assert_eq!(fnv1a(&[]), FNV_SEED);
        assert_eq!(fnv1a_fold(fnv1a(b"ab"), b"cd"), fnv1a(b"abcd"));
    }

    #[test]
    fn chunk_digest_mixes_length() {
        // A chunk and its zero-padded extension must not collide.
        let a = [7u8; 16];
        let b = [7u8; 24];
        assert_ne!(chunk_digest(&a[..16]), chunk_digest(&b[..24]));
        assert_ne!(chunk_digest(b""), chunk_digest(&[0u8]));
    }

    #[test]
    fn chunk_digest_covers_tail_bytes() {
        // Lengths that are not multiples of 8 still fold the tail.
        let mut a = [3u8; 13];
        let d0 = chunk_digest(&a);
        a[12] ^= 1;
        assert_ne!(chunk_digest(&a), d0);
    }

    #[test]
    fn known_vector_stability() {
        // Pinned vector: this digest discipline is baked into every
        // on-device format (meta CRCs, extent tables, flight records), so
        // the constant must never drift.
        assert_eq!(fnv1a(b"a"), 0xaf74_d84c_8601_ec8c);
    }
}

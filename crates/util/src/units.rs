//! Byte-size and bandwidth newtypes.
//!
//! The paper reasons in GB checkpoints and GB/s device bandwidths; these
//! newtypes keep the arithmetic exact (u64 bytes, f64 only at the edges) and
//! prevent unit confusion between "bytes", "bytes per second" and "seconds".

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// An exact byte count.
///
/// # Examples
///
/// ```
/// use pccheck_util::ByteSize;
/// let m = ByteSize::from_gb(1.1); // VGG16 checkpoint (Table 3)
/// assert_eq!(m.as_u64(), 1_181_116_006);
/// assert_eq!(format!("{m}"), "1.10 GB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

/// Number of bytes in one binary kilobyte.
pub const KIB: u64 = 1024;
/// Number of bytes in one binary megabyte.
pub const MIB: u64 = 1024 * KIB;
/// Number of bytes in one binary gigabyte.
pub const GIB: u64 = 1024 * MIB;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from an exact number of bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from binary kilobytes.
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * KIB)
    }

    /// Creates a size from binary megabytes.
    pub const fn from_mb_u64(mb: u64) -> Self {
        ByteSize(mb * MIB)
    }

    /// Creates a size from (possibly fractional) binary megabytes.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is negative or not finite.
    pub fn from_mb(mb: f64) -> Self {
        assert!(mb.is_finite() && mb >= 0.0, "invalid megabyte count {mb}");
        ByteSize((mb * MIB as f64).round() as u64)
    }

    /// Creates a size from (possibly fractional) binary gigabytes.
    ///
    /// # Panics
    ///
    /// Panics if `gb` is negative or not finite.
    pub fn from_gb(gb: f64) -> Self {
        assert!(gb.is_finite() && gb >= 0.0, "invalid gigabyte count {gb}");
        ByteSize((gb * GIB as f64).round() as u64)
    }

    /// Returns the exact byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte count as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `usize` (not possible on 64-bit
    /// targets).
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("byte count exceeds usize")
    }

    /// Returns the size in fractional binary megabytes.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Returns the size in fractional binary gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// Returns `true` if this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<ByteSize> {
        self.0.checked_mul(factor).map(ByteSize)
    }

    /// The minimum of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The maximum of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// Splits this size into `n` shards whose sizes differ by at most one
    /// byte and sum exactly to `self`.
    ///
    /// Used to partition a checkpoint across parallel writer threads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pccheck_util::ByteSize;
    /// let shards = ByteSize::from_bytes(10).split_even(3);
    /// assert_eq!(shards.iter().map(|s| s.as_u64()).sum::<u64>(), 10);
    /// assert_eq!(shards.len(), 3);
    /// ```
    pub fn split_even(self, n: usize) -> Vec<ByteSize> {
        assert!(n > 0, "cannot split into zero shards");
        let n64 = n as u64;
        let base = self.0 / n64;
        let rem = (self.0 % n64) as usize;
        (0..n)
            .map(|i| ByteSize(base + u64::from(i < rem)))
            .collect()
    }

    /// Number of chunks of size `chunk` needed to cover this size (ceiling
    /// division).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunks_of(self, chunk: ByteSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be nonzero");
        self.0.div_ceil(chunk.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2} GB", self.as_gb())
        } else if b >= MIB {
            write!(f, "{:.2} MB", self.as_mb())
        } else if b >= KIB {
            write!(f, "{:.2} KB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use pccheck_util::{Bandwidth, ByteSize};
/// // §3.3: non-temporal stores to PMEM reach 4.01 GB/s.
/// let nt = Bandwidth::from_gb_per_sec(4.01);
/// let t = nt.transfer_time(ByteSize::from_gb(4.0));
/// assert!((t.as_secs_f64() - 4.0 / 4.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not finite or not strictly positive.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth {bps}");
        Bandwidth(bps)
    }

    /// Creates a bandwidth from binary megabytes per second.
    pub fn from_mb_per_sec(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * MIB as f64)
    }

    /// Creates a bandwidth from binary gigabytes per second.
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * GIB as f64)
    }

    /// Creates a bandwidth from gigabits per second (network convention).
    ///
    /// # Examples
    ///
    /// ```
    /// use pccheck_util::Bandwidth;
    /// // §5.2.1: the measured inter-VM network bandwidth was 15 Gbps.
    /// let net = Bandwidth::from_gbit_per_sec(15.0);
    /// assert!((net.as_gb_per_sec() - 15.0 / 8.0 * 1e9 / (1u64 << 30) as f64).abs() < 1e-6);
    /// ```
    pub fn from_gbit_per_sec(gbitps: f64) -> Self {
        Self::from_bytes_per_sec(gbitps * 1e9 / 8.0)
    }

    /// Returns the rate in bytes per second.
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in binary gigabytes per second.
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / GIB as f64
    }

    /// Time to transfer `size` at this rate.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(size.as_u64() as f64 / self.0)
    }

    /// Bytes transferred in `dur` at this rate (floor).
    pub fn bytes_in(self, dur: SimDuration) -> ByteSize {
        ByteSize::from_bytes((self.0 * dur.as_secs_f64()).floor() as u64)
    }

    /// This bandwidth divided evenly among `n` concurrent streams
    /// (processor-sharing model).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shared_by(self, n: usize) -> Bandwidth {
        assert!(n > 0, "cannot share bandwidth among zero streams");
        Bandwidth(self.0 / n as f64)
    }

    /// Scales this bandwidth by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the result would be non-positive or non-finite.
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Self::from_bytes_per_sec(self.0 * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors_round_trip() {
        assert_eq!(ByteSize::from_kb(2).as_u64(), 2048);
        assert_eq!(ByteSize::from_mb_u64(3).as_u64(), 3 * MIB);
        assert_eq!(ByteSize::from_gb(1.0).as_u64(), GIB);
        assert!((ByteSize::from_gb(108.0).as_gb() - 108.0).abs() < 1e-9);
    }

    #[test]
    fn byte_size_display_picks_unit() {
        assert_eq!(format!("{}", ByteSize::from_bytes(12)), "12 B");
        assert_eq!(format!("{}", ByteSize::from_kb(4)), "4.00 KB");
        assert_eq!(format!("{}", ByteSize::from_mb_u64(100)), "100.00 MB");
        assert_eq!(format!("{}", ByteSize::from_gb(16.2)), "16.20 GB");
    }

    #[test]
    fn byte_size_arithmetic() {
        let a = ByteSize::from_bytes(100);
        let b = ByteSize::from_bytes(40);
        assert_eq!((a + b).as_u64(), 140);
        assert_eq!((a - b).as_u64(), 60);
        assert_eq!((a * 3).as_u64(), 300);
        assert_eq!((a / 3).as_u64(), 33);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        let total: ByteSize = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_u64(), 180);
    }

    #[test]
    fn split_even_covers_all_bytes() {
        for total in [0u64, 1, 7, 100, 1023, 1024, 1 << 20] {
            for n in 1..=9usize {
                let shards = ByteSize::from_bytes(total).split_even(n);
                assert_eq!(shards.len(), n);
                assert_eq!(shards.iter().map(|s| s.as_u64()).sum::<u64>(), total);
                let max = shards.iter().map(|s| s.as_u64()).max().unwrap();
                let min = shards.iter().map(|s| s.as_u64()).min().unwrap();
                assert!(max - min <= 1, "shards must be balanced");
            }
        }
    }

    #[test]
    fn chunks_of_is_ceiling_division() {
        let m = ByteSize::from_bytes(1000);
        assert_eq!(m.chunks_of(ByteSize::from_bytes(100)), 10);
        assert_eq!(m.chunks_of(ByteSize::from_bytes(999)), 2);
        assert_eq!(m.chunks_of(ByteSize::from_bytes(1000)), 1);
        assert_eq!(m.chunks_of(ByteSize::from_bytes(1001)), 1);
        assert_eq!(ByteSize::ZERO.chunks_of(ByteSize::from_bytes(10)), 0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be nonzero")]
    fn chunks_of_zero_chunk_panics() {
        ByteSize::from_bytes(10).chunks_of(ByteSize::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time_matches_paper_example() {
        // §1: a 16 GB OPT-1.3B checkpoint takes ~37 s on the pd-ssd.
        let ssd = Bandwidth::from_gb_per_sec(16.0 / 37.0);
        let t = ssd.transfer_time(ByteSize::from_gb(16.0));
        assert!((t.as_secs_f64() - 37.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_sharing_and_scaling() {
        let bw = Bandwidth::from_gb_per_sec(4.0);
        assert!((bw.shared_by(4).as_gb_per_sec() - 1.0).abs() < 1e-12);
        assert!((bw.scaled(0.5).as_gb_per_sec() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_bytes_in_duration() {
        let bw = Bandwidth::from_bytes_per_sec(1000.0);
        let b = bw.bytes_in(SimDuration::from_millis(1500));
        assert_eq!(b.as_u64(), 1500);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn zero_bandwidth_rejected() {
        Bandwidth::from_bytes_per_sec(0.0);
    }
}

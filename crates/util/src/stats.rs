//! Summary statistics for repeated experiment runs.
//!
//! The paper reports averages over three runs with standard deviation below
//! 0.2 (§5.1); [`Summary`] provides the same aggregation plus percentiles for
//! latency-shaped data (e.g., per-checkpoint persist times in Figure 11).

use std::fmt;

/// Summary statistics over a set of `f64` samples.
///
/// # Examples
///
/// ```
/// use pccheck_util::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    stddev: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Summary {
            sorted,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no samples (never true: construction
    /// requires at least one sample, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.stddev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pccheck_util::Summary;
    /// let s = Summary::from_samples(&[10.0, 20.0, 30.0, 40.0, 50.0]);
    /// assert_eq!(s.percentile(0.0), 10.0);
    /// assert_eq!(s.percentile(100.0), 50.0);
    /// assert_eq!(s.percentile(50.0), 30.0);
    /// ```
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} min={:.4} p50={:.4} max={:.4} (n={})",
            self.mean(),
            self.stddev(),
            self.min(),
            self.median(),
            self.max(),
            self.len()
        )
    }
}

/// Computes the geometric mean of strictly positive samples.
///
/// Useful when averaging slowdown ratios across models.
///
/// # Panics
///
/// Panics if `samples` is empty or any sample is not strictly positive.
///
/// # Examples
///
/// ```
/// use pccheck_util::stats::geometric_mean;
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "cannot average zero samples");
    assert!(
        samples.iter().all(|s| s.is_finite() && *s > 0.0),
        "geometric mean requires positive samples"
    );
    (samples.iter().map(|s| s.ln()).sum::<f64>() / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.percentile(99.0), 7.0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 2.0); // classic textbook example
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    #[should_panic(expected = "cannot summarize zero samples")]
    fn empty_samples_rejected() {
        Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "samples must be finite")]
    fn nan_samples_rejected() {
        Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn percentiles_are_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
                                    p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            xs.iter_mut().for_each(|x| *x = x.abs());
            let s = Summary::from_samples(&xs);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}

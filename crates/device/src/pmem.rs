//! Simulated persistent main memory (Intel Optane AppDirect / future CXL).
//!
//! §3.3 of the paper compares two write paths to PMEM: non-temporal stores
//! (bypassing the cache, 4.01 GB/s on their machine) and `clwb` cache
//! write-back (2.46 GB/s), each requiring a fence for persistence. §4.1
//! further notes the fence is *internal to each CPU*: the orchestrator
//! thread cannot fence stores issued by its worker threads, so every PMEM
//! writer must fence its own data.
//!
//! [`PmemDevice`] models both: stores are tracked per-thread until that
//! thread calls [`PmemDevice::sfence`]; only then do they become durable.
//! The generic [`PersistentDevice::persist`] maps to the calling thread's
//! fence, so the same engine code drives SSD and PMEM while honoring the
//! different persistence granularity.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::RwLock;

use pccheck_util::{Bandwidth, ByteSize, TokenBucket};

use crate::device::{DeviceConfig, DeviceStats, PersistentDevice};
use crate::error::DeviceError;
use crate::region::{CrashPolicy, MemRegion};
use crate::Result;

/// How stores reach the persistence domain (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PmemWriteMode {
    /// Non-temporal stores: bypass the cache, then `sfence`. The faster path
    /// for write-once checkpoint data (4.01 GB/s measured in the paper).
    #[default]
    NtStore,
    /// Regular stores plus `clwb` write-back, then `sfence` (2.46 GB/s).
    ClwbWriteBack,
}

impl PmemWriteMode {
    /// The paper-measured bandwidth for this write path.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            PmemWriteMode::NtStore => Bandwidth::from_gb_per_sec(4.01),
            PmemWriteMode::ClwbWriteBack => Bandwidth::from_gb_per_sec(2.46),
        }
    }
}

#[derive(Debug)]
struct PmemState {
    region: MemRegion,
    crashed: bool,
    /// Ranges stored but not yet fenced, per issuing thread.
    pending: HashMap<ThreadId, Vec<(u64, u64)>>,
}

/// Byte-addressable persistent memory with per-thread fence semantics.
///
/// # Examples
///
/// ```
/// use pccheck_device::{DeviceConfig, PersistentDevice, PmemDevice, PmemWriteMode};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck_device::DeviceError> {
/// let pmem = PmemDevice::new(
///     DeviceConfig::fast_for_tests(ByteSize::from_kb(4)),
///     PmemWriteMode::NtStore,
/// );
/// pmem.write_at(0, b"header")?; // nt-store
/// pmem.sfence()?;               // persistence fence for *this* thread
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PmemDevice {
    config: DeviceConfig,
    mode: PmemWriteMode,
    state: RwLock<PmemState>,
    bucket: Arc<TokenBucket>,
    stats: DeviceStats,
    crash_policy: CrashPolicy,
}

impl PmemDevice {
    /// Creates a PMEM device with the conservative crash policy.
    pub fn new(config: DeviceConfig, mode: PmemWriteMode) -> Self {
        Self::with_crash_policy(config, mode, CrashPolicy::DropUnpersisted)
    }

    /// Creates a PMEM device with an explicit crash policy.
    pub fn with_crash_policy(
        config: DeviceConfig,
        mode: PmemWriteMode,
        crash_policy: CrashPolicy,
    ) -> Self {
        let bucket = Arc::new(TokenBucket::new(config.write_bandwidth));
        PmemDevice {
            state: RwLock::new(PmemState {
                region: MemRegion::new(config.capacity),
                crashed: false,
                pending: HashMap::new(),
            }),
            bucket,
            stats: DeviceStats::default(),
            crash_policy,
            mode,
            config,
        }
    }

    /// Creates an Optane-profiled device for the given mode, with capacity.
    pub fn optane(capacity: ByteSize, mode: PmemWriteMode) -> Self {
        let config = DeviceConfig {
            capacity,
            write_bandwidth: mode.bandwidth(),
            throttled: true,
        };
        Self::new(config, mode)
    }

    /// The configured write path.
    pub fn mode(&self) -> PmemWriteMode {
        self.mode
    }

    /// Returns `true` if the device is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.state.read().crashed
    }

    /// Persistence fence for the calling thread: all of its earlier stores
    /// become durable. Matches `sfence` after nt-stores, or
    /// `clwb`-per-line + `sfence` for the write-back path.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Crashed`] while crashed.
    pub fn sfence(&self) -> Result<()> {
        let tid = std::thread::current().id();
        let mut state = self.state.write();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        if let Some(ranges) = state.pending.remove(&tid) {
            for (start, end) in ranges {
                state
                    .region
                    .persist(start, end - start)
                    .expect("pending range was bounds-checked at store time");
                self.stats.record_persist(end - start);
            }
        }
        Ok(())
    }

    /// Number of bytes stored by the calling thread but not yet fenced.
    pub fn unfenced_bytes(&self) -> ByteSize {
        let tid = std::thread::current().id();
        let state = self.state.read();
        ByteSize::from_bytes(
            state
                .pending
                .get(&tid)
                .map(|rs| rs.iter().map(|(s, e)| e - s).sum())
                .unwrap_or(0),
        )
    }
}

impl PersistentDevice for PmemDevice {
    fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    fn bandwidth(&self) -> Bandwidth {
        self.config.write_bandwidth
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let _ticket = self.submit();
        if self.config.throttled {
            self.bucket.acquire(ByteSize::from_bytes(data.len() as u64));
        }
        let tid = std::thread::current().id();
        let mut state = self.state.write();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        state.region.write(offset, data)?;
        if !data.is_empty() {
            state
                .pending
                .entry(tid)
                .or_default()
                .push((offset, offset + data.len() as u64));
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    /// For PMEM, persisting a range is only legal for the thread that wrote
    /// it; the fence completes *the calling thread's* stores. We implement
    /// the generic `persist` as an `sfence` for the caller — `offset`/`len`
    /// are validated but the fence covers all of the caller's pending
    /// stores, which is the actual hardware behavior.
    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        let _ticket = self.submit();
        // Bounds-validate so misuse is caught symmetrically with SSD.
        {
            let state = self.state.read();
            if offset
                .checked_add(len)
                .map_or(true, |end| end > state.region.capacity().as_u64())
            {
                return Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    capacity: state.region.capacity().as_u64(),
                });
            }
        }
        self.sfence()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let state = self.state.read();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        state.region.read(offset, buf)
    }

    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.state.read().region.read_durable(offset, buf)
    }

    fn crash_now(&self) {
        let mut state = self.state.write();
        if !state.crashed {
            state.crashed = true;
            state.pending.clear();
            let policy = self.crash_policy;
            state.region.crash(policy);
            self.stats.record_crash();
        }
    }

    fn recover(&self) {
        let mut state = self.state.write();
        state.crashed = false;
        state.pending.clear();
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(cap: u64, mode: PmemWriteMode) -> PmemDevice {
        PmemDevice::new(
            DeviceConfig::fast_for_tests(ByteSize::from_bytes(cap)),
            mode,
        )
    }

    #[test]
    fn nt_store_is_faster_than_clwb() {
        assert!(PmemWriteMode::NtStore.bandwidth() > PmemWriteMode::ClwbWriteBack.bandwidth());
        let nt = PmemDevice::optane(ByteSize::from_kb(4), PmemWriteMode::NtStore);
        assert!((nt.bandwidth().as_gb_per_sec() - 4.01).abs() < 1e-9);
        assert_eq!(nt.mode(), PmemWriteMode::NtStore);
    }

    #[test]
    fn stores_are_not_durable_until_fence() {
        let pmem = fast(4096, PmemWriteMode::NtStore);
        pmem.write_at(0, &[0x55; 64]).unwrap();
        assert_eq!(pmem.unfenced_bytes().as_u64(), 64);
        let mut buf = [0u8; 64];
        pmem.read_durable_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "not durable before fence");
        pmem.sfence().unwrap();
        assert_eq!(pmem.unfenced_bytes().as_u64(), 0);
        pmem.read_durable_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x55));
    }

    #[test]
    fn fence_only_covers_calling_thread() {
        let pmem = Arc::new(fast(4096, PmemWriteMode::NtStore));
        // A worker thread stores without fencing...
        {
            let pmem = Arc::clone(&pmem);
            std::thread::spawn(move || {
                pmem.write_at(100, &[0xAA; 32]).unwrap();
            })
            .join()
            .unwrap();
        }
        // ...then the main thread stores and fences its own data.
        pmem.write_at(200, &[0xBB; 32]).unwrap();
        pmem.sfence().unwrap();
        pmem.crash_now();
        let mut worker = [0u8; 32];
        pmem.read_durable_at(100, &mut worker).unwrap();
        assert!(
            worker.iter().all(|&b| b == 0),
            "main thread's fence must not persist the worker's stores (§4.1)"
        );
        let mut main = [0u8; 32];
        pmem.read_durable_at(200, &mut main).unwrap();
        assert!(main.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn each_thread_fencing_its_own_data_persists_everything() {
        let pmem = Arc::new(fast(4096, PmemWriteMode::NtStore));
        crossbeam::thread::scope(|s| {
            for i in 0..4u64 {
                let pmem = Arc::clone(&pmem);
                s.spawn(move |_| {
                    pmem.write_at(i * 512, &[i as u8 + 1; 512]).unwrap();
                    pmem.sfence().unwrap();
                });
            }
        })
        .unwrap();
        pmem.crash_now();
        for i in 0..4u64 {
            let mut buf = [0u8; 512];
            pmem.read_durable_at(i * 512, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8 + 1), "shard {i} durable");
        }
    }

    #[test]
    fn generic_persist_acts_as_fence() {
        let pmem = fast(1024, PmemWriteMode::ClwbWriteBack);
        pmem.write_at(0, &[1; 10]).unwrap();
        pmem.persist(0, 10).unwrap();
        let mut buf = [0u8; 10];
        pmem.read_durable_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn persist_validates_bounds() {
        let pmem = fast(16, PmemWriteMode::NtStore);
        assert!(matches!(
            pmem.persist(10, 10),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn crash_clears_pending_and_rejects_io() {
        let pmem = fast(1024, PmemWriteMode::NtStore);
        pmem.write_at(0, &[9; 8]).unwrap();
        pmem.crash_now();
        assert!(pmem.is_crashed());
        assert_eq!(pmem.write_at(0, &[1]), Err(DeviceError::Crashed));
        assert_eq!(pmem.sfence(), Err(DeviceError::Crashed));
        let mut buf = [0u8; 1];
        assert_eq!(pmem.read_at(0, &mut buf), Err(DeviceError::Crashed));
        pmem.recover();
        assert_eq!(pmem.unfenced_bytes(), ByteSize::ZERO);
        pmem.write_at(0, &[1]).unwrap();
    }

    #[test]
    fn adversarial_crash_may_persist_unfenced_lines() {
        // With RandomPartial, some unfenced lines survive — the recovery
        // algorithm must tolerate that (new data where it did not fence).
        let pmem = PmemDevice::with_crash_policy(
            DeviceConfig::fast_for_tests(ByteSize::from_kb(4)),
            PmemWriteMode::NtStore,
            CrashPolicy::RandomPartial { seed: 11 },
        );
        pmem.write_at(0, &[0xEE; 1024]).unwrap();
        pmem.crash_now();
        let mut buf = vec![0u8; 1024];
        pmem.read_durable_at(0, &mut buf).unwrap();
        let survived = buf.chunks(64).filter(|line| line[0] == 0xEE).count();
        assert!(survived > 0, "adversarial crash should leak some lines");
        assert!(survived < 16, "but not all of them (seed 11)");
    }
}

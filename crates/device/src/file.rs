//! A file-backed persistent device.
//!
//! Unlike [`SsdDevice`](crate::SsdDevice), whose "media" is an in-memory
//! durable view, [`FileDevice`] persists to a real file on disk:
//! checkpoint stores built on it survive process restarts, which is what a
//! downstream user of this library actually wants in production.
//!
//! Semantics mirror an mmapped file: writes land in a volatile overlay
//! (the page cache), and [`PersistentDevice::persist`] flushes the covered
//! ranges to the file and `sync_data`s it (the `msync` of §3.3). Injected
//! crashes drop the overlay, exactly like losing the page cache on a power
//! failure; the file contents — everything persisted so far — remain.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use pccheck_util::{Bandwidth, ByteSize, TokenBucket};

use crate::device::{DeviceConfig, DeviceStats, PersistentDevice};
use crate::error::DeviceError;
use crate::Result;

#[derive(Debug)]
struct FileState {
    /// The page-cache overlay: dirty ranges not yet flushed, coalesced.
    overlay: Vec<(u64, Vec<u8>)>,
    crashed: bool,
}

/// A device persisting to a real file.
///
/// # Examples
///
/// ```
/// use pccheck_device::{DeviceConfig, FileDevice, PersistentDevice};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("pccheck-filedevice-doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("store.img");
/// {
///     let dev = FileDevice::create(&path, DeviceConfig::fast_for_tests(ByteSize::from_kb(4)))?;
///     dev.write_at(0, b"survives the process")?;
///     dev.persist(0, 20)?;
/// }
/// // A new process (here: a new handle) sees the persisted bytes.
/// let dev = FileDevice::open(&path, DeviceConfig::fast_for_tests(ByteSize::from_kb(4)))?;
/// let mut buf = [0u8; 20];
/// dev.read_at(0, &mut buf)?;
/// assert_eq!(&buf, b"survives the process");
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileDevice {
    config: DeviceConfig,
    file: File,
    path: PathBuf,
    state: RwLock<FileState>,
    bucket: Arc<TokenBucket>,
    stats: DeviceStats,
}

impl FileDevice {
    /// Creates (or truncates) the backing file at `path`, sized to the
    /// configured capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Io`]-equivalent wrapped errors on filesystem
    /// failures (reported as `OutOfBounds` is never used here; I/O errors
    /// panic-free propagate via `std::io::Error` conversion below).
    pub fn create<P: AsRef<Path>>(path: P, config: DeviceConfig) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(config.capacity.as_u64())?;
        Ok(Self::from_file(file, path.as_ref().to_path_buf(), config))
    }

    /// Opens an existing backing file (the recovery path after a restart).
    ///
    /// # Errors
    ///
    /// Returns filesystem errors; fails if the file is smaller than the
    /// configured capacity.
    pub fn open<P: AsRef<Path>>(path: P, config: DeviceConfig) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len < config.capacity.as_u64() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("file holds {len} bytes < capacity {}", config.capacity),
            ));
        }
        Ok(Self::from_file(file, path.as_ref().to_path_buf(), config))
    }

    fn from_file(file: File, path: PathBuf, config: DeviceConfig) -> Self {
        let bucket = Arc::new(TokenBucket::new(config.write_bandwidth));
        FileDevice {
            file,
            path,
            state: RwLock::new(FileState {
                overlay: Vec::new(),
                crashed: false,
            }),
            bucket,
            stats: DeviceStats::default(),
            config,
        }
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        if offset
            .checked_add(len)
            .map_or(true, |end| end > self.config.capacity.as_u64())
        {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity: self.config.capacity.as_u64(),
            });
        }
        Ok(())
    }

    /// Applies overlay entries overlapping `[offset, offset+buf.len())` on
    /// top of file contents already read into `buf`.
    fn apply_overlay(overlay: &[(u64, Vec<u8>)], offset: u64, buf: &mut [u8]) {
        let end = offset + buf.len() as u64;
        for (o_start, data) in overlay {
            let o_end = o_start + data.len() as u64;
            let lo = offset.max(*o_start);
            let hi = end.min(o_end);
            if lo < hi {
                let src = &data[(lo - o_start) as usize..(hi - o_start) as usize];
                buf[(lo - offset) as usize..(hi - offset) as usize].copy_from_slice(src);
            }
        }
    }
}

impl PersistentDevice for FileDevice {
    fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    fn bandwidth(&self) -> Bandwidth {
        self.config.write_bandwidth
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, data.len() as u64)?;
        if self.config.throttled {
            self.bucket.acquire(ByteSize::from_bytes(data.len() as u64));
        }
        let mut state = self.state.write();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        state.overlay.push((offset, data.to_vec()));
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, len)?;
        let mut state = self.state.write();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        // Flush every overlay entry overlapping the range to the file, in
        // write order, then trim flushed entries. Partially overlapping
        // entries are flushed whole (msync works at page granularity; being
        // more durable than asked is always safe).
        let end = offset + len;
        let mut remaining = Vec::with_capacity(state.overlay.len());
        for (o_start, data) in state.overlay.drain(..) {
            let o_end = o_start + data.len() as u64;
            if o_start < end && offset < o_end {
                self.file
                    .write_all_at(&data, o_start)
                    .expect("backing file write");
            } else {
                remaining.push((o_start, data));
            }
        }
        state.overlay = remaining;
        self.file.sync_data().expect("backing file sync");
        self.stats.record_persist(len);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        let state = self.state.read();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        self.file
            .read_exact_at(buf, offset)
            .expect("backing file read");
        Self::apply_overlay(&state.overlay, offset, buf);
        Ok(())
    }

    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        self.file
            .read_exact_at(buf, offset)
            .expect("backing file read");
        Ok(())
    }

    fn crash_now(&self) {
        let mut state = self.state.write();
        if !state.crashed {
            state.crashed = true;
            state.overlay.clear(); // the page cache is gone
            self.stats.record_crash();
        }
    }

    fn recover(&self) {
        let mut state = self.state.write();
        state.crashed = false;
        state.overlay.clear();
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pccheck-filedev-{name}"));
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir
    }

    fn fast(cap: u64) -> DeviceConfig {
        DeviceConfig::fast_for_tests(ByteSize::from_bytes(cap))
    }

    #[test]
    fn write_persist_read_cycle() {
        let dir = tmpdir("cycle");
        let dev = FileDevice::create(dir.join("d.img"), fast(1024)).expect("create");
        dev.write_at(10, b"hello").expect("write");
        let mut buf = [0u8; 5];
        dev.read_at(10, &mut buf).expect("read");
        assert_eq!(&buf, b"hello", "volatile read sees overlay");
        dev.read_durable_at(10, &mut buf).expect("read durable");
        assert_eq!(&buf, &[0; 5], "not yet durable");
        dev.persist(10, 5).expect("persist");
        dev.read_durable_at(10, &mut buf).expect("read durable");
        assert_eq!(&buf, b"hello");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_drops_overlay_keeps_file() {
        let dir = tmpdir("crash");
        let dev = FileDevice::create(dir.join("d.img"), fast(256)).expect("create");
        dev.write_at(0, b"durable").expect("write");
        dev.persist(0, 7).expect("persist");
        dev.write_at(100, b"volatile").expect("write");
        dev.crash_now();
        assert!(matches!(dev.write_at(0, b"x"), Err(DeviceError::Crashed)));
        dev.recover();
        let mut a = [0u8; 7];
        dev.read_at(0, &mut a).expect("read");
        assert_eq!(&a, b"durable");
        let mut b = [0u8; 8];
        dev.read_at(100, &mut b).expect("read");
        assert_eq!(&b, &[0; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn contents_survive_reopen() {
        let dir = tmpdir("reopen");
        let path = dir.join("d.img");
        {
            let dev = FileDevice::create(&path, fast(128)).expect("create");
            dev.write_at(0, b"generation-1").expect("write");
            dev.persist(0, 12).expect("persist");
        }
        let dev = FileDevice::open(&path, fast(128)).expect("open");
        let mut buf = [0u8; 12];
        dev.read_at(0, &mut buf).expect("read");
        assert_eq!(&buf, b"generation-1");
        assert_eq!(dev.path(), path.as_path());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_short_file() {
        let dir = tmpdir("short");
        let path = dir.join("d.img");
        FileDevice::create(&path, fast(64)).expect("create");
        assert!(FileDevice::open(&path, fast(128)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlapping_writes_latest_wins() {
        let dir = tmpdir("overlap");
        let dev = FileDevice::create(dir.join("d.img"), fast(64)).expect("create");
        dev.write_at(0, b"aaaa").expect("write");
        dev.write_at(2, b"bb").expect("write");
        let mut buf = [0u8; 4];
        dev.read_at(0, &mut buf).expect("read");
        assert_eq!(&buf, b"aabb");
        dev.persist(0, 4).expect("persist");
        dev.read_durable_at(0, &mut buf).expect("read durable");
        assert_eq!(&buf, b"aabb", "flush preserves write order");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_persist_only_flushes_overlapping_entries() {
        let dir = tmpdir("partial");
        let dev = FileDevice::create(dir.join("d.img"), fast(256)).expect("create");
        dev.write_at(0, b"left").expect("write");
        dev.write_at(200, b"right").expect("write");
        dev.persist(0, 4).expect("persist");
        let mut l = [0u8; 4];
        dev.read_durable_at(0, &mut l).expect("read");
        assert_eq!(&l, b"left");
        let mut r = [0u8; 5];
        dev.read_durable_at(200, &mut r).expect("read");
        assert_eq!(&r, &[0; 5], "unrelated entry not flushed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let dir = tmpdir("oob");
        let dev = FileDevice::create(dir.join("d.img"), fast(16)).expect("create");
        assert!(matches!(
            dev.write_at(10, &[0; 10]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        assert!(dev.persist(10, 10).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

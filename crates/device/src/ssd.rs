//! Simulated SSD with mmap/msync semantics.
//!
//! PCcheck's SSD path (§3.3) memory-maps the checkpoint file and calls
//! `msync()` after every checkpointing write; the baselines do the same (GPM
//! via `cudaHostRegister` + `msync`). [`SsdDevice`] models this: `write_at`
//! dirties the page-cache (volatile) view at media bandwidth, and `persist`
//! is the msync that makes a range durable.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use pccheck_util::{Bandwidth, ByteSize, TokenBucket};

use crate::device::{DeviceConfig, DeviceStats, PersistentDevice};
use crate::error::DeviceError;
use crate::region::{CrashPolicy, MemRegion};
use crate::Result;

#[derive(Debug)]
struct SsdState {
    region: MemRegion,
    crashed: bool,
}

/// A bandwidth-throttled SSD with msync-style persistence.
///
/// Writes by concurrent checkpoint threads share one token bucket, so the
/// aggregate never exceeds the configured media bandwidth — the mechanism
/// behind the paper's observation that ~4 concurrent checkpoints saturate
/// the SSD (§5.4.1).
///
/// # Examples
///
/// ```
/// use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck_device::DeviceError> {
/// let ssd = SsdDevice::new(DeviceConfig::fast_for_tests(ByteSize::from_kb(64)));
/// ssd.write_at(0, &[1, 2, 3])?;
/// ssd.persist(0, 3)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SsdDevice {
    config: DeviceConfig,
    state: RwLock<SsdState>,
    bucket: Arc<TokenBucket>,
    /// Reads draw from their own bucket (same media rate), so a parallel
    /// restore competes for read bandwidth without starving writers.
    read_bucket: Arc<TokenBucket>,
    stats: DeviceStats,
    crash_policy: CrashPolicy,
    /// Crash-injection fuse: `-1` is disarmed; `n >= 0` means `n` more
    /// `persist` calls succeed and the one after that crashes the device
    /// *before* taking effect (its range is lost like any unsynced data).
    armed_persists: AtomicI64,
    /// Injected unreadable media range (`offset`, `len`); empty when no
    /// fault is armed. Durable reads overlapping it fail with
    /// [`DeviceError::ReadFault`].
    read_fault: RwLock<Option<(u64, u64)>>,
}

impl SsdDevice {
    /// Creates an SSD with the given configuration and the conservative
    /// crash policy (unsynced page-cache data is lost).
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_crash_policy(config, CrashPolicy::DropUnpersisted)
    }

    /// Creates an SSD with an explicit crash policy (adversarial testing).
    pub fn with_crash_policy(config: DeviceConfig, crash_policy: CrashPolicy) -> Self {
        let bucket = Arc::new(TokenBucket::new(config.write_bandwidth));
        let read_bucket = Arc::new(TokenBucket::new(config.write_bandwidth));
        SsdDevice {
            state: RwLock::new(SsdState {
                region: MemRegion::new(config.capacity),
                crashed: false,
            }),
            bucket,
            read_bucket,
            stats: DeviceStats::default(),
            crash_policy,
            armed_persists: AtomicI64::new(-1),
            read_fault: RwLock::new(None),
            config,
        }
    }

    /// Arms a deterministic crash fuse: the next `n` calls to
    /// [`PersistentDevice::persist`] succeed, and the call after that
    /// crashes the device mid-`msync` — before the range becomes durable.
    /// The fuse disarms itself after firing. This pins crash points to
    /// exact protocol steps (during persist, between persist and commit)
    /// for forensic and crash-consistency tests.
    pub fn arm_crash_after_persists(&self, n: u64) {
        self.armed_persists.store(n as i64, Ordering::Relaxed);
    }

    /// Disarms a previously armed persist-crash fuse.
    pub fn disarm_crash(&self) {
        self.armed_persists.store(-1, Ordering::Relaxed);
    }

    /// Marks `[offset, offset+len)` as unreadable media: any durable read
    /// overlapping the range fails with [`DeviceError::ReadFault`] until
    /// [`clear_read_fault`](Self::clear_read_fault). Models a latent sector
    /// error discovered during recovery — the device stays up, writes still
    /// land, only the faulted bytes are lost.
    pub fn arm_read_fault_at(&self, offset: u64, len: u64) {
        *self.read_fault.write() = Some((offset, len));
    }

    /// Clears a previously injected read fault.
    pub fn clear_read_fault(&self) {
        *self.read_fault.write() = None;
    }

    fn check_read_fault(&self, offset: u64, len: u64) -> Result<()> {
        if let Some((f_off, f_len)) = *self.read_fault.read() {
            if offset < f_off + f_len && f_off < offset + len {
                return Err(DeviceError::ReadFault { offset: f_off });
            }
        }
        Ok(())
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Returns `true` if the device is currently in the crashed state.
    pub fn is_crashed(&self) -> bool {
        self.state.read().crashed
    }

    fn check_alive(crashed: bool) -> Result<()> {
        if crashed {
            Err(DeviceError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl PersistentDevice for SsdDevice {
    fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    fn bandwidth(&self) -> Bandwidth {
        self.config.write_bandwidth
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let _ticket = self.submit();
        if self.config.throttled {
            // Block outside the lock so other writers and readers proceed
            // while we wait for bandwidth tokens.
            self.bucket.acquire(ByteSize::from_bytes(data.len() as u64));
        }
        let mut state = self.state.write();
        Self::check_alive(state.crashed)?;
        state.region.write(offset, data)?;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        let _ticket = self.submit();
        let mut state = self.state.write();
        Self::check_alive(state.crashed)?;
        // The fuse is read and updated under the exclusive state lock, so
        // the atomic only provides interior mutability, not synchronization.
        let fuse = self.armed_persists.load(Ordering::Relaxed);
        if fuse == 0 {
            self.armed_persists.store(-1, Ordering::Relaxed);
            state.crashed = true;
            state.region.crash(self.crash_policy);
            self.stats.record_crash();
            return Err(DeviceError::Crashed);
        } else if fuse > 0 {
            self.armed_persists.store(fuse - 1, Ordering::Relaxed);
        }
        state.region.persist(offset, len)?;
        self.stats.record_persist(len);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_read_fault(offset, buf.len() as u64)?;
        let state = self.state.read();
        Self::check_alive(state.crashed)?;
        state.region.read(offset, buf)
    }

    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let _ticket = self.submit();
        self.check_read_fault(offset, buf.len() as u64)?;
        if self.config.throttled {
            // Block outside the state lock, like writes do.
            self.read_bucket
                .acquire(ByteSize::from_bytes(buf.len() as u64));
        }
        self.state.read().region.read_durable(offset, buf)?;
        self.stats.record_read(buf.len() as u64);
        Ok(())
    }

    fn crash_now(&self) {
        let mut state = self.state.write();
        if !state.crashed {
            state.crashed = true;
            let policy = self.crash_policy;
            state.region.crash(policy);
            self.stats.record_crash();
        }
    }

    fn recover(&self) {
        self.state.write().crashed = false;
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn fast(cap: u64) -> SsdDevice {
        SsdDevice::new(DeviceConfig::fast_for_tests(ByteSize::from_bytes(cap)))
    }

    #[test]
    fn write_persist_read_cycle() {
        let ssd = fast(1024);
        ssd.write_at(100, b"model-state").unwrap();
        ssd.persist(100, 11).unwrap();
        let mut buf = [0u8; 11];
        ssd.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"model-state");
        ssd.read_durable_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"model-state");
    }

    #[test]
    fn crash_rejects_io_until_recover() {
        let ssd = fast(1024);
        ssd.write_at(0, b"a").unwrap();
        ssd.crash_now();
        assert!(ssd.is_crashed());
        assert_eq!(ssd.write_at(0, b"b"), Err(DeviceError::Crashed));
        assert_eq!(ssd.persist(0, 1), Err(DeviceError::Crashed));
        let mut buf = [0u8; 1];
        assert_eq!(ssd.read_at(0, &mut buf), Err(DeviceError::Crashed));
        // Recovery path still works while crashed.
        ssd.read_durable_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "unsynced write lost");
        ssd.recover();
        assert!(!ssd.is_crashed());
        ssd.write_at(0, b"b").unwrap();
    }

    #[test]
    fn crash_is_idempotent() {
        let ssd = fast(64);
        ssd.crash_now();
        ssd.crash_now();
        assert_eq!(ssd.stats().crashes(), 1);
    }

    #[test]
    fn unsynced_data_lost_synced_data_survives() {
        let ssd = fast(4096);
        ssd.write_at(0, &[0xAB; 100]).unwrap();
        ssd.persist(0, 100).unwrap();
        ssd.write_at(200, &[0xCD; 100]).unwrap(); // never synced
        ssd.crash_now();
        ssd.recover();
        let mut a = [0u8; 100];
        ssd.read_at(0, &mut a).unwrap();
        assert!(a.iter().all(|&b| b == 0xAB));
        let mut b = [0u8; 100];
        ssd.read_at(200, &mut b).unwrap();
        assert!(b.iter().all(|&b| b == 0));
    }

    #[test]
    fn armed_fuse_crashes_the_fatal_persist_before_it_lands() {
        let ssd = fast(4096);
        ssd.arm_crash_after_persists(2);
        ssd.write_at(0, &[0x11; 8]).unwrap();
        ssd.persist(0, 8).unwrap();
        ssd.write_at(8, &[0x22; 8]).unwrap();
        ssd.persist(8, 8).unwrap();
        ssd.write_at(16, &[0x33; 8]).unwrap();
        assert_eq!(ssd.persist(16, 8), Err(DeviceError::Crashed));
        assert!(ssd.is_crashed());
        // The first two persists are durable; the fatal one never landed.
        let mut buf = [0u8; 24];
        ssd.read_durable_at(0, &mut buf).unwrap();
        assert_eq!(&buf[0..8], &[0x11; 8]);
        assert_eq!(&buf[8..16], &[0x22; 8]);
        assert_eq!(&buf[16..24], &[0u8; 8]);
        // Fuse disarmed itself: recovery resumes normal persistence.
        ssd.recover();
        ssd.write_at(16, &[0x44; 8]).unwrap();
        ssd.persist(16, 8).unwrap();
    }

    #[test]
    fn disarm_cancels_the_fuse() {
        let ssd = fast(64);
        ssd.arm_crash_after_persists(0);
        ssd.disarm_crash();
        ssd.write_at(0, &[1]).unwrap();
        ssd.persist(0, 1).unwrap();
        assert!(!ssd.is_crashed());
    }

    #[test]
    fn throttling_enforces_bandwidth() {
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mb_u64(8),
            write_bandwidth: Bandwidth::from_mb_per_sec(20.0),
            throttled: true,
        };
        let ssd = SsdDevice::new(cfg);
        let payload = vec![7u8; 4 * 1024 * 1024];
        let start = Instant::now();
        ssd.write_at(0, &payload).unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.1, "4MB at 20MB/s must take ~0.2s, took {secs}s");
        assert!(secs < 1.0, "took far too long: {secs}s");
    }

    #[test]
    fn concurrent_writers_share_bucket() {
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mb_u64(8),
            write_bandwidth: Bandwidth::from_mb_per_sec(20.0),
            throttled: true,
        };
        let ssd = Arc::new(SsdDevice::new(cfg));
        let start = Instant::now();
        crossbeam::thread::scope(|s| {
            for i in 0..2u64 {
                let ssd = Arc::clone(&ssd);
                s.spawn(move |_| {
                    let payload = vec![i as u8; 2 * 1024 * 1024];
                    ssd.write_at(i * 2 * 1024 * 1024, &payload).unwrap();
                });
            }
        })
        .unwrap();
        let secs = start.elapsed().as_secs_f64();
        // 4 MB total at 20 MB/s: ~0.2 s regardless of concurrency.
        assert!(secs > 0.1, "contention not enforced: {secs}s");
    }

    #[test]
    fn stats_track_io() {
        let ssd = fast(1024);
        ssd.write_at(0, &[1; 100]).unwrap();
        ssd.persist(0, 100).unwrap();
        assert_eq!(ssd.stats().bytes_written().as_u64(), 100);
        assert_eq!(ssd.stats().bytes_persisted().as_u64(), 100);
        assert_eq!(ssd.stats().persist_ops(), 1);
    }

    #[test]
    fn submission_queue_tracks_depth_and_peak() {
        let ssd = fast(1024);
        assert_eq!(ssd.stats().queue_depth(), 0);
        {
            let t1 = ssd.submit();
            assert_eq!(t1.depth(), 1);
            let t2 = ssd.submit();
            assert_eq!(t2.depth(), 2);
            assert_eq!(ssd.stats().queue_depth(), 2);
        }
        assert_eq!(ssd.stats().queue_depth(), 0, "tickets release on drop");
        assert_eq!(ssd.stats().peak_queue_depth(), 2, "peak is sticky");
        // Every write/persist passes through the queue.
        ssd.write_at(0, &[1; 8]).unwrap();
        ssd.persist(0, 8).unwrap();
        assert_eq!(ssd.stats().queue_depth(), 0);
        assert_eq!(ssd.queue_depths(), vec![0]);
    }

    #[test]
    fn read_fault_hits_overlapping_durable_reads_only() {
        let ssd = fast(1024);
        ssd.write_at(0, &[0x5A; 256]).unwrap();
        ssd.persist(0, 256).unwrap();
        ssd.arm_read_fault_at(100, 50);
        let mut buf = [0u8; 32];
        assert_eq!(
            ssd.read_durable_at(90, &mut buf),
            Err(DeviceError::ReadFault { offset: 100 })
        );
        assert_eq!(
            ssd.read_durable_at(120, &mut buf),
            Err(DeviceError::ReadFault { offset: 100 })
        );
        // Disjoint ranges still read fine, and writes are unaffected.
        ssd.read_durable_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0x5A; 32]);
        ssd.read_durable_at(150, &mut buf).unwrap();
        ssd.write_at(100, &[1; 8]).unwrap();
        ssd.clear_read_fault();
        ssd.read_durable_at(100, &mut buf).unwrap();
    }

    #[test]
    fn durable_reads_are_throttled_and_counted() {
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mb_u64(8),
            write_bandwidth: Bandwidth::from_mb_per_sec(20.0),
            throttled: true,
        };
        let ssd = SsdDevice::new(cfg);
        let mut buf = vec![0u8; 4 * 1024 * 1024];
        let start = Instant::now();
        ssd.read_durable_at(0, &mut buf).unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.1, "4MB at 20MB/s must take ~0.2s, took {secs}s");
        assert_eq!(ssd.stats().bytes_read().as_u64(), buf.len() as u64);
        assert_eq!(ssd.stats().read_ops(), 1);
    }

    #[test]
    fn out_of_bounds_propagates() {
        let ssd = fast(16);
        assert!(matches!(
            ssd.write_at(10, &[0; 10]),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn device_is_object_safe_and_shareable() {
        let dev: Arc<dyn PersistentDevice> = Arc::new(fast(64));
        dev.write_at(0, &[1]).unwrap();
        assert_eq!(dev.capacity().as_u64(), 64);
    }
}

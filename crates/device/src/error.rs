//! Error type shared by all simulated devices.

use std::error::Error;
use std::fmt;

/// Errors returned by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A read or write touched addresses beyond the device capacity.
    OutOfBounds {
        /// First byte of the offending access.
        offset: u64,
        /// Length of the offending access.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The device is in the crashed state; I/O is rejected until
    /// [`recover`](crate::PersistentDevice::recover) is called.
    Crashed,
    /// A buffer pool was asked for a buffer larger than its chunk size.
    BufferTooLarge {
        /// Requested byte count.
        requested: u64,
        /// Pool chunk size.
        chunk: u64,
    },
    /// The network peer is unreachable (remote node failed).
    PeerUnavailable,
    /// A delta slot's extent table failed validation (bad magic, an
    /// impossible extent count, or a checksum mismatch from a torn write).
    CorruptExtentTable,
    /// A slot's per-chunk digest table failed validation (bad magic,
    /// inconsistent geometry, or a checksum mismatch from a torn write).
    /// Recovery treats this as "no table": it falls back to the legacy
    /// whole-payload digest, never to trusting a torn table.
    CorruptDigestTable,
    /// A read failed at the media level (an unreadable sector / injected
    /// read fault). Unlike [`Crashed`](Self::Crashed) the device stays up;
    /// only the faulted range is unreadable.
    ReadFault {
        /// First byte of the unreadable range.
        offset: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds device capacity {capacity}"
            ),
            DeviceError::Crashed => write!(f, "device is crashed; recover() it first"),
            DeviceError::BufferTooLarge { requested, chunk } => write!(
                f,
                "requested buffer of {requested} bytes exceeds pool chunk size {chunk}"
            ),
            DeviceError::PeerUnavailable => write!(f, "network peer is unavailable"),
            DeviceError::CorruptExtentTable => {
                write!(f, "delta checkpoint extent table failed validation")
            }
            DeviceError::CorruptDigestTable => {
                write!(f, "per-chunk digest table failed validation")
            }
            DeviceError::ReadFault { offset } => {
                write!(f, "media read fault at offset {offset}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DeviceError::OutOfBounds {
            offset: 10,
            len: 20,
            capacity: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains("20") && msg.contains("16"));
        assert!(DeviceError::Crashed.to_string().contains("crashed"));
        assert!(DeviceError::PeerUnavailable.to_string().contains("peer"));
        assert!(DeviceError::BufferTooLarge {
            requested: 5,
            chunk: 4
        }
        .to_string()
        .contains("chunk"));
        assert!(DeviceError::CorruptExtentTable
            .to_string()
            .contains("extent table"));
        assert!(DeviceError::ReadFault { offset: 77 }
            .to_string()
            .contains("77"));
        assert!(DeviceError::CorruptDigestTable
            .to_string()
            .contains("digest table"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DeviceError>();
    }
}

//! Composite persistent devices: RAID-0-style striping and tiering.
//!
//! The paper's testbeds persist to a single pd-ssd volume or a single
//! Optane DIMM, which caps the persist phase at one device's bandwidth.
//! These composites open the multi-device axis while preserving the exact
//! persistence semantics the commit protocol depends on, because every
//! operation is delegated range-by-range to member devices that already
//! model them faithfully:
//!
//! * [`StripedDevice`] interleaves fixed-size stripes across `N` members
//!   (RAID-0). Chunked checkpoint writes fan out over the members' token
//!   buckets, so aggregate write/persist bandwidth scales with `N` — the
//!   `ext_striping` experiment and `bench_pr3` measure exactly this.
//! * [`TieredDevice`] places the first `tier.capacity()` bytes on a hot
//!   tier (typically PMEM) and spills the rest to a backing device
//!   (typically SSD). Store headers, `CHECK_ADDR`, and hot slots get
//!   fence-grade latency while bulk payload bytes ride the cheaper media.
//!
//! Both composites apply *queue-depth-aware backpressure*: each member has
//! a bounded submission gate, and an I/O that would push a member's queue
//! past the configured depth blocks until earlier submissions complete.
//! Durable reads ([`PersistentDevice::read_durable_at`]) are delegated even
//! while crashed, so `RawStoreView`, the forensic auditor, and recovery all
//! work unchanged on a striped or tiered store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, RwLock};

use pccheck_util::{Bandwidth, ByteSize};

use crate::device::{DeviceStats, DeviceStatsReport, PersistentDevice};
use crate::error::DeviceError;
use crate::observer::{IoObserver, MemberIoOp};
use crate::Result;

/// Default per-member submission-queue bound for composites.
pub const DEFAULT_MEMBER_QUEUE_DEPTH: u64 = 16;

/// A bounded submission gate: at most `limit` in-flight operations per
/// member; excess submitters block until a slot frees.
#[derive(Debug, Default)]
struct MemberGate {
    depth: Mutex<u64>,
    freed: Condvar,
}

impl MemberGate {
    fn enter(&self, limit: u64) {
        let mut depth = self.depth.lock();
        while *depth >= limit {
            self.freed.wait(&mut depth);
        }
        *depth += 1;
    }

    fn exit(&self) {
        let mut depth = self.depth.lock();
        *depth -= 1;
        drop(depth);
        self.freed.notify_all();
    }

    fn run<R>(&self, limit: u64, op: impl FnOnce() -> R) -> R {
        self.enter(limit);
        let result = op();
        self.exit();
        result
    }
}

/// One contiguous piece of a logical range on a single member device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    member: usize,
    member_offset: u64,
    /// Offset into the caller's buffer / logical range.
    buf_offset: usize,
    len: u64,
}

/// RAID-0-style striping over `N` member devices.
///
/// Logical stripe `s` (of `stripe_size` bytes) lives on member `s % N` at
/// member-local stripe index `s / N`. Writes and persists that span stripe
/// boundaries fan out to every member they touch, which is what lets `p`
/// checkpoint writer threads drive `N` token buckets concurrently.
///
/// Crash injection is controller-level: [`crash_now`](PersistentDevice::crash_now)
/// (or the persist fuse armed via
/// [`arm_crash_after_persists`](Self::arm_crash_after_persists)) freezes
/// *all* members at once, modeling a power failure of the whole array.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck_device::DeviceError> {
/// let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
///     .map(|_| {
///         Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(
///             ByteSize::from_kb(64),
///         ))) as Arc<dyn PersistentDevice>
///     })
///     .collect();
/// let array = StripedDevice::new(members, ByteSize::from_kb(4));
/// array.write_at(0, &[7u8; 12288])?; // spans both members
/// array.persist(0, 12288)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StripedDevice {
    members: Vec<Arc<dyn PersistentDevice>>,
    gates: Vec<MemberGate>,
    stripe: u64,
    /// Usable capacity per member, truncated to whole stripes.
    per_member: u64,
    queue_limit: u64,
    stats: DeviceStats,
    crashed: AtomicBool,
    /// Controller-level persist-crash fuse, mirroring
    /// [`SsdDevice::arm_crash_after_persists`](crate::SsdDevice::arm_crash_after_persists):
    /// `-1` disarmed; `n >= 0` means `n` more persists succeed and the next
    /// one powers the whole array off before its range lands anywhere.
    armed_persists: Mutex<i64>,
    /// Optional per-member I/O observer (telemetry actor lanes).
    observer: RwLock<Option<Arc<dyn IoObserver>>>,
}

impl StripedDevice {
    /// Creates a stripe set over `members` with the given stripe size.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, `stripe` is zero, or any member is
    /// smaller than one stripe.
    pub fn new(members: Vec<Arc<dyn PersistentDevice>>, stripe: ByteSize) -> Self {
        assert!(!members.is_empty(), "stripe set needs at least one member");
        let stripe = stripe.as_u64();
        assert!(stripe > 0, "stripe size must be positive");
        let min_cap = members
            .iter()
            .map(|m| m.capacity().as_u64())
            .min()
            .expect("non-empty");
        let per_member = (min_cap / stripe) * stripe;
        assert!(
            per_member > 0,
            "every member must hold at least one {stripe}-byte stripe"
        );
        let gates = members.iter().map(|_| MemberGate::default()).collect();
        StripedDevice {
            gates,
            stripe,
            per_member,
            queue_limit: DEFAULT_MEMBER_QUEUE_DEPTH,
            stats: DeviceStats::default(),
            crashed: AtomicBool::new(false),
            armed_persists: Mutex::new(-1),
            observer: RwLock::new(None),
            members,
        }
    }

    /// Overrides the per-member submission-queue bound (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_queue_limit(mut self, limit: u64) -> Self {
        assert!(limit > 0, "queue limit must be positive");
        self.queue_limit = limit;
        self
    }

    /// Number of member devices.
    pub fn ways(&self) -> usize {
        self.members.len()
    }

    /// The stripe size.
    pub fn stripe_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.stripe)
    }

    /// Arms a controller-level crash fuse: the next `n` persists succeed
    /// and the one after powers off the whole array before its range
    /// becomes durable on any member. The fuse disarms itself after firing.
    pub fn arm_crash_after_persists(&self, n: u64) {
        *self.armed_persists.lock() = n as i64;
    }

    /// Disarms a previously armed persist-crash fuse.
    pub fn disarm_crash(&self) {
        *self.armed_persists.lock() = -1;
    }

    /// Registers an [`IoObserver`] that receives one callback per
    /// member-level operation, labeled `stripe-{i}` to match
    /// [`stats_report`](PersistentDevice::stats_report).
    pub fn set_io_observer(&self, observer: Arc<dyn IoObserver>) {
        *self.observer.write() = Some(observer);
    }

    fn observe(&self, member: usize, op: MemberIoOp, bytes: u64, dur_nanos: u64) {
        if let Some(obs) = self.observer.read().as_ref() {
            obs.member_io(&format!("stripe-{member}"), op, bytes, dur_nanos);
        }
    }

    /// Returns `true` while the array is powered off.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_crashed() {
            Err(DeviceError::Crashed)
        } else {
            Ok(())
        }
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        let capacity = self.capacity().as_u64();
        if offset.checked_add(len).map_or(true, |end| end > capacity) {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity,
            });
        }
        Ok(())
    }

    /// Splits the logical range into per-member extents, in logical order.
    fn extents(&self, offset: u64, len: u64) -> Vec<Extent> {
        let n = self.members.len() as u64;
        let mut out = Vec::new();
        let mut logical = offset;
        let end = offset + len;
        while logical < end {
            let stripe_idx = logical / self.stripe;
            let within = logical % self.stripe;
            let span = (self.stripe - within).min(end - logical);
            out.push(Extent {
                member: (stripe_idx % n) as usize,
                member_offset: (stripe_idx / n) * self.stripe + within,
                buf_offset: (logical - offset) as usize,
                len: span,
            });
            logical += span;
        }
        out
    }

    /// Powers off every member and the controller itself.
    fn power_off(&self) {
        if !self.crashed.swap(true, Ordering::Relaxed) {
            for member in &self.members {
                member.crash_now();
            }
            self.stats.record_crash();
        }
    }
}

impl PersistentDevice for StripedDevice {
    fn capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.per_member * self.members.len() as u64)
    }

    fn bandwidth(&self) -> Bandwidth {
        let sum = self
            .members
            .iter()
            .map(|m| m.bandwidth().as_bytes_per_sec())
            .sum();
        Bandwidth::from_bytes_per_sec(sum)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, data.len() as u64)?;
        self.check_alive()?;
        for ext in self.extents(offset, data.len() as u64) {
            let chunk = &data[ext.buf_offset..ext.buf_offset + ext.len as usize];
            self.gates[ext.member].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.members[ext.member].write_at(ext.member_offset, chunk);
                if result.is_ok() {
                    self.observe(
                        ext.member,
                        MemberIoOp::Write,
                        ext.len,
                        begin.elapsed().as_nanos() as u64,
                    );
                }
                result
            })?;
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, len)?;
        self.check_alive()?;
        {
            let mut fuse = self.armed_persists.lock();
            if *fuse == 0 {
                *fuse = -1;
                drop(fuse);
                self.power_off();
                return Err(DeviceError::Crashed);
            } else if *fuse > 0 {
                *fuse -= 1;
            }
        }
        for ext in self.extents(offset, len) {
            let result = self.gates[ext.member].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.members[ext.member].persist(ext.member_offset, ext.len);
                if result.is_ok() {
                    self.observe(
                        ext.member,
                        MemberIoOp::Persist,
                        ext.len,
                        begin.elapsed().as_nanos() as u64,
                    );
                }
                result
            });
            if let Err(e) = result {
                // A member died mid-fan-out (e.g. its own fuse fired):
                // the rest of the array loses power with it.
                self.power_off();
                return Err(e);
            }
        }
        self.stats.record_persist(len);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        self.check_alive()?;
        for ext in self.extents(offset, buf.len() as u64) {
            let chunk = &mut buf[ext.buf_offset..ext.buf_offset + ext.len as usize];
            self.members[ext.member].read_at(ext.member_offset, chunk)?;
        }
        Ok(())
    }

    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        let len = buf.len() as u64;
        let extents = self.extents(offset, len);
        // Carve the destination into disjoint per-extent slices (extents
        // are contiguous and in ascending buffer order) and group them by
        // member. A range resident on one member — every sub-stripe meta
        // read — stays on the caller's thread; a multi-member range gets
        // one reader thread per member, so an N-way stripe serves a large
        // restore read at ~N× a single member's bandwidth.
        let mut per_member: Vec<Vec<(u64, &mut [u8])>> =
            (0..self.members.len()).map(|_| Vec::new()).collect();
        let mut rest = buf;
        for ext in &extents {
            let (chunk, tail) = rest.split_at_mut(ext.len as usize);
            per_member[ext.member].push((ext.member_offset, chunk));
            rest = tail;
        }
        let touched = per_member.iter().filter(|w| !w.is_empty()).count();
        if touched <= 1 {
            for (member, work) in per_member.into_iter().enumerate() {
                for (off, chunk) in work {
                    self.gates[member].run(self.queue_limit, || {
                        let begin = Instant::now();
                        let chunk_len = chunk.len() as u64;
                        let result = self.members[member].read_durable_at(off, chunk);
                        if result.is_ok() {
                            self.observe(
                                member,
                                MemberIoOp::Read,
                                chunk_len,
                                begin.elapsed().as_nanos() as u64,
                            );
                        }
                        result
                    })?;
                }
            }
        } else {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for (member, work) in per_member.into_iter().enumerate() {
                    if work.is_empty() {
                        continue;
                    }
                    handles.push(s.spawn(move || {
                        for (off, chunk) in work {
                            self.gates[member].run(self.queue_limit, || {
                                let begin = Instant::now();
                                let chunk_len = chunk.len() as u64;
                                let result = self.members[member].read_durable_at(off, chunk);
                                if result.is_ok() {
                                    self.observe(
                                        member,
                                        MemberIoOp::Read,
                                        chunk_len,
                                        begin.elapsed().as_nanos() as u64,
                                    );
                                }
                                result
                            })?;
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join().expect("stripe reader thread panicked")?;
                }
                Ok::<(), DeviceError>(())
            })?;
        }
        self.stats.record_read(len);
        Ok(())
    }

    fn crash_now(&self) {
        self.power_off();
    }

    fn recover(&self) {
        for member in &self.members {
            member.recover();
        }
        self.crashed.store(false, Ordering::Relaxed);
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn queue_depths(&self) -> Vec<u64> {
        std::iter::once(self.stats.queue_depth())
            .chain(self.members.iter().map(|m| m.stats().queue_depth()))
            .collect()
    }

    fn stats_report(&self) -> Vec<DeviceStatsReport> {
        let mut out = vec![DeviceStatsReport::from_stats("device", &self.stats)];
        for (i, member) in self.members.iter().enumerate() {
            out.push(DeviceStatsReport::from_stats(
                format!("stripe-{i}"),
                member.stats(),
            ));
        }
        out
    }
}

/// A hot tier (typically PMEM) backed by a spill device (typically SSD).
///
/// Logical offsets `[0, tier.capacity())` live on the hot tier; everything
/// beyond spills to the backing device at `offset - tier.capacity()`.
/// Because the store places its header, `CHECK_ADDR`, and the first slots
/// at low offsets, the commit protocol's fences hit the fast media while
/// bulk payload bytes overflow to the cheap one.
///
/// Persist calls are split at the boundary and delegated, so a PMEM tier
/// keeps its per-thread fence semantics: only the calling thread's stores
/// are completed by the tier-side fence.
#[derive(Debug)]
pub struct TieredDevice {
    tier: Arc<dyn PersistentDevice>,
    spill: Arc<dyn PersistentDevice>,
    tier_cap: u64,
    gates: [MemberGate; 2],
    queue_limit: u64,
    stats: DeviceStats,
    crashed: AtomicBool,
    /// Optional per-member I/O observer (telemetry actor lanes).
    observer: RwLock<Option<Arc<dyn IoObserver>>>,
}

impl TieredDevice {
    /// Creates a tiered device from a hot tier and a spill device.
    pub fn new(tier: Arc<dyn PersistentDevice>, spill: Arc<dyn PersistentDevice>) -> Self {
        let tier_cap = tier.capacity().as_u64();
        TieredDevice {
            tier,
            spill,
            tier_cap,
            gates: [MemberGate::default(), MemberGate::default()],
            queue_limit: DEFAULT_MEMBER_QUEUE_DEPTH,
            stats: DeviceStats::default(),
            crashed: AtomicBool::new(false),
            observer: RwLock::new(None),
        }
    }

    /// Overrides the per-member submission-queue bound (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_queue_limit(mut self, limit: u64) -> Self {
        assert!(limit > 0, "queue limit must be positive");
        self.queue_limit = limit;
        self
    }

    /// Bytes served by the hot tier (the spill boundary).
    pub fn tier_capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.tier_cap)
    }

    /// Registers an [`IoObserver`] that receives one callback per
    /// member-level operation, labeled `tier` / `spill` to match
    /// [`stats_report`](PersistentDevice::stats_report).
    pub fn set_io_observer(&self, observer: Arc<dyn IoObserver>) {
        *self.observer.write() = Some(observer);
    }

    fn observe(&self, member: usize, op: MemberIoOp, bytes: u64, dur_nanos: u64) {
        if let Some(obs) = self.observer.read().as_ref() {
            let label = if member == 0 { "tier" } else { "spill" };
            obs.member_io(label, op, bytes, dur_nanos);
        }
    }

    /// Returns `true` while the device is powered off.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_crashed() {
            Err(DeviceError::Crashed)
        } else {
            Ok(())
        }
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        let capacity = self.capacity().as_u64();
        if offset.checked_add(len).map_or(true, |end| end > capacity) {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity,
            });
        }
        Ok(())
    }

    /// Splits `[offset, offset+len)` at the tier boundary:
    /// `(tier_part, spill_part)`, each `(member_offset, buf_offset, len)`.
    #[allow(clippy::type_complexity)]
    fn split(
        &self,
        offset: u64,
        len: u64,
    ) -> (Option<(u64, usize, u64)>, Option<(u64, usize, u64)>) {
        let end = offset + len;
        let tier_part = if offset < self.tier_cap {
            Some((offset, 0usize, end.min(self.tier_cap) - offset))
        } else {
            None
        };
        let spill_part = if end > self.tier_cap {
            let start = offset.max(self.tier_cap);
            Some((
                start - self.tier_cap,
                (start - offset) as usize,
                end - start,
            ))
        } else {
            None
        };
        (tier_part, spill_part)
    }

    fn power_off(&self) {
        if !self.crashed.swap(true, Ordering::Relaxed) {
            self.tier.crash_now();
            self.spill.crash_now();
            self.stats.record_crash();
        }
    }
}

impl PersistentDevice for TieredDevice {
    fn capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.tier_cap + self.spill.capacity().as_u64())
    }

    fn bandwidth(&self) -> Bandwidth {
        // The hot tier sets the pace for the latency-critical protocol
        // traffic; report it as the headline figure.
        self.tier.bandwidth()
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, data.len() as u64)?;
        self.check_alive()?;
        let (tier_part, spill_part) = self.split(offset, data.len() as u64);
        if let Some((off, buf_off, len)) = tier_part {
            let chunk = &data[buf_off..buf_off + len as usize];
            self.gates[0].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.tier.write_at(off, chunk);
                if result.is_ok() {
                    self.observe(0, MemberIoOp::Write, len, begin.elapsed().as_nanos() as u64);
                }
                result
            })?;
        }
        if let Some((off, buf_off, len)) = spill_part {
            let chunk = &data[buf_off..buf_off + len as usize];
            self.gates[1].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.spill.write_at(off, chunk);
                if result.is_ok() {
                    self.observe(1, MemberIoOp::Write, len, begin.elapsed().as_nanos() as u64);
                }
                result
            })?;
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        let _ticket = self.submit();
        self.check_bounds(offset, len)?;
        self.check_alive()?;
        let (tier_part, spill_part) = self.split(offset, len);
        if let Some((off, _, part_len)) = tier_part {
            if let Err(e) = self.gates[0].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.tier.persist(off, part_len);
                if result.is_ok() {
                    self.observe(
                        0,
                        MemberIoOp::Persist,
                        part_len,
                        begin.elapsed().as_nanos() as u64,
                    );
                }
                result
            }) {
                self.power_off();
                return Err(e);
            }
        }
        if let Some((off, _, part_len)) = spill_part {
            if let Err(e) = self.gates[1].run(self.queue_limit, || {
                let begin = Instant::now();
                let result = self.spill.persist(off, part_len);
                if result.is_ok() {
                    self.observe(
                        1,
                        MemberIoOp::Persist,
                        part_len,
                        begin.elapsed().as_nanos() as u64,
                    );
                }
                result
            }) {
                self.power_off();
                return Err(e);
            }
        }
        self.stats.record_persist(len);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        self.check_alive()?;
        let (tier_part, spill_part) = self.split(offset, buf.len() as u64);
        if let Some((off, buf_off, len)) = tier_part {
            self.tier
                .read_at(off, &mut buf[buf_off..buf_off + len as usize])?;
        }
        if let Some((off, buf_off, len)) = spill_part {
            self.spill
                .read_at(off, &mut buf[buf_off..buf_off + len as usize])?;
        }
        Ok(())
    }

    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        let total = buf.len() as u64;
        let (tier_part, spill_part) = self.split(offset, total);
        match (tier_part, spill_part) {
            // A boundary-straddling read drives both medias concurrently —
            // the tier and the spill device have independent bandwidth.
            (Some((t_off, _, t_len)), Some((s_off, s_buf_off, _))) => {
                let (tier_buf, spill_buf) = buf.split_at_mut(s_buf_off);
                debug_assert_eq!(tier_buf.len() as u64, t_len);
                std::thread::scope(|s| {
                    let spill_read = s.spawn(|| {
                        self.gates[1].run(self.queue_limit, || {
                            let begin = Instant::now();
                            let spill_len = spill_buf.len() as u64;
                            let result = self.spill.read_durable_at(s_off, spill_buf);
                            if result.is_ok() {
                                self.observe(
                                    1,
                                    MemberIoOp::Read,
                                    spill_len,
                                    begin.elapsed().as_nanos() as u64,
                                );
                            }
                            result
                        })
                    });
                    let tier_result = self.gates[0].run(self.queue_limit, || {
                        let begin = Instant::now();
                        let tier_len = tier_buf.len() as u64;
                        let result = self.tier.read_durable_at(t_off, tier_buf);
                        if result.is_ok() {
                            self.observe(
                                0,
                                MemberIoOp::Read,
                                tier_len,
                                begin.elapsed().as_nanos() as u64,
                            );
                        }
                        result
                    });
                    let spill_result = spill_read.join().expect("spill reader panicked");
                    tier_result.and(spill_result)
                })?;
            }
            (Some((off, buf_off, len)), None) => {
                self.gates[0].run(self.queue_limit, || {
                    let begin = Instant::now();
                    let result = self
                        .tier
                        .read_durable_at(off, &mut buf[buf_off..buf_off + len as usize]);
                    if result.is_ok() {
                        self.observe(0, MemberIoOp::Read, len, begin.elapsed().as_nanos() as u64);
                    }
                    result
                })?;
            }
            (None, Some((off, buf_off, len))) => {
                self.gates[1].run(self.queue_limit, || {
                    let begin = Instant::now();
                    let result = self
                        .spill
                        .read_durable_at(off, &mut buf[buf_off..buf_off + len as usize]);
                    if result.is_ok() {
                        self.observe(1, MemberIoOp::Read, len, begin.elapsed().as_nanos() as u64);
                    }
                    result
                })?;
            }
            (None, None) => {}
        }
        self.stats.record_read(total);
        Ok(())
    }

    fn crash_now(&self) {
        self.power_off();
    }

    fn recover(&self) {
        self.tier.recover();
        self.spill.recover();
        self.crashed.store(false, Ordering::Relaxed);
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn queue_depths(&self) -> Vec<u64> {
        vec![
            self.stats.queue_depth(),
            self.tier.stats().queue_depth(),
            self.spill.stats().queue_depth(),
        ]
    }

    fn stats_report(&self) -> Vec<DeviceStatsReport> {
        vec![
            DeviceStatsReport::from_stats("device", &self.stats),
            DeviceStatsReport::from_stats("tier", self.tier.stats()),
            DeviceStatsReport::from_stats("spill", self.spill.stats()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::pmem::{PmemDevice, PmemWriteMode};
    use crate::ssd::SsdDevice;

    fn ssd(cap: u64) -> Arc<SsdDevice> {
        Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(
            ByteSize::from_bytes(cap),
        )))
    }

    fn stripe2(cap_each: u64, stripe: u64) -> (StripedDevice, Arc<SsdDevice>, Arc<SsdDevice>) {
        let a = ssd(cap_each);
        let b = ssd(cap_each);
        let array = StripedDevice::new(
            vec![
                a.clone() as Arc<dyn PersistentDevice>,
                b.clone() as Arc<dyn PersistentDevice>,
            ],
            ByteSize::from_bytes(stripe),
        );
        (array, a, b)
    }

    #[test]
    fn capacity_and_bandwidth_aggregate() {
        let (array, _, _) = stripe2(1000, 64);
        // 1000/64 = 15 whole stripes per member.
        assert_eq!(array.capacity().as_u64(), 2 * 15 * 64);
        let one = ssd(1000).bandwidth().as_bytes_per_sec();
        assert!((array.bandwidth().as_bytes_per_sec() - 2.0 * one).abs() < 1.0);
        assert_eq!(array.ways(), 2);
        assert_eq!(array.stripe_size().as_u64(), 64);
    }

    #[test]
    fn round_trip_across_stripe_boundaries() {
        let (array, _, _) = stripe2(4096, 64);
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        array.write_at(10, &data).unwrap();
        let mut buf = vec![0u8; 300];
        array.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn writes_interleave_over_both_members() {
        let (array, a, b) = stripe2(4096, 64);
        array.write_at(0, &[0xEE; 256]).unwrap(); // 4 stripes: 2 per member
        assert_eq!(a.stats().bytes_written().as_u64(), 128);
        assert_eq!(b.stats().bytes_written().as_u64(), 128);
    }

    #[test]
    fn geometry_maps_stripes_round_robin() {
        let (array, a, b) = stripe2(4096, 64);
        // Stripe 0 -> member 0 @0; stripe 1 -> member 1 @0;
        // stripe 2 -> member 0 @64; stripe 3 -> member 1 @64.
        array.write_at(0, &[1u8; 64]).unwrap();
        array.write_at(64, &[2u8; 64]).unwrap();
        array.write_at(128, &[3u8; 64]).unwrap();
        array.write_at(192, &[4u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        a.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1));
        b.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2));
        a.read_at(64, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3));
        b.read_at(64, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 4));
    }

    #[test]
    fn persist_fans_out_and_survives_crash() {
        let (array, _, _) = stripe2(4096, 64);
        array.write_at(32, &[0xAB; 200]).unwrap();
        array.persist(32, 200).unwrap();
        array.write_at(1000, &[0xCD; 50]).unwrap(); // never persisted
        array.crash_now();
        assert!(array.is_crashed());
        assert_eq!(array.write_at(0, &[1]), Err(DeviceError::Crashed));
        // Durable reads work while crashed (the recovery path).
        let mut buf = [0u8; 200];
        array.read_durable_at(32, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xAB));
        array.recover();
        let mut lost = [0u8; 50];
        array.read_at(1000, &mut lost).unwrap();
        assert!(lost.iter().all(|&x| x == 0), "unpersisted bytes are gone");
    }

    #[test]
    fn controller_fuse_crashes_before_the_range_lands() {
        let (array, _, _) = stripe2(4096, 64);
        array.write_at(0, &[0x11; 64]).unwrap();
        array.persist(0, 64).unwrap();
        array.arm_crash_after_persists(0);
        array.write_at(64, &[0x22; 64]).unwrap();
        assert_eq!(array.persist(64, 64), Err(DeviceError::Crashed));
        assert!(array.is_crashed());
        let mut buf = [0u8; 64];
        array.read_durable_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0x11), "earlier persist survives");
        array.read_durable_at(64, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "fatal persist never landed");
        // Fuse disarmed itself.
        array.recover();
        array.write_at(64, &[0x22; 64]).unwrap();
        array.persist(64, 64).unwrap();
    }

    #[test]
    fn queue_limit_bounds_member_depth() {
        let (array, a, b) = stripe2(64 * 1024, 64);
        let array = Arc::new(array.with_queue_limit(1));
        crossbeam::thread::scope(|s| {
            for w in 0..4u64 {
                let array = Arc::clone(&array);
                s.spawn(move |_| {
                    for i in 0..16u64 {
                        let off = (w * 16 + i) * 256;
                        array.write_at(off, &[w as u8; 256]).unwrap();
                        array.persist(off, 256).unwrap();
                    }
                });
            }
        })
        .unwrap();
        // The gate admits one composite-issued op per member at a time,
        // no matter how many writers hit the array concurrently.
        assert!(a.stats().peak_queue_depth() <= 1);
        assert!(b.stats().peak_queue_depth() <= 1);
        assert!(array.stats().peak_queue_depth() >= 1);
    }

    #[test]
    fn queue_depths_reports_members() {
        let (array, _, _) = stripe2(4096, 64);
        assert_eq!(array.queue_depths(), vec![0, 0, 0]);
        let report = array.stats_report();
        assert_eq!(report.len(), 3);
        assert_eq!(report[0].name, "device");
        assert_eq!(report[1].name, "stripe-0");
        assert_eq!(report[2].name, "stripe-1");
    }

    #[test]
    fn durable_reads_fan_out_across_members() {
        use std::time::Instant;
        // Throttled members at 20 MB/s each: a 4 MiB durable read spanning
        // both must run near the 2-way aggregate rate, not sequentially.
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mb_u64(4),
            write_bandwidth: Bandwidth::from_mb_per_sec(20.0),
            throttled: true,
        };
        let a = Arc::new(SsdDevice::new(cfg.clone()));
        let b = Arc::new(SsdDevice::new(cfg));
        let array = StripedDevice::new(
            vec![
                a.clone() as Arc<dyn PersistentDevice>,
                b.clone() as Arc<dyn PersistentDevice>,
            ],
            ByteSize::from_kb(64),
        );
        let mut buf = vec![0u8; 4 * 1024 * 1024];
        let start = Instant::now();
        array.read_durable_at(0, &mut buf).unwrap();
        let secs = start.elapsed().as_secs_f64();
        // Sequential would take ~0.2 s (4 MiB at 20 MB/s per member).
        assert!(secs < 0.16, "2-way read did not overlap members: {secs}s");
        assert_eq!(a.stats().bytes_read().as_u64(), 2 * 1024 * 1024);
        assert_eq!(b.stats().bytes_read().as_u64(), 2 * 1024 * 1024);
        assert_eq!(array.stats().bytes_read().as_u64(), 4 * 1024 * 1024);
    }

    #[test]
    fn parallel_durable_read_matches_written_bytes_and_propagates_faults() {
        let (array, a, _) = stripe2(4096, 64);
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        array.write_at(32, &data).unwrap();
        array.persist(32, 1024).unwrap();
        let mut buf = vec![0u8; 1024];
        array.read_durable_at(32, &mut buf).unwrap();
        assert_eq!(buf, data, "fan-out read reassembles the logical range");
        // A media fault on one member surfaces through the composite.
        a.arm_read_fault_at(0, 64);
        assert!(matches!(
            array.read_durable_at(32, &mut buf),
            Err(DeviceError::ReadFault { .. })
        ));
    }

    #[test]
    fn out_of_bounds_uses_composite_capacity() {
        let (array, _, _) = stripe2(1024, 64);
        let cap = array.capacity().as_u64();
        assert!(matches!(
            array.write_at(cap - 4, &[0; 8]),
            Err(DeviceError::OutOfBounds { capacity, .. }) if capacity == cap
        ));
    }

    fn tiered(tier_cap: u64, spill_cap: u64) -> (TieredDevice, Arc<PmemDevice>, Arc<SsdDevice>) {
        let pmem = Arc::new(PmemDevice::optane(
            ByteSize::from_bytes(tier_cap),
            PmemWriteMode::NtStore,
        ));
        let spill = ssd(spill_cap);
        let dev = TieredDevice::new(
            pmem.clone() as Arc<dyn PersistentDevice>,
            spill.clone() as Arc<dyn PersistentDevice>,
        );
        (dev, pmem, spill)
    }

    #[test]
    fn tiered_splits_at_the_boundary() {
        let (dev, pmem, spill) = tiered(256, 4096);
        assert_eq!(dev.capacity().as_u64(), 256 + 4096);
        assert_eq!(dev.tier_capacity().as_u64(), 256);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        dev.write_at(200, &data).unwrap(); // 56 bytes tier, 144 spill
        dev.persist(200, 200).unwrap();
        assert_eq!(pmem.stats().bytes_written().as_u64(), 56);
        assert_eq!(spill.stats().bytes_written().as_u64(), 144);
        let mut buf = vec![0u8; 200];
        dev.read_at(200, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn tiered_persist_survives_crash_on_both_medias() {
        let (dev, _, _) = tiered(256, 4096);
        dev.write_at(200, &[0x5A; 200]).unwrap();
        dev.persist(200, 200).unwrap();
        dev.crash_now();
        assert!(dev.is_crashed());
        let mut buf = [0u8; 200];
        dev.read_durable_at(200, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0x5A));
        dev.recover();
        let mut again = [0u8; 200];
        dev.read_at(200, &mut again).unwrap();
        assert!(again.iter().all(|&x| x == 0x5A));
    }

    #[test]
    fn tiered_stats_report_names_members() {
        let (dev, _, _) = tiered(256, 1024);
        let report = dev.stats_report();
        assert_eq!(report.len(), 3);
        assert_eq!(report[1].name, "tier");
        assert_eq!(report[2].name, "spill");
        assert_eq!(dev.queue_depths().len(), 3);
    }

    #[derive(Debug, Default)]
    struct CountingObserver {
        calls: Mutex<Vec<(String, MemberIoOp, u64)>>,
    }

    impl IoObserver for CountingObserver {
        fn member_io(&self, member: &str, op: MemberIoOp, bytes: u64, _dur_nanos: u64) {
            self.calls.lock().push((member.to_string(), op, bytes));
        }
    }

    #[test]
    fn striped_io_observer_sees_every_member_leg() {
        let (array, _, _) = stripe2(4096, 64);
        let obs = Arc::new(CountingObserver::default());
        array.set_io_observer(obs.clone());
        array.write_at(0, &[0xAA; 128]).unwrap(); // one stripe per member
        array.persist(0, 128).unwrap();
        let mut buf = [0u8; 128];
        array.read_durable_at(0, &mut buf).unwrap();

        let calls = obs.calls.lock();
        let writes: Vec<_> = calls.iter().filter(|c| c.1 == MemberIoOp::Write).collect();
        assert_eq!(writes.len(), 2);
        assert!(writes.iter().any(|c| c.0 == "stripe-0" && c.2 == 64));
        assert!(writes.iter().any(|c| c.0 == "stripe-1" && c.2 == 64));
        assert_eq!(
            calls.iter().filter(|c| c.1 == MemberIoOp::Persist).count(),
            2
        );
        let read_bytes: u64 = calls
            .iter()
            .filter(|c| c.1 == MemberIoOp::Read)
            .map(|c| c.2)
            .sum();
        assert_eq!(read_bytes, 128, "fan-out read reports every member leg");
    }

    #[test]
    fn tiered_io_observer_labels_tier_and_spill() {
        let (dev, _, _) = tiered(256, 4096);
        let obs = Arc::new(CountingObserver::default());
        dev.set_io_observer(obs.clone());
        dev.write_at(200, &[1u8; 112]).unwrap(); // 56 bytes tier, 56 spill
        dev.persist(200, 112).unwrap();
        let mut buf = [0u8; 112];
        dev.read_durable_at(200, &mut buf).unwrap();

        let calls = obs.calls.lock();
        assert!(calls
            .iter()
            .any(|c| c.0 == "tier" && c.1 == MemberIoOp::Write && c.2 == 56));
        assert!(calls
            .iter()
            .any(|c| c.0 == "spill" && c.1 == MemberIoOp::Write && c.2 == 56));
        assert!(calls
            .iter()
            .any(|c| c.0 == "tier" && c.1 == MemberIoOp::Persist));
        assert!(calls
            .iter()
            .any(|c| c.0 == "spill" && c.1 == MemberIoOp::Read));
        assert_eq!(MemberIoOp::Read.name(), "read");
    }

    #[test]
    fn tiered_racing_writers_spill_deterministically() {
        // 4 KiB hot tier, 256-byte aligned writes: the spill boundary sits
        // on a write boundary, so no matter how the 4 writers interleave,
        // exactly the first 16 writes' offsets land on the tier and the
        // other 48 spill — the split depends only on offsets, never timing.
        let (dev, pmem, spill) = tiered(4096, 64 * 1024);
        let dev = Arc::new(dev.with_queue_limit(1));
        crossbeam::thread::scope(|s| {
            for w in 0..4u64 {
                let dev = Arc::clone(&dev);
                s.spawn(move |_| {
                    for i in 0..16u64 {
                        let off = (w * 16 + i) * 256;
                        dev.write_at(off, &[w as u8 + 1; 256]).unwrap();
                        dev.persist(off, 256).unwrap();
                    }
                });
            }
        })
        .unwrap();

        assert_eq!(pmem.stats().bytes_written().as_u64(), 4096);
        assert_eq!(spill.stats().bytes_written().as_u64(), 12 * 1024);
        // The queue gate admits one composite-issued op per member at a
        // time even with four writers racing.
        assert!(pmem.stats().peak_queue_depth() <= 1);
        assert!(spill.stats().peak_queue_depth() <= 1);

        // The composite's own totals are exactly the sum of its members'.
        let report = dev.stats_report();
        assert_eq!(report[0].name, "device");
        assert_eq!(
            report[0].bytes_written,
            report[1].bytes_written + report[2].bytes_written
        );
        assert_eq!(
            report[0].bytes_persisted,
            report[1].bytes_persisted + report[2].bytes_persisted
        );
        assert_eq!(report[0].bytes_written, 16 * 1024);

        // Every writer's lane reads back intact across the tier boundary.
        for w in 0..4u64 {
            let mut buf = [0u8; 256];
            dev.read_at(w * 16 * 256, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == w as u8 + 1));
        }
    }
}

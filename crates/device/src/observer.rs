//! Per-member I/O observation for composite devices.
//!
//! A [`StripedDevice`](crate::StripedDevice) or
//! [`TieredDevice`](crate::TieredDevice) fans one logical operation out to
//! several member devices, and the interesting question for observability
//! is *which member* did the work and *how long its leg took* — the
//! controller-level [`DeviceStats`](crate::DeviceStats) only sees the
//! aggregate. An [`IoObserver`] registered on a composite receives one
//! callback per member-level operation, timed around the member call
//! itself (queue-gate wait excluded — backpressure is already visible
//! through the queue-depth gauges).
//!
//! The device crate sits at the bottom of the dependency graph, so the
//! trait lives here and the telemetry crate implements it
//! (`TelemetryIoObserver`) to turn member I/O into per-device actor lanes
//! in the trace timeline.

use std::fmt::Debug;

/// Which member-level operation completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberIoOp {
    /// A `write_at` leg landed on the member's volatile view.
    Write,
    /// A `persist` leg made member bytes durable.
    Persist,
    /// A `read_durable_at` leg fetched durable member bytes.
    Read,
}

impl MemberIoOp {
    /// Stable lowercase label for exporters.
    pub fn name(self) -> &'static str {
        match self {
            MemberIoOp::Write => "write",
            MemberIoOp::Persist => "persist",
            MemberIoOp::Read => "read",
        }
    }
}

/// Receives one callback per member-level I/O on a composite device.
///
/// `member` is the composite's stable label for the member (`"stripe-0"`,
/// `"tier"`, `"spill"` — the same names
/// [`stats_report`](crate::PersistentDevice::stats_report) uses), `bytes`
/// the length of the leg, and `dur_nanos` the wall time the member call
/// took. Callbacks run on the I/O thread inside the member's submission
/// gate, so implementations must be cheap and non-blocking.
pub trait IoObserver: Send + Sync + Debug {
    /// Called after each successful member-level operation.
    fn member_io(&self, member: &str, op: MemberIoOp, bytes: u64, dur_nanos: u64);
}

//! Per-chunk digest tables: parallel-verifiable checkpoint integrity.
//!
//! The legacy digest disciplines (the iteration-seeded state digest and
//! the raw FNV checksum) are sequential folds over the whole payload, so
//! a restore that reads chunks with `r` parallel readers still verifies
//! them one after another on a single fold. A [`ChunkDigestTable`] breaks
//! that dependency: the persist pipeline records one FNV-1a digest per
//! fixed-size chunk as the chunks stream to the device, and recovery can
//! then verify chunk *i* the moment it lands — concurrently with the read
//! of chunk *i+1* and with every other chunk's verification.
//!
//! Tables are *optional and advisory*: they live in a dedicated region of
//! the store (never inside the slot payload), are bound to one commit by
//! the checkpoint counter and the committed payload digest, and are
//! themselves CRC-protected. A missing, stale, or torn table simply
//! drops recovery back to the legacy whole-payload verification — it can
//! cause extra work, never wrong acceptance.

use crate::error::DeviceError;
use crate::extent::{chunk_digest, fnv1a};
use crate::Result;

/// Table magic: ASCII `CDT1` (little-endian `u32`).
pub const DIGEST_TABLE_MAGIC: u32 = u32::from_le_bytes(*b"CDT1");

/// Encoded table header size: magic, count, `chunk_len`, `payload_len`,
/// `counter`, `payload_digest`.
pub const DIGEST_TABLE_HEADER: usize = 40;

/// Encoded size of one chunk digest.
pub const DIGEST_RECORD_SIZE: usize = 8;

/// A table of per-chunk FNV-1a digests for one committed checkpoint slot.
///
/// The payload is cut into `chunk_len`-byte chunks (the last one may be
/// shorter); `digests[i]` is [`chunk_digest`] of chunk `i`'s bytes. `counter` and
/// `payload_digest` tie the table to exactly one commit: a reader must
/// ignore the table unless both match the slot's committed metadata,
/// which is what makes concurrent slot recycling safe without ordering
/// the table write into the commit barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDigestTable {
    /// Bytes per chunk (the last chunk may be shorter). Zero only for an
    /// empty table.
    pub chunk_len: u64,
    /// Length of the payload the table covers.
    pub payload_len: u64,
    /// The checkpoint counter this table belongs to.
    pub counter: u64,
    /// The committed `meta.digest` of the payload (binding, like
    /// `counter`).
    pub payload_digest: u64,
    /// One FNV-1a digest per chunk, in payload order.
    pub digests: Vec<u64>,
}

/// Number of chunks a `payload_len`-byte payload cuts into.
pub fn chunk_count(payload_len: u64, chunk_len: u64) -> usize {
    if payload_len == 0 || chunk_len == 0 {
        0
    } else {
        payload_len.div_ceil(chunk_len) as usize
    }
}

impl ChunkDigestTable {
    /// Encoded size of a table holding `count` chunk digests.
    pub fn encoded_len_for(count: usize) -> u64 {
        (DIGEST_TABLE_HEADER + count * DIGEST_RECORD_SIZE + 8) as u64
    }

    /// Encoded size of this table.
    pub fn encoded_len(&self) -> u64 {
        Self::encoded_len_for(self.digests.len())
    }

    /// Builds a table over `payload` cut into `chunk_len`-byte chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero while the payload is not empty.
    pub fn build(payload: &[u8], chunk_len: u64, counter: u64, payload_digest: u64) -> Self {
        assert!(
            chunk_len > 0 || payload.is_empty(),
            "chunk_len must be positive for a non-empty payload"
        );
        let digests = payload
            .chunks(chunk_len.max(1) as usize)
            .map(chunk_digest)
            .collect();
        ChunkDigestTable {
            chunk_len,
            payload_len: payload.len() as u64,
            counter,
            payload_digest,
            digests,
        }
    }

    /// The `(offset, len)` of chunk `i` within the payload.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chunk_range(&self, i: usize) -> (u64, u64) {
        assert!(i < self.digests.len(), "chunk index out of range");
        let offset = i as u64 * self.chunk_len;
        (offset, self.chunk_len.min(self.payload_len - offset))
    }

    /// Verifies chunk `i`'s bytes against its recorded digest.
    pub fn verify_chunk(&self, i: usize, bytes: &[u8]) -> bool {
        self.chunk_range(i).1 == bytes.len() as u64 && chunk_digest(bytes) == self.digests[i]
    }

    /// Serializes the table: header, digests, trailing FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&DIGEST_TABLE_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.digests.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.chunk_len.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.payload_digest.to_le_bytes());
        for d in &self.digests {
            out.extend_from_slice(&d.to_le_bytes());
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a table from the head of `buf` (trailing bytes ignored).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CorruptDigestTable`] on a bad magic, a
    /// geometry that does not add up (count inconsistent with
    /// `payload_len`/`chunk_len`), or a checksum mismatch (torn write).
    pub fn decode(buf: &[u8]) -> Result<ChunkDigestTable> {
        if buf.len() < DIGEST_TABLE_HEADER + 8 {
            return Err(DeviceError::CorruptDigestTable);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != DIGEST_TABLE_MAGIC {
            return Err(DeviceError::CorruptDigestTable);
        }
        let count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        let table_len = Self::encoded_len_for(count) as usize;
        if table_len > buf.len() {
            return Err(DeviceError::CorruptDigestTable);
        }
        let crc_off = table_len - 8;
        let stored = u64::from_le_bytes(buf[crc_off..table_len].try_into().expect("8 bytes"));
        if fnv1a(&buf[..crc_off]) != stored {
            return Err(DeviceError::CorruptDigestTable);
        }
        let chunk_len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        if count != chunk_count(payload_len, chunk_len) {
            return Err(DeviceError::CorruptDigestTable);
        }
        let counter = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
        let payload_digest = u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes"));
        let mut digests = Vec::with_capacity(count);
        let mut off = DIGEST_TABLE_HEADER;
        for _ in 0..count {
            digests.push(u64::from_le_bytes(
                buf[off..off + 8].try_into().expect("8 bytes"),
            ));
            off += DIGEST_RECORD_SIZE;
        }
        Ok(ChunkDigestTable {
            chunk_len,
            payload_len,
            counter,
            payload_digest,
            digests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChunkDigestTable {
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        ChunkDigestTable::build(&payload, 128, 42, 0xdead_beef)
    }

    #[test]
    fn build_covers_every_byte_with_a_short_tail() {
        let t = sample();
        assert_eq!(t.digests.len(), 3);
        assert_eq!(t.chunk_range(0), (0, 128));
        assert_eq!(t.chunk_range(1), (128, 128));
        assert_eq!(t.chunk_range(2), (256, 44));
        assert_eq!(chunk_count(300, 128), 3);
        assert_eq!(chunk_count(256, 128), 2);
        assert_eq!(chunk_count(0, 128), 0);
    }

    #[test]
    fn verify_chunk_accepts_the_right_bytes_only() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let t = ChunkDigestTable::build(&payload, 128, 1, 2);
        assert!(t.verify_chunk(0, &payload[0..128]));
        assert!(t.verify_chunk(2, &payload[256..300]));
        assert!(!t.verify_chunk(0, &payload[128..256]), "wrong bytes");
        assert!(!t.verify_chunk(2, &payload[256..299]), "wrong length");
        let mut torn = payload[0..128].to_vec();
        torn[7] ^= 1;
        assert!(!t.verify_chunk(0, &torn));
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        let buf = t.encode();
        assert_eq!(buf.len() as u64, t.encoded_len());
        assert_eq!(ChunkDigestTable::decode(&buf).unwrap(), t);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let t = sample();
        let mut buf = t.encode();
        buf.extend_from_slice(&[0xEE; 64]);
        assert_eq!(ChunkDigestTable::decode(&buf).unwrap(), t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = ChunkDigestTable::build(&[], 0, 7, 0);
        assert_eq!(t.digests.len(), 0);
        assert_eq!(ChunkDigestTable::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = sample().encode();
        buf[0] ^= 0xFF;
        assert_eq!(
            ChunkDigestTable::decode(&buf),
            Err(DeviceError::CorruptDigestTable)
        );
    }

    #[test]
    fn decode_rejects_any_single_bitflip() {
        let good = sample().encode();
        for pos in 0..good.len() {
            let mut buf = good.clone();
            buf[pos] ^= 0x10;
            assert!(
                ChunkDigestTable::decode(&buf).is_err(),
                "bitflip at {pos} not detected"
            );
        }
    }

    #[test]
    fn decode_rejects_inconsistent_geometry() {
        // A valid CRC over a header whose count disagrees with
        // payload_len/chunk_len must still be rejected.
        let mut t = sample();
        t.digests.pop();
        let mut buf = Vec::new();
        buf.extend_from_slice(&DIGEST_TABLE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(t.digests.len() as u32).to_le_bytes());
        buf.extend_from_slice(&t.chunk_len.to_le_bytes());
        buf.extend_from_slice(&t.payload_len.to_le_bytes());
        buf.extend_from_slice(&t.counter.to_le_bytes());
        buf.extend_from_slice(&t.payload_digest.to_le_bytes());
        for d in &t.digests {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        let crc = fnv1a(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ChunkDigestTable::decode(&buf),
            Err(DeviceError::CorruptDigestTable)
        );
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert_eq!(
            ChunkDigestTable::decode(&[0u8; 16]),
            Err(DeviceError::CorruptDigestTable)
        );
    }
}

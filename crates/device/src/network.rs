//! Inter-machine network link and remote CPU memory.
//!
//! The Gemini baseline replaces persistent storage with remote DRAM: each
//! machine's training state is checkpointed into another machine's CPU
//! memory over the network. §5.2.1 measures 15 Gbps between the paper's GCP
//! VMs, which is what makes Gemini stall at high checkpoint frequencies.
//!
//! [`NetworkLink`] is a throttled, latency-modeled pipe; [`RemoteMemory`] is
//! the peer's DRAM, which survives *local* failures but is lost when the
//! peer itself fails.

use std::sync::Arc;

use parking_lot::RwLock;

use pccheck_util::{Bandwidth, ByteSize, SimDuration, TokenBucket};

use crate::error::DeviceError;
use crate::Result;

/// Network link parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// One-way latency added to each transfer.
    pub latency: SimDuration,
    /// Whether transfers actually block to model the bandwidth.
    pub throttled: bool,
}

impl NetworkConfig {
    /// The paper's measured 15 Gbps GCP a2-highgpu-1g link with a typical
    /// intra-zone RTT/2 of ~0.1 ms.
    pub fn gcp_a2() -> Self {
        NetworkConfig {
            bandwidth: Bandwidth::from_gbit_per_sec(15.0),
            latency: SimDuration::from_micros(100),
            throttled: true,
        }
    }

    /// An unthrottled profile for logic tests.
    pub fn fast_for_tests() -> Self {
        NetworkConfig {
            bandwidth: Bandwidth::from_gb_per_sec(1000.0),
            latency: SimDuration::ZERO,
            throttled: false,
        }
    }
}

/// A point-to-point link to a peer's memory.
///
/// # Examples
///
/// ```
/// use pccheck_device::{NetworkConfig, NetworkLink};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck_device::DeviceError> {
/// let link = NetworkLink::new(NetworkConfig::fast_for_tests(), ByteSize::from_kb(64));
/// link.send(0, b"replicated state")?;
/// let mut buf = [0u8; 16];
/// link.remote().read(0, &mut buf)?;
/// assert_eq!(&buf, b"replicated state");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkLink {
    config: NetworkConfig,
    bucket: Arc<TokenBucket>,
    remote: RemoteMemory,
}

impl NetworkLink {
    /// Creates a link whose peer exposes `remote_capacity` bytes of DRAM.
    pub fn new(config: NetworkConfig, remote_capacity: ByteSize) -> Self {
        let bucket = Arc::new(TokenBucket::new(config.bandwidth));
        NetworkLink {
            bucket,
            remote: RemoteMemory::new(remote_capacity),
            config,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Transfers `data` into the peer's memory at `offset`, blocking for the
    /// modeled bandwidth and latency.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PeerUnavailable`] if the peer has failed, or
    /// [`DeviceError::OutOfBounds`] for accesses beyond the remote capacity.
    pub fn send(&self, offset: u64, data: &[u8]) -> Result<()> {
        if self.config.throttled {
            if !self.config.latency.is_zero() {
                std::thread::sleep(self.config.latency.to_std());
            }
            self.bucket.acquire(ByteSize::from_bytes(data.len() as u64));
        }
        self.remote.write(offset, data)
    }

    /// The time this link needs to move `size` bytes (analytical model used
    /// by the DES and the tuner).
    pub fn transfer_time(&self, size: ByteSize) -> SimDuration {
        self.config.latency + self.config.bandwidth.transfer_time(size)
    }

    /// Access to the peer's memory (for recovery reads and failure
    /// injection).
    pub fn remote(&self) -> &RemoteMemory {
        &self.remote
    }
}

#[derive(Debug)]
struct RemoteState {
    data: Vec<u8>,
    failed: bool,
}

/// The peer machine's DRAM.
///
/// Plain volatile memory: writes are immediately visible (no persistence
/// step), but everything is lost if the *peer* fails —
/// the failure mode that distinguishes Gemini's in-memory checkpoints from
/// storage-backed ones.
#[derive(Debug)]
pub struct RemoteMemory {
    state: RwLock<RemoteState>,
    capacity: ByteSize,
}

impl RemoteMemory {
    /// Creates zeroed remote memory of the given capacity.
    pub fn new(capacity: ByteSize) -> Self {
        RemoteMemory {
            state: RwLock::new(RemoteState {
                data: vec![0; capacity.as_usize()],
                failed: false,
            }),
            capacity,
        }
    }

    /// Remote capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Returns `true` if the peer has failed.
    pub fn is_failed(&self) -> bool {
        self.state.read().failed
    }

    fn check(&self, offset: u64, len: u64, failed: bool) -> Result<()> {
        if failed {
            return Err(DeviceError::PeerUnavailable);
        }
        if offset
            .checked_add(len)
            .map_or(true, |end| end > self.capacity.as_u64())
        {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity: self.capacity.as_u64(),
            });
        }
        Ok(())
    }

    /// Writes into remote memory.
    ///
    /// # Errors
    ///
    /// [`DeviceError::PeerUnavailable`] after peer failure;
    /// [`DeviceError::OutOfBounds`] beyond capacity.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut state = self.state.write();
        self.check(offset, data.len() as u64, state.failed)?;
        let start = offset as usize;
        state.data[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads from remote memory.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write`](Self::write).
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let state = self.state.read();
        self.check(offset, buf.len() as u64, state.failed)?;
        let start = offset as usize;
        buf.copy_from_slice(&state.data[start..start + buf.len()]);
        Ok(())
    }

    /// Fails the peer: its DRAM contents are gone.
    pub fn fail_peer(&self) {
        let mut state = self.state.write();
        state.failed = true;
        state.data.iter_mut().for_each(|b| *b = 0);
    }

    /// Restores the peer with empty memory (a replacement VM).
    pub fn replace_peer(&self) {
        self.state.write().failed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn send_lands_in_remote_memory() {
        let link = NetworkLink::new(NetworkConfig::fast_for_tests(), ByteSize::from_kb(1));
        link.send(10, b"abc").unwrap();
        let mut buf = [0u8; 3];
        link.remote().read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn gcp_profile_matches_measured_bandwidth() {
        let cfg = NetworkConfig::gcp_a2();
        // 15 Gbps = 1.875 GB(decimal)/s ≈ 1.746 GiB/s; §2.2 quotes 1.88 GB/s.
        assert!((cfg.bandwidth.as_bytes_per_sec() - 1.875e9).abs() < 1e3);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let cfg = NetworkConfig {
            bandwidth: Bandwidth::from_bytes_per_sec(1000.0),
            latency: SimDuration::from_millis(5),
            throttled: false,
        };
        let link = NetworkLink::new(cfg, ByteSize::from_kb(1));
        let t = link.transfer_time(ByteSize::from_bytes(1000));
        assert_eq!(t, SimDuration::from_millis(1005));
    }

    #[test]
    fn throttled_send_takes_time() {
        let cfg = NetworkConfig {
            bandwidth: Bandwidth::from_mb_per_sec(20.0),
            latency: SimDuration::ZERO,
            throttled: true,
        };
        let link = NetworkLink::new(cfg, ByteSize::from_mb_u64(4));
        let payload = vec![1u8; 2 * 1024 * 1024];
        let start = Instant::now();
        link.send(0, &payload).unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.05, "2MB at 20MB/s should take ~0.1s: {secs}");
    }

    #[test]
    fn peer_failure_loses_contents() {
        let link = NetworkLink::new(NetworkConfig::fast_for_tests(), ByteSize::from_kb(1));
        link.send(0, b"precious").unwrap();
        link.remote().fail_peer();
        assert!(link.remote().is_failed());
        assert_eq!(link.send(0, b"x"), Err(DeviceError::PeerUnavailable));
        let mut buf = [0u8; 8];
        assert_eq!(
            link.remote().read(0, &mut buf),
            Err(DeviceError::PeerUnavailable)
        );
        link.remote().replace_peer();
        link.remote().read(0, &mut buf).unwrap();
        assert_eq!(&buf, &[0; 8], "replacement peer starts empty");
    }

    #[test]
    fn remote_bounds_checked() {
        let mem = RemoteMemory::new(ByteSize::from_bytes(16));
        assert!(matches!(
            mem.write(10, &[0; 10]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        assert!(mem.write(u64::MAX, &[0]).is_err());
        assert_eq!(mem.capacity().as_u64(), 16);
    }
}

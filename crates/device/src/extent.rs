//! Serialized extent tables for incremental (delta) checkpoint slots.
//!
//! A delta checkpoint persists only the byte ranges that changed since its
//! base checkpoint. The slot payload is laid out as
//! `[extent table][packed extent bytes]`: the table comes first so
//! recovery can decode it from the payload prefix without knowing the
//! dirty geometry in advance, and the extent bytes follow back to back in
//! table order. Each [`ExtentRecord`] names the range's offset/length in
//! the *full* state and carries an FNV-1a digest of its packed bytes;
//! the table header records the full state's length and digest so chained
//! recovery can verify the reconstructed state end to end.
//!
//! The table is self-checking: a trailing FNV-1a checksum covers the
//! header and every record, so a torn table write is detected before any
//! extent is trusted.

use crate::error::DeviceError;
use crate::Result;

/// Table magic: ASCII `XTB1` (little-endian `u32`).
pub const EXTENT_TABLE_MAGIC: u32 = u32::from_le_bytes(*b"XTB1");

/// Encoded table header size: magic, count, `full_len`, `full_digest`.
pub const EXTENT_TABLE_HEADER: usize = 24;

/// Encoded size of one [`ExtentRecord`].
pub const EXTENT_RECORD_SIZE: usize = 24;

// Canonical digest implementations live in `pccheck_util::fnv`; re-export
// them here so the historical `pccheck_device::{FNV_SEED, fnv1a, ...}`
// import paths keep working for every downstream crate.
pub use pccheck_util::fnv::{chunk_digest, fnv1a, fnv1a_fold, FNV_SEED};

/// One dirty range of the full state, with a digest of its packed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentRecord {
    /// Byte offset of the range in the full serialized state.
    pub offset: u64,
    /// Length of the range in bytes.
    pub len: u64,
    /// FNV-1a digest of the range's packed bytes.
    pub digest: u64,
}

/// The extent table at the head of a delta slot's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentTable {
    /// Length of the full state this delta applies to.
    pub full_len: u64,
    /// `StateDigest` of the full state *after* this delta is applied.
    pub full_digest: u64,
    /// The dirty ranges, in ascending offset order; their packed bytes
    /// follow the table back to back in this order.
    pub extents: Vec<ExtentRecord>,
}

impl ExtentTable {
    /// Encoded size of a table holding `count` extents.
    pub fn encoded_len_for(count: usize) -> u64 {
        (EXTENT_TABLE_HEADER + count * EXTENT_RECORD_SIZE + 8) as u64
    }

    /// Encoded size of this table.
    pub fn encoded_len(&self) -> u64 {
        Self::encoded_len_for(self.extents.len())
    }

    /// Total packed extent bytes the table describes.
    pub fn dirty_bytes(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Serializes the table: header, records, trailing FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&EXTENT_TABLE_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.extents.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.full_len.to_le_bytes());
        out.extend_from_slice(&self.full_digest.to_le_bytes());
        for e in &self.extents {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.digest.to_le_bytes());
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a table from the head of `buf` (extra trailing bytes — the
    /// packed extents — are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CorruptExtentTable`] on a bad magic, an
    /// impossible count, or a checksum mismatch (torn write).
    pub fn decode(buf: &[u8]) -> Result<ExtentTable> {
        if buf.len() < EXTENT_TABLE_HEADER + 8 {
            return Err(DeviceError::CorruptExtentTable);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != EXTENT_TABLE_MAGIC {
            return Err(DeviceError::CorruptExtentTable);
        }
        let count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        let table_len = Self::encoded_len_for(count) as usize;
        if table_len > buf.len() {
            return Err(DeviceError::CorruptExtentTable);
        }
        let crc_off = table_len - 8;
        let stored = u64::from_le_bytes(buf[crc_off..table_len].try_into().expect("8 bytes"));
        if fnv1a(&buf[..crc_off]) != stored {
            return Err(DeviceError::CorruptExtentTable);
        }
        let full_len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let full_digest = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let mut extents = Vec::with_capacity(count);
        let mut off = EXTENT_TABLE_HEADER;
        for _ in 0..count {
            extents.push(ExtentRecord {
                offset: u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("8 bytes")),
                digest: u64::from_le_bytes(buf[off + 16..off + 24].try_into().expect("8 bytes")),
            });
            off += EXTENT_RECORD_SIZE;
        }
        Ok(ExtentTable {
            full_len,
            full_digest,
            extents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExtentTable {
        ExtentTable {
            full_len: 4096,
            full_digest: 0xdead_beef_cafe_f00d,
            extents: vec![
                ExtentRecord {
                    offset: 0,
                    len: 100,
                    digest: 7,
                },
                ExtentRecord {
                    offset: 1000,
                    len: 24,
                    digest: 9,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        let buf = t.encode();
        assert_eq!(buf.len() as u64, t.encoded_len());
        assert_eq!(ExtentTable::decode(&buf).unwrap(), t);
    }

    #[test]
    fn decode_ignores_trailing_extent_bytes() {
        let t = sample();
        let mut buf = t.encode();
        buf.extend_from_slice(&[0xAB; 124]); // the packed extents
        assert_eq!(ExtentTable::decode(&buf).unwrap(), t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = ExtentTable {
            full_len: 0,
            full_digest: 0,
            extents: Vec::new(),
        };
        assert_eq!(ExtentTable::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = sample().encode();
        buf[0] ^= 0xFF;
        assert_eq!(
            ExtentTable::decode(&buf),
            Err(DeviceError::CorruptExtentTable)
        );
    }

    #[test]
    fn decode_rejects_any_single_bitflip() {
        let good = sample().encode();
        for pos in 0..good.len() {
            let mut buf = good.clone();
            buf[pos] ^= 0x10;
            assert!(
                ExtentTable::decode(&buf).is_err(),
                "bitflip at {pos} not detected"
            );
        }
    }

    #[test]
    fn decode_rejects_impossible_count() {
        let mut buf = sample().encode();
        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ExtentTable::decode(&buf),
            Err(DeviceError::CorruptExtentTable)
        );
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert_eq!(
            ExtentTable::decode(&[0u8; 8]),
            Err(DeviceError::CorruptExtentTable)
        );
    }

    #[test]
    fn dirty_bytes_sums_extent_lengths() {
        assert_eq!(sample().dirty_bytes(), 124);
        assert_eq!(sample().encoded_len(), 24 + 2 * 24 + 8);
    }

    #[test]
    fn fnv_matches_meta_checksum_convention() {
        // Same seed/prime as `pccheck::meta::checksum` — delta payload
        // digests computed here must verify over there.
        assert_eq!(fnv1a(&[]), FNV_SEED);
        assert_eq!(fnv1a_fold(fnv1a(b"ab"), b"cd"), fnv1a(b"abcd"));
    }
}

//! Storage substrate for the PCcheck reproduction.
//!
//! The paper's evaluation persists checkpoints to two storage medias — GCP
//! `pd-ssd` volumes (mmap + `msync`) and Intel Optane PMEM (non-temporal
//! stores / `clwb`, each followed by a fence) — staged through pinned DRAM
//! buffers, with the Gemini baseline instead shipping state over the
//! inter-VM network. None of that hardware is available here, so this crate
//! implements simulated devices that preserve the *semantics* the
//! checkpointing algorithms depend on:
//!
//! * **Persistence boundaries.** Writes land in a volatile view first
//!   (page cache for SSD, CPU caches / WC buffers for PMEM) and only survive
//!   a crash once an explicit persist operation ([`PersistentDevice::persist`])
//!   completes — `msync` for SSD, `sfence`/`clwb+sfence` for PMEM. PMEM
//!   fences are *per-thread*, matching §4.1's observation that the spawning
//!   thread cannot fence its workers' stores.
//! * **Bandwidth contention.** Each device meters writes through a shared
//!   token bucket, so concurrent checkpoint writers slow each other down the
//!   way they do on a real disk (§5.4.1: >4 concurrent checkpoints saturate
//!   the SSD).
//! * **Crash injection.** [`PersistentDevice::crash_now`] drops (or, under an
//!   adversarial policy, partially retains) unpersisted bytes, enabling
//!   property tests of the recovery invariant ("there is always at least one
//!   fully persisted checkpoint").
//!
//! # Examples
//!
//! ```
//! use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice};
//! use pccheck_util::ByteSize;
//!
//! # fn main() -> Result<(), pccheck_device::DeviceError> {
//! let ssd = SsdDevice::new(DeviceConfig::fast_for_tests(ByteSize::from_mb_u64(1)));
//! ssd.write_at(0, b"checkpoint bytes")?;
//! ssd.persist(0, 16)?; // msync
//! ssd.crash_now();
//! ssd.recover();
//! let mut buf = [0u8; 16];
//! ssd.read_at(0, &mut buf)?;
//! assert_eq!(&buf, b"checkpoint bytes");
//! # Ok(())
//! # }
//! ```

pub mod composite;
pub mod device;
pub mod digest_table;
pub mod dram;
pub mod error;
pub mod extent;
pub mod file;
pub mod network;
pub mod observer;
pub mod pmem;
pub mod region;
pub mod ssd;

pub use composite::{StripedDevice, TieredDevice, DEFAULT_MEMBER_QUEUE_DEPTH};
pub use device::{
    DeviceConfig, DeviceStats, DeviceStatsReport, PersistentDevice, SubmissionTicket,
};
pub use digest_table::{chunk_count, ChunkDigestTable, DIGEST_TABLE_HEADER, DIGEST_TABLE_MAGIC};
pub use dram::{HostBuffer, HostBufferPool};
pub use error::DeviceError;
pub use extent::{chunk_digest, fnv1a, fnv1a_fold, ExtentRecord, ExtentTable, FNV_SEED};
pub use file::FileDevice;
pub use network::{NetworkConfig, NetworkLink, RemoteMemory};
pub use observer::{IoObserver, MemberIoOp};
pub use pmem::{PmemDevice, PmemWriteMode};
pub use region::{CrashPolicy, MemRegion};
pub use ssd::SsdDevice;

/// Convenience alias for fallible device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

//! The [`PersistentDevice`] trait and shared device configuration.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use pccheck_util::{Bandwidth, ByteSize};

use crate::Result;

/// Configuration shared by the simulated storage devices.
///
/// The default bandwidth numbers come straight from the paper:
/// §1 measures ~16 GB / 37 s ≈ 0.44 GB/s for `torch.save`-style sequential
/// writes to the GCP `pd-ssd`; §3.3 measures 4.01 GB/s for non-temporal
/// stores to Optane and 2.46 GB/s for the `clwb` path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Device capacity.
    pub capacity: ByteSize,
    /// Sustained sequential write bandwidth.
    pub write_bandwidth: Bandwidth,
    /// Whether writes actually block on the token bucket. Disable to run the
    /// concrete engines at memory speed (unit tests of pure logic).
    pub throttled: bool,
}

impl DeviceConfig {
    /// GCP `pd-ssd` profile used throughout the paper's SSD experiments:
    /// the raw device write rate. (§1's 16 GB / 37 s measurement is the
    /// *single-threaded* torch.save path, roughly a third of what parallel
    /// writers achieve — the gap PCcheck's `p` writer threads exploit.)
    pub fn gcp_pd_ssd(capacity: ByteSize) -> Self {
        DeviceConfig {
            capacity,
            write_bandwidth: Bandwidth::from_gb_per_sec(1.5),
            throttled: true,
        }
    }

    /// Intel Optane AppDirect profile, non-temporal-store path (§3.3).
    pub fn optane_nt(capacity: ByteSize) -> Self {
        DeviceConfig {
            capacity,
            write_bandwidth: Bandwidth::from_gb_per_sec(4.01),
            throttled: true,
        }
    }

    /// Intel Optane AppDirect profile, `clwb` write-back path (§3.3).
    pub fn optane_clwb(capacity: ByteSize) -> Self {
        DeviceConfig {
            capacity,
            write_bandwidth: Bandwidth::from_gb_per_sec(2.46),
            throttled: true,
        }
    }

    /// An unthrottled profile for logic tests: infinite-speed media.
    pub fn fast_for_tests(capacity: ByteSize) -> Self {
        DeviceConfig {
            capacity,
            write_bandwidth: Bandwidth::from_gb_per_sec(1000.0),
            throttled: false,
        }
    }

    /// Returns the same config with a different bandwidth.
    pub fn with_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.write_bandwidth = bw;
        self
    }
}

/// Cumulative counters a device maintains, readable without locking the
/// data path.
#[derive(Debug, Default)]
pub struct DeviceStats {
    bytes_written: AtomicU64,
    bytes_persisted: AtomicU64,
    persist_ops: AtomicU64,
    bytes_read: AtomicU64,
    read_ops: AtomicU64,
    crashes: AtomicU64,
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
}

impl DeviceStats {
    pub(crate) fn record_write(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_persist(&self, n: u64) {
        self.bytes_persisted.fetch_add(n, Ordering::Relaxed);
        self.persist_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_crash(&self) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn submit_begin(&self) -> u64 {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
        depth
    }

    pub(crate) fn submit_end(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Total bytes accepted by `write_at`.
    pub fn bytes_written(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes_written.load(Ordering::Relaxed))
    }

    /// Total bytes covered by persist operations.
    pub fn bytes_persisted(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes_persisted.load(Ordering::Relaxed))
    }

    /// Number of persist (msync/fence) operations.
    pub fn persist_ops(&self) -> u64 {
        self.persist_ops.load(Ordering::Relaxed)
    }

    /// Total bytes returned by durable reads (the recovery path).
    pub fn bytes_read(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes_read.load(Ordering::Relaxed))
    }

    /// Number of durable read operations served.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Number of injected crashes.
    pub fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Submissions currently in flight on the device's queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the submission queue.
    pub fn peak_queue_depth(&self) -> u64 {
        self.peak_queue_depth.load(Ordering::Relaxed)
    }
}

/// One entry (a device or a composite member) in a
/// [`stats_report`](PersistentDevice::stats_report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStatsReport {
    /// Role of this entry: `"device"` for the target itself, or a member
    /// label like `"stripe-0"` / `"pmem-tier"` inside a composite.
    pub name: String,
    /// Total bytes accepted by `write_at`.
    pub bytes_written: u64,
    /// Total bytes covered by persist operations.
    pub bytes_persisted: u64,
    /// Number of persist (msync/fence) operations.
    pub persist_ops: u64,
    /// High-water mark of the submission queue.
    pub peak_queue_depth: u64,
}

impl DeviceStatsReport {
    /// Snapshots `stats` under `name`.
    pub fn from_stats(name: impl Into<String>, stats: &DeviceStats) -> Self {
        DeviceStatsReport {
            name: name.into(),
            bytes_written: stats.bytes_written().as_u64(),
            bytes_persisted: stats.bytes_persisted().as_u64(),
            persist_ops: stats.persist_ops(),
            peak_queue_depth: stats.peak_queue_depth(),
        }
    }
}

/// RAII handle for one entry on a device's submission queue: the depth
/// gauge is bumped on creation and released on drop (I/O completion).
///
/// Devices take a ticket internally around every `write_at`/`persist`, so
/// [`DeviceStats::queue_depth`] reflects the I/O concurrently in flight and
/// [`DeviceStats::peak_queue_depth`] its high-water mark. Composites use
/// the same mechanism per member to apply queue-depth-aware backpressure.
#[derive(Debug)]
pub struct SubmissionTicket<'a> {
    stats: &'a DeviceStats,
    depth: u64,
}

impl<'a> SubmissionTicket<'a> {
    /// Enters the submission queue tracked by `stats`.
    pub fn enter(stats: &'a DeviceStats) -> Self {
        let depth = stats.submit_begin();
        SubmissionTicket { stats, depth }
    }

    /// Queue depth observed when this submission entered (including it).
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

impl Drop for SubmissionTicket<'_> {
    fn drop(&mut self) {
        self.stats.submit_end();
    }
}

/// A persistent storage device with explicit persistence points and crash
/// injection.
///
/// Implementations are thread-safe: checkpoint writer threads call
/// [`write_at`](Self::write_at) and [`persist`](Self::persist) concurrently.
///
/// The trait is object-safe; engines hold `Arc<dyn PersistentDevice>` so the
/// same checkpointing code runs against SSD and PMEM.
pub trait PersistentDevice: std::fmt::Debug + Send + Sync {
    /// Device capacity in bytes.
    fn capacity(&self) -> ByteSize;

    /// Sustained write bandwidth of the media.
    fn bandwidth(&self) -> Bandwidth;

    /// Writes `data` at `offset` into the volatile view, blocking to respect
    /// the device bandwidth when throttling is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`](crate::DeviceError::OutOfBounds)
    /// for accesses beyond capacity, or
    /// [`DeviceError::Crashed`](crate::DeviceError::Crashed) while crashed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Makes `[offset, offset+len)` durable (msync for SSD; for PMEM this is
    /// the fence completing earlier stores by the *calling thread*).
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_at`](Self::write_at).
    fn persist(&self, offset: u64, len: u64) -> Result<()>;

    /// Reads the volatile view.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_at`](Self::write_at).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Reads the durable view (what a post-crash recovery would see).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`](crate::DeviceError::OutOfBounds)
    /// for accesses beyond capacity. Unlike the volatile accessors this works
    /// while crashed — it is exactly the recovery path.
    fn read_durable_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Injects a crash with the device's configured [`CrashPolicy`]
    /// (see [`crate::CrashPolicy`]); subsequent I/O fails until
    /// [`recover`](Self::recover).
    fn crash_now(&self);

    /// Clears the crashed state; the volatile view now equals the durable
    /// view (contents re-read from media after the failure).
    fn recover(&self);

    /// Cumulative I/O statistics.
    fn stats(&self) -> &DeviceStats;

    /// Enqueues one submission on the device's queue; the returned ticket
    /// releases the depth slot when dropped. Device implementations call
    /// this at the top of `write_at`/`persist`, so external callers rarely
    /// need it directly.
    fn submit(&self) -> SubmissionTicket<'_> {
        SubmissionTicket::enter(self.stats())
    }

    /// Current submission-queue depth of this device and, for composites,
    /// of each member (element 0 is always the device itself).
    fn queue_depths(&self) -> Vec<u64> {
        vec![self.stats().queue_depth()]
    }

    /// Per-device statistics snapshot; composites append one entry per
    /// member after their own.
    fn stats_report(&self) -> Vec<DeviceStatsReport> {
        vec![DeviceStatsReport::from_stats("device", self.stats())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_numbers() {
        let cap = ByteSize::from_gb(1.0);
        let ssd = DeviceConfig::gcp_pd_ssd(cap);
        assert!((ssd.write_bandwidth.as_gb_per_sec() - 1.5).abs() < 1e-9);
        let nt = DeviceConfig::optane_nt(cap);
        assert!((nt.write_bandwidth.as_gb_per_sec() - 4.01).abs() < 1e-9);
        let clwb = DeviceConfig::optane_clwb(cap);
        assert!((clwb.write_bandwidth.as_gb_per_sec() - 2.46).abs() < 1e-9);
        // §3.3's finding: nt-stores beat clwb.
        assert!(nt.write_bandwidth > clwb.write_bandwidth);
    }

    #[test]
    fn with_bandwidth_overrides() {
        let cfg = DeviceConfig::gcp_pd_ssd(ByteSize::from_mb_u64(1))
            .with_bandwidth(Bandwidth::from_gb_per_sec(2.0));
        assert!((cfg.write_bandwidth.as_gb_per_sec() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counters_accumulate() {
        let stats = DeviceStats::default();
        stats.record_write(10);
        stats.record_write(5);
        stats.record_persist(15);
        stats.record_read(7);
        stats.record_read(3);
        stats.record_crash();
        assert_eq!(stats.bytes_written().as_u64(), 15);
        assert_eq!(stats.bytes_persisted().as_u64(), 15);
        assert_eq!(stats.persist_ops(), 1);
        assert_eq!(stats.bytes_read().as_u64(), 10);
        assert_eq!(stats.read_ops(), 2);
        assert_eq!(stats.crashes(), 1);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = DeviceConfig::optane_nt(ByteSize::from_gb(2.0));
        // serde support is exercised through a JSON-ish debug round trip via
        // the Serialize/Deserialize derives; here we just ensure the derives
        // exist and the type is cloneable/comparable.
        let clone = cfg.clone();
        assert_eq!(cfg, clone);
    }
}

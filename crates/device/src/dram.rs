//! Pinned host (DRAM) buffer pool.
//!
//! PCcheck stages GPU→storage transfers through pinned DRAM buffers managed
//! in fixed-size chunks (§3.1/§3.2). The pool is the throughput–memory
//! tradeoff knob: when every chunk is occupied (copied from GPU but not yet
//! persisted), the next checkpoint's copy must wait for a chunk to free up.
//!
//! [`HostBufferPool`] provides blocking `acquire` / RAII release with a peak
//! usage counter, so experiments can verify Table 1's DRAM footprint (m to
//! 2·m for PCcheck).

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use pccheck_util::ByteSize;

use crate::error::DeviceError;
use crate::Result;

#[derive(Debug)]
struct PoolState {
    free: Vec<Box<[u8]>>,
    outstanding: usize,
    peak_outstanding: usize,
}

#[derive(Debug)]
struct PoolShared {
    chunk_size: ByteSize,
    total_chunks: usize,
    state: Mutex<PoolState>,
    cond: Condvar,
}

/// A pool of equally sized pinned DRAM chunks.
///
/// # Examples
///
/// ```
/// use pccheck_device::HostBufferPool;
/// use pccheck_util::ByteSize;
///
/// let pool = HostBufferPool::new(ByteSize::from_kb(4), 2);
/// let a = pool.acquire();
/// let b = pool.acquire();
/// assert_eq!(pool.available(), 0);
/// drop(a);
/// assert_eq!(pool.available(), 1);
/// # drop(b);
/// ```
#[derive(Debug, Clone)]
pub struct HostBufferPool {
    shared: Arc<PoolShared>,
}

impl HostBufferPool {
    /// Creates a pool of `chunks` buffers, each `chunk_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunks == 0` or `chunk_size` is zero.
    pub fn new(chunk_size: ByteSize, chunks: usize) -> Self {
        assert!(chunks > 0, "pool needs at least one chunk");
        assert!(!chunk_size.is_zero(), "chunk size must be nonzero");
        let free = (0..chunks)
            .map(|_| vec![0u8; chunk_size.as_usize()].into_boxed_slice())
            .collect();
        HostBufferPool {
            shared: Arc::new(PoolShared {
                chunk_size,
                total_chunks: chunks,
                state: Mutex::new(PoolState {
                    free,
                    outstanding: 0,
                    peak_outstanding: 0,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Size of each chunk.
    pub fn chunk_size(&self) -> ByteSize {
        self.shared.chunk_size
    }

    /// Total number of chunks in the pool.
    pub fn total_chunks(&self) -> usize {
        self.shared.total_chunks
    }

    /// Total DRAM this pool represents.
    pub fn total_bytes(&self) -> ByteSize {
        self.shared.chunk_size * self.shared.total_chunks as u64
    }

    /// Chunks currently free.
    pub fn available(&self) -> usize {
        self.shared.state.lock().free.len()
    }

    /// High-water mark of simultaneously outstanding chunks — used to verify
    /// the Table 1 memory-footprint bounds.
    pub fn peak_outstanding(&self) -> usize {
        self.shared.state.lock().peak_outstanding
    }

    /// Blocks until a chunk is free and returns it.
    ///
    /// This is exactly the stall §3.2 describes: "when all CPU memory chunks
    /// are occupied, upcoming checkpoints need to wait for free chunks".
    pub fn acquire(&self) -> HostBuffer {
        let mut state = self.shared.state.lock();
        while state.free.is_empty() {
            self.shared.cond.wait(&mut state);
        }
        let data = state.free.pop().expect("non-empty");
        state.outstanding += 1;
        state.peak_outstanding = state.peak_outstanding.max(state.outstanding);
        HostBuffer {
            data: Some(data),
            pool: Arc::clone(&self.shared),
        }
    }

    /// Tries to acquire a chunk without blocking.
    pub fn try_acquire(&self) -> Option<HostBuffer> {
        let mut state = self.shared.state.lock();
        let data = state.free.pop()?;
        state.outstanding += 1;
        state.peak_outstanding = state.peak_outstanding.max(state.outstanding);
        Some(HostBuffer {
            data: Some(data),
            pool: Arc::clone(&self.shared),
        })
    }

    /// Validates that `len` bytes fit into one chunk.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BufferTooLarge`] if `len` exceeds the chunk
    /// size.
    pub fn check_fits(&self, len: ByteSize) -> Result<()> {
        if len > self.shared.chunk_size {
            return Err(DeviceError::BufferTooLarge {
                requested: len.as_u64(),
                chunk: self.shared.chunk_size.as_u64(),
            });
        }
        Ok(())
    }
}

/// A DRAM chunk checked out of a [`HostBufferPool`]; returns to the pool on
/// drop.
#[derive(Debug)]
pub struct HostBuffer {
    data: Option<Box<[u8]>>,
    pool: Arc<PoolShared>,
}

impl HostBuffer {
    /// The chunk's bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.data.as_deref().expect("present until drop")
    }

    /// The chunk's bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.data.as_deref_mut().expect("present until drop")
    }

    /// Chunk capacity in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Always false — chunks are never zero-sized.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Drop for HostBuffer {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            let mut state = self.pool.state.lock();
            state.free.push(data);
            state.outstanding -= 1;
            drop(state);
            self.pool.cond.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn pool_geometry() {
        let pool = HostBufferPool::new(ByteSize::from_kb(4), 3);
        assert_eq!(pool.chunk_size(), ByteSize::from_kb(4));
        assert_eq!(pool.total_chunks(), 3);
        assert_eq!(pool.total_bytes(), ByteSize::from_kb(12));
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn acquire_and_release_cycle() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(16), 2);
        let mut a = pool.acquire();
        a.as_mut_slice()[0] = 42;
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
        assert_eq!(pool.available(), 1);
        drop(a);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn try_acquire_returns_none_when_exhausted() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(8), 1);
        let held = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(held);
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn acquire_blocks_until_chunk_freed() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(8), 1);
        let held = pool.acquire();
        let pool2 = pool.clone();
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            let _b = pool2.acquire();
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(100));
        drop(held);
        let waited = handle.join().unwrap();
        assert!(
            waited >= Duration::from_millis(80),
            "acquirer must have blocked: {waited:?}"
        );
    }

    #[test]
    fn peak_outstanding_tracks_high_water_mark() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(8), 4);
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        drop(b);
        let d = pool.acquire();
        assert_eq!(pool.peak_outstanding(), 3);
        drop((a, c, d));
        assert_eq!(pool.peak_outstanding(), 3, "peak is sticky");
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn check_fits_validates_against_chunk_size() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(100), 1);
        assert!(pool.check_fits(ByteSize::from_bytes(100)).is_ok());
        assert!(matches!(
            pool.check_fits(ByteSize::from_bytes(101)),
            Err(DeviceError::BufferTooLarge { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_rejected() {
        HostBufferPool::new(ByteSize::from_bytes(8), 0);
    }

    #[test]
    fn clone_shares_the_same_pool() {
        let pool = HostBufferPool::new(ByteSize::from_bytes(8), 2);
        let clone = pool.clone();
        let _a = pool.acquire();
        assert_eq!(clone.available(), 1);
    }

    #[test]
    fn exhausted_pool_blocks_acquirers_until_buffers_recycle() {
        // More concurrent consumers than staging buffers: every acquire
        // must block (never panic, never hand out a duplicate) and make
        // progress as soon as a buffer recycles.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let pool = HostBufferPool::new(ByteSize::from_bytes(64), 2);
        let holders = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        crossbeam::thread::scope(|s| {
            for w in 0..6u8 {
                let pool = pool.clone();
                let holders = Arc::clone(&holders);
                let completed = Arc::clone(&completed);
                s.spawn(move |_| {
                    for i in 0..20 {
                        let mut buf = pool.acquire();
                        let live = holders.fetch_add(1, Ordering::SeqCst) + 1;
                        assert!(live <= 2, "more buffers live than the pool owns");
                        buf.as_mut_slice()[0] = w.wrapping_mul(31).wrapping_add(i);
                        std::thread::yield_now();
                        holders.fetch_sub(1, Ordering::SeqCst);
                        drop(buf); // recycle: unblocks a waiting acquirer
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(completed.load(Ordering::SeqCst), 6 * 20);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.peak_outstanding(), 2, "never exceeded the pool size");
    }

    #[test]
    fn trickled_releases_wake_every_blocked_waiter() {
        // The lost-wakeup shape: k waiters blocked on an exhausted pool,
        // then k one-at-a-time releases. Each drop notifies exactly one
        // waiter; if any notification were consumed without a handoff
        // (or fired before the waiter queued), some waiter would sleep
        // forever and the join below would hang the test.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};

        let pool = HostBufferPool::new(ByteSize::from_bytes(32), 4);
        let held: Vec<_> = (0..4).map(|_| pool.acquire()).collect();
        let blocked = Arc::new(Barrier::new(5));
        let woken = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let blocked = Arc::clone(&blocked);
                let woken = Arc::clone(&woken);
                std::thread::spawn(move || {
                    blocked.wait();
                    let buf = pool.acquire();
                    woken.fetch_add(1, Ordering::SeqCst);
                    drop(buf);
                })
            })
            .collect();
        blocked.wait();
        // Give the waiters a beat to actually park on the condvar, then
        // trickle the buffers back one by one.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for buf in held {
            drop(buf);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 4);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn four_jobs_racing_for_one_chunk_all_finish_their_quota() {
        // Fair-wakeup check in the form that matters for the daemon:
        // four "jobs" (engine facades) share one chunk of staging DRAM.
        // Completion of every quota proves no waiter is starved by the
        // wakeup order; the holders gauge proves exclusivity.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let pool = HostBufferPool::new(ByteSize::from_bytes(64), 1);
        let holders = Arc::new(AtomicUsize::new(0));
        crossbeam::thread::scope(|s| {
            for job in 0..4u8 {
                let pool = pool.clone();
                let holders = Arc::clone(&holders);
                s.spawn(move |_| {
                    for i in 0..50 {
                        let mut buf = pool.acquire();
                        assert_eq!(holders.fetch_add(1, Ordering::SeqCst), 0);
                        buf.as_mut_slice()[0] = job.wrapping_mul(67).wrapping_add(i);
                        holders.fetch_sub(1, Ordering::SeqCst);
                        drop(buf);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.peak_outstanding(), 1);
    }
}

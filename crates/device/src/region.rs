//! The core persistence model: a byte region with a volatile and a durable
//! view.
//!
//! All simulated devices are built on [`MemRegion`]. Writes modify the
//! *volatile* view (page cache for SSD, CPU caches / write-combining buffers
//! for PMEM). Only [`MemRegion::persist`] copies a range into the *durable*
//! view. A crash replaces the volatile view with the durable one — except
//! under the adversarial [`CrashPolicy::RandomPartial`], where unpersisted
//! cache lines may or may not have reached the media, modeling the
//! reordering hazard §2.3 describes ("the order in which data is written to
//! the cache may differ from the order in which the content reaches PMEM").

use rand::Rng;

use pccheck_util::rng;
use pccheck_util::ByteSize;

use crate::error::DeviceError;
use crate::Result;

/// Granularity at which the adversarial crash policy decides survival,
/// matching a CPU cache line.
pub const CACHE_LINE: u64 = 64;

/// What happens to unpersisted bytes when the device crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Every unpersisted byte is lost (the conservative model).
    DropUnpersisted,
    /// Each dirty cache line independently survives with probability 1/2,
    /// derived deterministically from the seed. This is the adversarial
    /// model: durable state after the crash is a mix of old and new data,
    /// exactly the inconsistency a checkpointing algorithm must tolerate.
    RandomPartial {
        /// Seed for the survival coin flips.
        seed: u64,
    },
}

/// A byte region with separate volatile and durable views.
///
/// Not thread-safe by itself; devices wrap it in their own locking.
///
/// # Examples
///
/// ```
/// use pccheck_device::{CrashPolicy, MemRegion};
/// use pccheck_util::ByteSize;
///
/// # fn main() -> Result<(), pccheck_device::DeviceError> {
/// let mut r = MemRegion::new(ByteSize::from_kb(4));
/// r.write(0, b"hello")?;
/// r.crash(CrashPolicy::DropUnpersisted);
/// let mut buf = [0u8; 5];
/// r.read(0, &mut buf)?;
/// assert_eq!(&buf, b"\0\0\0\0\0"); // write was never persisted
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemRegion {
    volatile: Vec<u8>,
    durable: Vec<u8>,
    /// Dirty byte ranges not yet persisted, kept coalesced and sorted.
    dirty: Vec<(u64, u64)>, // (start, end) half-open
}

impl MemRegion {
    /// Creates a zero-filled region of the given capacity.
    pub fn new(capacity: ByteSize) -> Self {
        let n = capacity.as_usize();
        MemRegion {
            volatile: vec![0; n],
            durable: vec![0; n],
            dirty: Vec::new(),
        }
    }

    /// Region capacity in bytes.
    pub fn capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.volatile.len() as u64)
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        let cap = self.volatile.len() as u64;
        if offset.checked_add(len).map_or(true, |end| end > cap) {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity: cap,
            });
        }
        Ok(())
    }

    /// Writes `data` into the volatile view at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the write exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_bounds(offset, data.len() as u64)?;
        let start = offset as usize;
        self.volatile[start..start + data.len()].copy_from_slice(data);
        if !data.is_empty() {
            self.mark_dirty(offset, offset + data.len() as u64);
        }
        Ok(())
    }

    /// Reads from the volatile view (what a running process observes).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the read exceeds capacity.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        let start = offset as usize;
        buf.copy_from_slice(&self.volatile[start..start + buf.len()]);
        Ok(())
    }

    /// Reads from the durable view (what would survive a crash right now).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the read exceeds capacity.
    pub fn read_durable(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len() as u64)?;
        let start = offset as usize;
        buf.copy_from_slice(&self.durable[start..start + buf.len()]);
        Ok(())
    }

    /// Persists `[offset, offset+len)`: copies it from the volatile to the
    /// durable view and clears its dirty tracking.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfBounds`] if the range exceeds capacity.
    pub fn persist(&mut self, offset: u64, len: u64) -> Result<()> {
        self.check_bounds(offset, len)?;
        let (s, e) = (offset as usize, (offset + len) as usize);
        self.durable[s..e].copy_from_slice(&self.volatile[s..e]);
        self.clear_dirty(offset, offset + len);
        Ok(())
    }

    /// Persists everything (e.g., `msync` over the whole mapping).
    pub fn persist_all(&mut self) {
        self.durable.copy_from_slice(&self.volatile);
        self.dirty.clear();
    }

    /// Total number of dirty (unpersisted) bytes.
    pub fn dirty_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.dirty.iter().map(|(s, e)| e - s).sum())
    }

    /// Returns `true` if any byte in `[offset, offset+len)` is dirty.
    pub fn is_dirty(&self, offset: u64, len: u64) -> bool {
        let (qs, qe) = (offset, offset + len);
        self.dirty.iter().any(|&(s, e)| s < qe && qs < e)
    }

    /// Simulates a crash: the volatile view is reconstructed from the
    /// durable one according to `policy`.
    pub fn crash(&mut self, policy: CrashPolicy) {
        match policy {
            CrashPolicy::DropUnpersisted => {}
            CrashPolicy::RandomPartial { seed } => {
                // Some dirty cache lines made it to the media before the
                // crash even though no fence covered them.
                let mut coin = rng::seeded(seed);
                let ranges = self.dirty.clone();
                for (s, e) in ranges {
                    let mut line = s - (s % CACHE_LINE);
                    while line < e {
                        let lo = line.max(s) as usize;
                        let hi = (line + CACHE_LINE).min(e) as usize;
                        if coin.gen::<bool>() {
                            let (d, v) = (&mut self.durable, &self.volatile);
                            d[lo..hi].copy_from_slice(&v[lo..hi]);
                        }
                        line += CACHE_LINE;
                    }
                }
            }
        }
        self.volatile.copy_from_slice(&self.durable);
        self.dirty.clear();
    }

    fn mark_dirty(&mut self, start: u64, end: u64) {
        // Insert keeping ranges sorted and coalesced.
        let idx = self.dirty.partition_point(|&(s, _)| s < start);
        self.dirty.insert(idx, (start, end));
        self.coalesce();
    }

    fn clear_dirty(&mut self, start: u64, end: u64) {
        let mut next = Vec::with_capacity(self.dirty.len() + 1);
        for &(s, e) in &self.dirty {
            if e <= start || s >= end {
                next.push((s, e));
            } else {
                if s < start {
                    next.push((s, start));
                }
                if e > end {
                    next.push((end, e));
                }
            }
        }
        self.dirty = next;
    }

    fn coalesce(&mut self) {
        if self.dirty.len() < 2 {
            return;
        }
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.dirty.len());
        for &(s, e) in &self.dirty {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.dirty = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn region(cap: u64) -> MemRegion {
        MemRegion::new(ByteSize::from_bytes(cap))
    }

    #[test]
    fn write_then_read_sees_data() {
        let mut r = region(128);
        r.write(10, b"abc").unwrap();
        let mut buf = [0u8; 3];
        r.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn durable_view_lags_until_persist() {
        let mut r = region(128);
        r.write(0, b"xyz").unwrap();
        let mut buf = [0u8; 3];
        r.read_durable(0, &mut buf).unwrap();
        assert_eq!(&buf, &[0, 0, 0]);
        r.persist(0, 3).unwrap();
        r.read_durable(0, &mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn crash_drops_unpersisted() {
        let mut r = region(128);
        r.write(0, b"keep").unwrap();
        r.persist(0, 4).unwrap();
        r.write(64, b"lose").unwrap();
        r.crash(CrashPolicy::DropUnpersisted);
        let mut keep = [0u8; 4];
        r.read(0, &mut keep).unwrap();
        assert_eq!(&keep, b"keep");
        let mut lost = [0u8; 4];
        r.read(64, &mut lost).unwrap();
        assert_eq!(&lost, &[0, 0, 0, 0]);
        assert_eq!(r.dirty_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn random_partial_crash_is_line_granular_and_deterministic() {
        let build = |seed| {
            let mut r = region(512);
            r.write(0, &[0xAA; 512]).unwrap();
            r.crash(CrashPolicy::RandomPartial { seed });
            let mut buf = vec![0u8; 512];
            r.read(0, &mut buf).unwrap();
            buf
        };
        let a = build(3);
        let b = build(3);
        assert_eq!(a, b, "same seed, same surviving lines");
        // Survival decisions are per cache line: each 64-byte line is
        // uniformly 0xAA (survived) or 0x00 (lost).
        let mut survived = 0;
        for line in a.chunks(64) {
            assert!(
                line.iter().all(|&b| b == 0xAA) || line.iter().all(|&b| b == 0),
                "line must be all-or-nothing"
            );
            if line[0] == 0xAA {
                survived += 1;
            }
        }
        assert!(
            survived > 0 && survived < 8,
            "seed 3 gives a mix: {survived}"
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut r = region(16);
        assert!(matches!(
            r.write(10, &[0; 10]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        let mut buf = [0; 4];
        assert!(r.read(15, &mut buf).is_err());
        assert!(r.read_durable(15, &mut buf).is_err());
        assert!(r.persist(8, 9).is_err());
        // Offset overflow must not panic.
        assert!(r.write(u64::MAX, &[1]).is_err());
    }

    #[test]
    fn dirty_tracking_coalesces_adjacent_ranges() {
        let mut r = region(256);
        r.write(0, &[1; 10]).unwrap();
        r.write(10, &[2; 10]).unwrap();
        r.write(50, &[3; 10]).unwrap();
        assert_eq!(r.dirty_bytes().as_u64(), 30);
        assert!(r.is_dirty(5, 1));
        assert!(r.is_dirty(55, 1));
        assert!(!r.is_dirty(30, 5));
        r.persist(0, 20).unwrap();
        assert_eq!(r.dirty_bytes().as_u64(), 10);
        assert!(!r.is_dirty(0, 20));
    }

    #[test]
    fn partial_persist_splits_dirty_range() {
        let mut r = region(256);
        r.write(0, &[9; 100]).unwrap();
        r.persist(40, 20).unwrap();
        assert!(r.is_dirty(0, 40));
        assert!(!r.is_dirty(40, 20));
        assert!(r.is_dirty(60, 40));
        assert_eq!(r.dirty_bytes().as_u64(), 80);
    }

    #[test]
    fn persist_all_clears_everything() {
        let mut r = region(256);
        r.write(3, &[7; 200]).unwrap();
        r.persist_all();
        assert_eq!(r.dirty_bytes(), ByteSize::ZERO);
        let mut buf = [0u8; 1];
        r.read_durable(100, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn zero_length_write_is_noop() {
        let mut r = region(8);
        r.write(8, &[]).unwrap(); // at capacity boundary, zero len: fine
        assert_eq!(r.dirty_bytes(), ByteSize::ZERO);
    }

    proptest! {
        /// After persisting arbitrary ranges and crashing with the
        /// conservative policy, the surviving data equals exactly the
        /// persisted prefix of writes — never torn within a persisted range.
        #[test]
        fn persisted_ranges_survive_any_crash(
            writes in proptest::collection::vec((0u64..200, proptest::collection::vec(any::<u8>(), 1..32)), 1..20),
            persist_upto in 0usize..20,
        ) {
            let mut r = region(256);
            let mut shadow = vec![0u8; 256]; // expected durable content
            for (i, (off, data)) in writes.iter().enumerate() {
                let off = (*off).min(256 - data.len() as u64);
                r.write(off, data).unwrap();
                if i < persist_upto {
                    r.persist(off, data.len() as u64).unwrap();
                    shadow[off as usize..off as usize + data.len()].copy_from_slice(data);
                }
            }
            // Persisting a range persists the *current volatile* content, so
            // rebuild the shadow by replaying: volatile state evolves, and
            // each persisted range snapshots it. Simplest correct shadow:
            let mut volatile = vec![0u8; 256];
            let mut durable = vec![0u8; 256];
            for (i, (off, data)) in writes.iter().enumerate() {
                let off = (*off).min(256 - data.len() as u64) as usize;
                volatile[off..off + data.len()].copy_from_slice(data);
                if i < persist_upto {
                    durable[off..off + data.len()].copy_from_slice(&volatile[off..off + data.len()]);
                }
            }
            r.crash(CrashPolicy::DropUnpersisted);
            let mut got = vec![0u8; 256];
            r.read(0, &mut got).unwrap();
            prop_assert_eq!(got, durable);
            let _ = shadow;
        }

        /// The adversarial crash only ever leaves bytes that were written at
        /// some point (old durable or new volatile), never garbage.
        #[test]
        fn random_partial_crash_never_invents_bytes(seed in any::<u64>()) {
            let mut r = region(256);
            r.write(0, &[0x11; 128]).unwrap();
            r.persist(0, 128).unwrap();
            r.write(64, &[0x22; 128]).unwrap();
            r.crash(CrashPolicy::RandomPartial { seed });
            let mut got = vec![0u8; 256];
            r.read(0, &mut got).unwrap();
            for (i, b) in got.iter().enumerate() {
                let valid: &[u8] = match i {
                    0..=63 => &[0x11],
                    64..=127 => &[0x11, 0x22],
                    128..=191 => &[0x00, 0x22],
                    _ => &[0x00],
                };
                prop_assert!(valid.contains(b), "byte {i} = {b:#x} invalid");
            }
        }
    }
}

//! The training loop driving a checkpointing strategy.
//!
//! Reproduces Figure 3's phases: each iteration runs compute (`T`, modeled
//! as a calibrated delay), the weight update (`U`, which mutates the state
//! and synchronizes with in-flight snapshot copies), and at checkpoint
//! boundaries hands control to the [`Checkpointer`]. The loop measures
//! wall-clock throughput, which concrete experiments compare against the
//! no-checkpoint baseline to obtain the slowdowns of Figures 8, 10, 12–14.

use std::time::Instant;

use pccheck_telemetry::Telemetry;
use pccheck_util::SimDuration;

use crate::checkpoint::Checkpointer;
use crate::gpu::Gpu;

/// Configuration and driver for a concrete (real-time) training run.
#[derive(Debug)]
pub struct TrainingLoop {
    gpu: Gpu,
    /// Modeled compute time per iteration (the `T` phase). The update `U`
    /// is the actual state mutation and synchronization.
    iter_compute: SimDuration,
    /// Checkpoint every `interval` iterations; `None` disables.
    interval: Option<u64>,
    /// Emits `iteration_end` events for goodput/rollback accounting.
    telemetry: Telemetry,
}

/// Results of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: SimDuration,
    /// Iterations per second.
    pub throughput: f64,
    /// Number of checkpoint calls issued.
    pub checkpoints_requested: u64,
}

impl TrainingReport {
    /// Slowdown of this run relative to a baseline (≥ 1 when checkpointing
    /// costs anything).
    pub fn slowdown_vs(&self, baseline: &TrainingReport) -> f64 {
        baseline.throughput / self.throughput
    }
}

impl TrainingLoop {
    /// Creates a loop over `gpu` with the given modeled compute time.
    pub fn new(gpu: Gpu, iter_compute: SimDuration) -> Self {
        TrainingLoop {
            gpu,
            iter_compute,
            interval: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Checkpoint every `interval` iterations (the paper's `f`).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn with_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be >= 1");
        self.interval = Some(interval);
        self
    }

    /// Records an `iteration_end` event per iteration into `telemetry`,
    /// feeding the stall/goodput accountant. Use the same handle the
    /// checkpointer records into so both land on one timeline.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The GPU being trained.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Runs `iterations` iterations, invoking `ckpt` at boundaries, and
    /// drains outstanding checkpoints before reporting.
    ///
    /// The checkpoint fires after the update of iterations
    /// `interval-1, 2*interval-1, ...` — i.e., every `interval` iterations,
    /// starting once `interval` iterations of progress exist.
    pub fn run(&self, iterations: u64, ckpt: &dyn Checkpointer) -> TrainingReport {
        let start = Instant::now();
        let mut requested = 0u64;
        for iter in 0..iterations {
            // T: forward/backward compute.
            if !self.iter_compute.is_zero() {
                std::thread::sleep(self.iter_compute.to_std());
            }
            // U: weight update (blocks on in-flight snapshot copies).
            self.gpu.update();
            self.telemetry.iteration_end(iter + 1);
            // C/P: checkpoint boundary.
            if let Some(f) = self.interval {
                if (iter + 1) % f == 0 {
                    ckpt.checkpoint(&self.gpu, iter + 1);
                    requested += 1;
                }
            }
        }
        ckpt.drain();
        let elapsed = SimDuration::from_secs_f64(start.elapsed().as_secs_f64().max(1e-9));
        TrainingReport {
            iterations,
            elapsed,
            throughput: iterations as f64 / elapsed.as_secs_f64(),
            checkpoints_requested: requested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::NullCheckpointer;
    use crate::gpu::GpuConfig;
    use crate::tensor::TrainingState;
    use pccheck_util::ByteSize;

    fn tiny_gpu(seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(120), seed),
        )
    }

    #[test]
    fn run_advances_state_by_iteration_count() {
        let gpu = tiny_gpu(1);
        let lp = TrainingLoop::new(gpu.clone(), SimDuration::ZERO);
        let report = lp.run(10, &NullCheckpointer::new());
        assert_eq!(report.iterations, 10);
        assert_eq!(gpu.step_count(), 10);
        assert_eq!(report.checkpoints_requested, 0);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn interval_counts_checkpoints() {
        let lp = TrainingLoop::new(tiny_gpu(2), SimDuration::ZERO).with_interval(3);
        let report = lp.run(10, &NullCheckpointer::new());
        // Iterations 3, 6, 9 fire.
        assert_eq!(report.checkpoints_requested, 3);
    }

    #[test]
    fn interval_equal_to_run_fires_once() {
        let lp = TrainingLoop::new(tiny_gpu(3), SimDuration::ZERO).with_interval(5);
        let report = lp.run(5, &NullCheckpointer::new());
        assert_eq!(report.checkpoints_requested, 1);
    }

    #[test]
    fn compute_time_bounds_throughput() {
        let lp = TrainingLoop::new(tiny_gpu(4), SimDuration::from_millis(20));
        let report = lp.run(5, &NullCheckpointer::new());
        assert!(
            report.throughput <= 50.5,
            "20ms/iter caps throughput at 50/s, got {}",
            report.throughput
        );
        assert!(report.elapsed.as_secs_f64() >= 0.099);
    }

    #[test]
    fn slowdown_is_ratio_of_throughputs() {
        let fast = TrainingReport {
            iterations: 10,
            elapsed: SimDuration::from_secs(1),
            throughput: 10.0,
            checkpoints_requested: 0,
        };
        let slow = TrainingReport {
            iterations: 10,
            elapsed: SimDuration::from_secs(2),
            throughput: 5.0,
            checkpoints_requested: 0,
        };
        assert_eq!(slow.slowdown_vs(&fast), 2.0);
        assert_eq!(fast.slowdown_vs(&fast), 1.0);
    }

    #[test]
    #[should_panic(expected = "interval must be >= 1")]
    fn zero_interval_rejected() {
        TrainingLoop::new(tiny_gpu(5), SimDuration::ZERO).with_interval(0);
    }

    #[test]
    fn telemetry_sees_every_iteration() {
        use pccheck_telemetry::{EventKind, RunAccounting, Telemetry};

        let telemetry = Telemetry::enabled();
        let lp =
            TrainingLoop::new(tiny_gpu(7), SimDuration::ZERO).with_telemetry(telemetry.clone());
        lp.run(6, &NullCheckpointer::new());
        let events = telemetry.events();
        let iters: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::IterationEnd { iteration } => Some(iteration),
                _ => None,
            })
            .collect();
        assert_eq!(iters, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(RunAccounting::from_events(&events).iterations, 6);
    }

    #[test]
    fn checkpointer_sees_correct_iteration_numbers() {
        use parking_lot::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<u64>>);
        impl Checkpointer for Recorder {
            fn checkpoint(&self, _gpu: &Gpu, iteration: u64) {
                self.0.lock().push(iteration);
            }
            fn drain(&self) {}
            fn last_committed(&self) -> Option<crate::checkpoint::CheckpointOutcome> {
                None
            }
            fn name(&self) -> &str {
                "recorder"
            }
        }

        let rec = Recorder::default();
        let lp = TrainingLoop::new(tiny_gpu(6), SimDuration::ZERO).with_interval(2);
        lp.run(7, &rec);
        assert_eq!(*rec.0.lock(), vec![2, 4, 6]);
    }
}

//! Simulated GPU training substrate for the PCcheck reproduction.
//!
//! The paper evaluates checkpointing during DNN training on NVIDIA GPUs.
//! A checkpointing framework interacts with training through a narrow
//! surface, all of which this crate models without real hardware:
//!
//! * **A mutating training state of size `m`** — [`TrainingState`] holds the
//!   model's parameter and optimizer tensors as real bytes that change
//!   deterministically every update step, so checkpoint/restore round-trips
//!   can be verified bit-for-bit (see [`TrainingState::digest`]).
//! * **An iteration cadence `t`** — [`models`] catalogs the paper's Table 3
//!   workloads with calibrated iteration times and checkpoint sizes.
//! * **The GPU→DRAM copy path** — [`CopyEngine`] models DMA copy engines
//!   over PCIe with pinned-memory bandwidth (§3.3's preferred path) or the
//!   kernel-copy path GPM uses (which occupies the compute engine).
//! * **The update/snapshot race** — [`Gpu`] guards the weights with a
//!   readers–writer discipline: checkpoint copies hold read access while
//!   the next update needs exclusive access, reproducing the `T→U` stall in
//!   Figure 6 of the paper.
//!
//! Checkpointing strategies (PCcheck in `pccheck`, the baselines in
//! `pccheck-baselines`) implement the [`Checkpointer`] trait and get driven
//! by [`TrainingLoop`].
//!
//! # Examples
//!
//! ```
//! use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
//! use pccheck_util::ByteSize;
//!
//! let state = TrainingState::synthetic(ByteSize::from_kb(64), 42);
//! let gpu = Gpu::new(GpuConfig::fast_for_tests(), state);
//! let d0 = gpu.with_weights(|w| w.digest());
//! gpu.update(); // one optimizer step: every tensor mutates
//! let d1 = gpu.with_weights(|w| w.digest());
//! assert_ne!(d0, d1);
//! ```

pub mod checkpoint;
pub mod copy;
pub mod gpu;
pub mod models;
pub mod tensor;
pub mod training;

pub use checkpoint::{CheckpointOutcome, Checkpointer, NullCheckpointer};
pub use copy::{CopyEngine, CopyEngineConfig, CopyPath};
pub use gpu::{
    merge_ranges, Gpu, GpuConfig, OwnedWeightsGuard, RestoreTarget, SnapshotSource, WeightsGuard,
};
pub use models::{GpuKind, ModelSpec, ModelZoo, SparseModelSpec};
pub use tensor::{StateDigest, Tensor, TrainingState};
pub use training::{TrainingLoop, TrainingReport};

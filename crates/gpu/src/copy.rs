//! GPU→DRAM copy paths.
//!
//! §3.3 of the paper compares the ways checkpoint bytes can leave the GPU:
//! DMA copy engines with pinned memory (+DDIO) give the highest bandwidth
//! and do not occupy the GPU's compute resources, whereas GPM's copy
//! *kernels* run on the SMs, stalling training while they copy.
//! [`CopyEngine`] models both paths: the same throttled memcpy, but the
//! kernel path reports that it holds the compute engine so the training
//! loop can account the stall.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pccheck_util::{Bandwidth, ByteSize, TokenBucket};

use crate::models::GpuKind;

/// Which hardware path moves the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CopyPath {
    /// DMA copy engines with `cudaHostRegister`-pinned destination memory:
    /// full PCIe bandwidth, compute proceeds concurrently. PCcheck's choice.
    #[default]
    DmaPinned,
    /// DMA copy engines into pageable memory: the driver bounce-buffers,
    /// roughly halving effective bandwidth.
    DmaPageable,
    /// Copy kernels running on the SMs (GPM's UVM approach): compute is
    /// blocked for the duration of the copy.
    Kernel,
}

impl CopyPath {
    /// Bandwidth multiplier relative to the pinned DMA path.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            CopyPath::DmaPinned => 1.0,
            CopyPath::DmaPageable => 0.5,
            // Kernel copies reach similar PCIe utilization for large
            // transfers but pay kernel-launch overheads on chunks.
            CopyPath::Kernel => 0.9,
        }
    }

    /// Whether this path occupies the GPU's execution engines, stalling
    /// training kernels while a copy is in flight.
    pub fn blocks_compute(self) -> bool {
        matches!(self, CopyPath::Kernel)
    }
}

/// Copy-engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyEngineConfig {
    /// Raw PCIe link bandwidth for pinned DMA.
    pub pcie_bandwidth: Bandwidth,
    /// The copy path in use.
    pub path: CopyPath,
    /// Whether Direct Data I/O is enabled (inbound I/O lands in LLC). §3.3
    /// finds DDIO-on measurably faster; we model a 10% haircut when off.
    pub ddio: bool,
    /// Whether copies actually block on the token bucket.
    pub throttled: bool,
}

impl CopyEngineConfig {
    /// PCcheck's preferred configuration on a given GPU: pinned DMA, DDIO on.
    pub fn for_gpu(gpu: GpuKind) -> Self {
        CopyEngineConfig {
            pcie_bandwidth: gpu.pcie_bandwidth(),
            path: CopyPath::DmaPinned,
            ddio: true,
            throttled: true,
        }
    }

    /// Unthrottled configuration for logic tests.
    pub fn fast_for_tests() -> Self {
        CopyEngineConfig {
            pcie_bandwidth: Bandwidth::from_gb_per_sec(1000.0),
            path: CopyPath::DmaPinned,
            ddio: true,
            throttled: false,
        }
    }

    /// Returns the same config with a different copy path.
    pub fn with_path(mut self, path: CopyPath) -> Self {
        self.path = path;
        self
    }

    /// Effective bandwidth after path and DDIO effects.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        let ddio_factor = if self.ddio { 1.0 } else { 0.9 };
        self.pcie_bandwidth
            .scaled(self.path.bandwidth_factor() * ddio_factor)
    }
}

/// A GPU's DMA copy engine (or copy-kernel path), shared by all concurrent
/// checkpoint copies on that GPU.
///
/// # Examples
///
/// ```
/// use pccheck_gpu::{CopyEngine, CopyEngineConfig};
///
/// let engine = CopyEngine::new(CopyEngineConfig::fast_for_tests());
/// let src = vec![7u8; 1024];
/// let mut dst = vec![0u8; 1024];
/// engine.copy_to_host(&src, &mut dst);
/// assert_eq!(src, dst);
/// ```
#[derive(Debug)]
pub struct CopyEngine {
    config: CopyEngineConfig,
    bucket: Arc<TokenBucket>,
    copied: AtomicU64,
}

impl CopyEngine {
    /// Creates a copy engine.
    pub fn new(config: CopyEngineConfig) -> Self {
        let bucket = Arc::new(TokenBucket::new(config.effective_bandwidth()));
        CopyEngine {
            config,
            bucket,
            copied: AtomicU64::new(0),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &CopyEngineConfig {
        &self.config
    }

    /// Copies `src` into `dst`, blocking to respect PCIe bandwidth when
    /// throttled.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than `src`.
    pub fn copy_to_host(&self, src: &[u8], dst: &mut [u8]) {
        assert!(dst.len() >= src.len(), "destination too small");
        self.meter(ByteSize::from_bytes(src.len() as u64));
        dst[..src.len()].copy_from_slice(src);
    }

    /// Consumes `size` of PCIe bandwidth without moving bytes. Used when
    /// the payload is materialized elsewhere (e.g., serialized straight out
    /// of tensor storage) but the transfer must still be metered.
    pub fn meter(&self, size: ByteSize) {
        self.copied.fetch_add(size.as_u64(), Ordering::Relaxed);
        if self.config.throttled && !size.is_zero() {
            self.bucket.acquire(size);
        }
    }

    /// Total bytes metered through this engine (all concurrent copies).
    /// Dividing by the run window and [`effective_bandwidth`]
    /// (`CopyEngineConfig::effective_bandwidth`) gives the PCIe
    /// utilization gauge telemetry reports.
    pub fn bytes_copied(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    /// Analytical transfer time for `size` bytes (used by the DES and
    /// tuner).
    pub fn transfer_time(&self, size: ByteSize) -> pccheck_util::SimDuration {
        self.config.effective_bandwidth().transfer_time(size)
    }

    /// Whether in-flight copies stall training kernels (GPM's path).
    pub fn blocks_compute(&self) -> bool {
        self.config.path.blocks_compute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn copy_moves_bytes() {
        let e = CopyEngine::new(CopyEngineConfig::fast_for_tests());
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        e.copy_to_host(&src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn copy_into_larger_destination_is_fine() {
        let e = CopyEngine::new(CopyEngineConfig::fast_for_tests());
        let mut dst = vec![9u8; 8];
        e.copy_to_host(&[1, 2], &mut dst);
        assert_eq!(&dst[..2], &[1, 2]);
        assert_eq!(dst[2], 9);
    }

    #[test]
    #[should_panic(expected = "destination too small")]
    fn copy_into_smaller_destination_panics() {
        let e = CopyEngine::new(CopyEngineConfig::fast_for_tests());
        let mut dst = vec![0u8; 1];
        e.copy_to_host(&[1, 2], &mut dst);
    }

    #[test]
    fn metered_bytes_accumulate() {
        let e = CopyEngine::new(CopyEngineConfig::fast_for_tests());
        assert_eq!(e.bytes_copied(), 0);
        let src = vec![0u8; 100];
        let mut dst = vec![0u8; 100];
        e.copy_to_host(&src, &mut dst);
        e.meter(ByteSize::from_bytes(28));
        assert_eq!(e.bytes_copied(), 128);
    }

    #[test]
    fn pinned_dma_is_fastest_path() {
        let base = CopyEngineConfig::for_gpu(GpuKind::A100);
        let pinned = base.clone().effective_bandwidth();
        let pageable = base
            .clone()
            .with_path(CopyPath::DmaPageable)
            .effective_bandwidth();
        let kernel = base.with_path(CopyPath::Kernel).effective_bandwidth();
        assert!(pinned > pageable);
        assert!(pinned > kernel);
    }

    #[test]
    fn ddio_off_costs_bandwidth() {
        let mut cfg = CopyEngineConfig::for_gpu(GpuKind::A100);
        let on = cfg.effective_bandwidth();
        cfg.ddio = false;
        let off = cfg.effective_bandwidth();
        assert!(on > off);
    }

    #[test]
    fn only_kernel_path_blocks_compute() {
        assert!(!CopyPath::DmaPinned.blocks_compute());
        assert!(!CopyPath::DmaPageable.blocks_compute());
        assert!(CopyPath::Kernel.blocks_compute());
        let e = CopyEngine::new(CopyEngineConfig::fast_for_tests().with_path(CopyPath::Kernel));
        assert!(e.blocks_compute());
    }

    #[test]
    fn throttled_copy_takes_time() {
        let cfg = CopyEngineConfig {
            pcie_bandwidth: Bandwidth::from_mb_per_sec(20.0),
            path: CopyPath::DmaPinned,
            ddio: true,
            throttled: true,
        };
        let e = CopyEngine::new(cfg);
        let src = vec![1u8; 2 * 1024 * 1024];
        let mut dst = vec![0u8; 2 * 1024 * 1024];
        let start = Instant::now();
        e.copy_to_host(&src, &mut dst);
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.05, "2MB at 20MB/s should take ~0.1s: {secs}");
    }

    #[test]
    fn transfer_time_analytical_model() {
        let cfg = CopyEngineConfig {
            pcie_bandwidth: Bandwidth::from_gb_per_sec(12.0),
            path: CopyPath::DmaPinned,
            ddio: true,
            throttled: false,
        };
        let e = CopyEngine::new(cfg);
        let t = e.transfer_time(ByteSize::from_gb(12.0));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}

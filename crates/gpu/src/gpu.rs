//! The simulated accelerator: device memory holding the training state,
//! a copy engine, and the update/snapshot synchronization.
//!
//! Figure 6 of the paper shows the residual stall PCcheck accepts: the next
//! iteration's *update* phase (`U`) must wait until the in-flight GPU→DRAM
//! copy (`C`) of the previous checkpoint finishes, because both touch the
//! model weights. (Keeping a second weight copy on the GPU would remove the
//! stall but costs scarce GPU memory — §3.1 decides against it.)
//!
//! [`Gpu`] reproduces this with a readers–writer discipline: checkpoint
//! copies hold read access ([`Gpu::lock_weights_shared`]) while
//! [`Gpu::update`] takes exclusive access.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use pccheck_util::ByteSize;

use crate::copy::{CopyEngine, CopyEngineConfig};
use crate::tensor::{StateDigest, TrainingState};

/// GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Device memory capacity (A100-40GB etc.). Informational; the
    /// simulation does not enforce it beyond the state fitting at all.
    pub memory: ByteSize,
    /// Copy-engine configuration.
    pub copy: CopyEngineConfig,
}

impl GpuConfig {
    /// An unthrottled profile for logic tests.
    pub fn fast_for_tests() -> Self {
        GpuConfig {
            memory: ByteSize::from_gb(40.0),
            copy: CopyEngineConfig::fast_for_tests(),
        }
    }
}

/// A simulated GPU owning a [`TrainingState`].
///
/// Cloning the handle shares the same device (`Arc` semantics).
///
/// # Examples
///
/// ```
/// use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// // Snapshot while training would continue:
/// let guard = gpu.lock_weights_shared();
/// let mut host = vec![0u8; guard.size().as_usize()];
/// guard.copy_range_to_host(0, &mut host);
/// drop(guard);
/// gpu.update();
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    inner: Arc<GpuInner>,
}

#[derive(Debug)]
struct GpuInner {
    config: GpuConfig,
    state: Arc<RwLock<TrainingState>>,
    engine: CopyEngine,
    /// Byte ranges (serialized-payload coordinates) mutated since the last
    /// snapshot guard drained them. Updates record here while holding the
    /// state write lock; guards drain under the read lock, so the set a
    /// snapshot captures is exactly what changed since the previous one.
    dirty: Mutex<Vec<(u64, u64)>>,
}

impl Gpu {
    /// Creates a GPU holding `state`.
    ///
    /// # Panics
    ///
    /// Panics if the state does not fit in device memory.
    pub fn new(config: GpuConfig, state: TrainingState) -> Self {
        assert!(
            state.size() <= config.memory,
            "training state {} exceeds GPU memory {}",
            state.size(),
            config.memory
        );
        let engine = CopyEngine::new(config.copy.clone());
        // A never-checkpointed state is entirely dirty: the first snapshot
        // must capture every byte.
        let full = (0, state.size().as_u64());
        Gpu {
            inner: Arc::new(GpuInner {
                config,
                state: Arc::new(RwLock::new(state)),
                engine,
                dirty: Mutex::new(vec![full]),
            }),
        }
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.inner.config
    }

    /// The copy engine (shared by concurrent checkpoint copies).
    pub fn copy_engine(&self) -> &CopyEngine {
        &self.inner.engine
    }

    /// Size of the training state — the checkpoint size `m`.
    pub fn state_size(&self) -> ByteSize {
        self.inner.state.read().size()
    }

    /// Applies one update step (the `U` phase). Blocks while any snapshot
    /// copy holds the weights, reproducing the Figure 6 stall.
    pub fn update(&self) {
        let mut state = self.inner.state.write();
        state.step();
        let size = state.size().as_u64();
        self.inner.dirty.lock().push((0, size));
    }

    /// Applies one *sparse* update step: only the trailing
    /// `update_fraction` of each tensor mutates (see
    /// [`TrainingState::step_sparse`]), and the mutated ranges are recorded
    /// in the dirty tracker so the next snapshot can persist a delta.
    pub fn update_sparse(&self, update_fraction: f64) {
        let mut state = self.inner.state.write();
        let ranges = state.step_sparse(update_fraction);
        self.inner.dirty.lock().extend(ranges);
    }

    /// Marks the entire state dirty again — call after abandoning a
    /// snapshot whose drained dirty set never reached a committed
    /// checkpoint (a failed or aborted delta attempt), so the next
    /// snapshot captures everything.
    pub fn mark_all_dirty(&self) {
        let state = self.inner.state.read();
        let size = state.size().as_u64();
        self.inner.dirty.lock().push((0, size));
    }

    /// Runs `f` with read access to the weights.
    pub fn with_weights<R>(&self, f: impl FnOnce(&TrainingState) -> R) -> R {
        f(&self.inner.state.read())
    }

    /// Acquires shared (read) access to the weights for a checkpoint copy.
    /// While any [`WeightsGuard`] is alive, [`update`](Self::update) blocks.
    pub fn lock_weights_shared(&self) -> WeightsGuard<'_> {
        let state = self.inner.state.read();
        let dirty = self.drain_dirty();
        WeightsGuard {
            state,
            engine: &self.inner.engine,
            dirty,
        }
    }

    /// Like [`lock_weights_shared`](Self::lock_weights_shared), but the
    /// returned guard owns its reference and is `Send`: a background
    /// snapshot-copy thread can hold the weights while the training thread
    /// proceeds with the next iteration's compute phase — exactly PCcheck's
    /// overlap of `C` with `T` (Figure 6).
    pub fn lock_weights_shared_owned(&self) -> OwnedWeightsGuard {
        let state = RwLock::read_arc(&self.inner.state);
        let dirty = self.drain_dirty();
        OwnedWeightsGuard {
            state,
            gpu: self.clone(),
            dirty,
        }
    }

    /// Drains the dirty tracker into a merged, sorted range set. Called
    /// under the state read lock so no update can interleave: updates need
    /// the write lock, and the tracker is only pushed to from there.
    ///
    /// Note the drain makes snapshots consume the dirty set: delta
    /// checkpointing assumes one snapshot at a time reaches a commit (the
    /// engine's serial checkpoint discipline). A concurrent second guard
    /// would see an empty set; per-extent digests at recovery catch any
    /// misuse.
    fn drain_dirty(&self) -> Vec<(u64, u64)> {
        merge_ranges(std::mem::take(&mut *self.inner.dirty.lock()))
    }

    /// Restores the training state from a recovered checkpoint payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the current layout.
    pub fn restore(&self, payload: &[u8], step: u64) {
        let mut state = self.inner.state.write();
        let layout = state.layout();
        *state = TrainingState::restore(&layout, payload, step);
        // The restored state has no committed base on the new timeline.
        let size = state.size().as_u64();
        *self.inner.dirty.lock() = vec![(0, size)];
    }

    /// Begins a streaming restore of `total` serialized bytes.
    ///
    /// The returned [`RestoreTarget`] accepts verified payload chunks in
    /// any order (concurrently, from multiple uploader threads) and swaps
    /// the assembled state in atomically on
    /// [`finish`](RestoreTarget::finish). Until then the live state is
    /// untouched, so a restore that is abandoned midway (chunk verification
    /// failed, fell back to an older candidate) leaves the GPU exactly as
    /// it was — just drop the target.
    ///
    /// # Panics
    ///
    /// Panics if `total` does not match the current layout's size (the
    /// same invariant [`restore`](Self::restore) enforces, surfaced early).
    pub fn begin_restore(&self, total: ByteSize) -> RestoreTarget {
        assert_eq!(
            total,
            self.state_size(),
            "restore payload size must match the training-state layout"
        );
        RestoreTarget {
            gpu: self.clone(),
            staging: Mutex::new(vec![0u8; total.as_usize()]),
        }
    }

    /// Digest of the current state (for verification).
    pub fn digest(&self) -> StateDigest {
        self.inner.state.read().digest()
    }

    /// Current update-step counter.
    pub fn step_count(&self) -> u64 {
        self.inner.state.read().step_count()
    }
}

/// Merges a set of `(offset, len)` byte ranges: sorts by offset and
/// coalesces overlapping or adjacent ranges into a minimal sorted set.
/// Zero-length ranges are dropped.
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(_, len)| len > 0);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (off, len) in ranges {
        match out.last_mut() {
            Some((last_off, last_len)) if off <= *last_off + *last_len => {
                let end = (off + len).max(*last_off + *last_len);
                *last_len = end - *last_off;
            }
            _ => out.push((off, len)),
        }
    }
    out
}

/// An in-progress streaming restore (see [`Gpu::begin_restore`]).
///
/// Chunks land in a DRAM staging image; [`finish`](Self::finish) performs
/// the atomic state swap. Writes are metered through the GPU copy engine so
/// restore uploads contend for the same PCIe bandwidth as snapshot copies.
#[derive(Debug)]
pub struct RestoreTarget {
    gpu: Gpu,
    staging: Mutex<Vec<u8>>,
}

impl RestoreTarget {
    /// Total size of the payload being restored.
    pub fn total(&self) -> ByteSize {
        ByteSize::from_bytes(self.staging.lock().len() as u64)
    }

    /// Places one verified chunk at `offset` in the staging image. Safe to
    /// call from multiple threads; chunks may arrive in any order.
    ///
    /// # Panics
    ///
    /// Panics if the chunk extends past the payload size.
    pub fn write_chunk(&self, offset: u64, data: &[u8]) {
        {
            let mut staging = self.staging.lock();
            let start = usize::try_from(offset).expect("chunk offset fits in memory");
            let end = start
                .checked_add(data.len())
                .filter(|&e| e <= staging.len())
                .expect("restore chunk exceeds payload size");
            staging[start..end].copy_from_slice(data);
        }
        // Meter outside the lock: the PCIe throttle must not serialize
        // concurrent uploaders any more than the bus itself would.
        self.gpu
            .copy_engine()
            .meter(ByteSize::from_bytes(data.len() as u64));
    }

    /// Completes the restore: swaps the staged image in as the live
    /// training state at `step`.
    ///
    /// The caller is responsible for having verified every chunk — the
    /// target itself performs no digest checks.
    ///
    /// # Panics
    ///
    /// Panics if the staged payload does not match the current layout.
    pub fn finish(self, step: u64) {
        let staging = self.staging.into_inner();
        self.gpu.restore(&staging, step);
    }
}

/// Shared access to the GPU weights for the duration of a snapshot copy.
#[derive(Debug)]
pub struct WeightsGuard<'a> {
    state: parking_lot::RwLockReadGuard<'a, TrainingState>,
    engine: &'a CopyEngine,
    dirty: Vec<(u64, u64)>,
}

impl WeightsGuard<'_> {
    /// Size of the guarded state.
    pub fn size(&self) -> ByteSize {
        self.state.size()
    }

    /// The step counter of the guarded state.
    pub fn step_count(&self) -> u64 {
        self.state.step_count()
    }

    /// Digest of the guarded state.
    pub fn digest(&self) -> StateDigest {
        self.state.digest()
    }

    /// Copies the serialized byte range `[offset, offset+dst.len())` of the
    /// state into host memory through the GPU's copy engine (throttled at
    /// PCIe bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the state size.
    pub fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        self.state.serialize_range(offset, dst);
        self.engine.meter(ByteSize::from_bytes(dst.len() as u64));
    }

    /// The byte ranges mutated since the previous snapshot (merged,
    /// sorted) — what a delta checkpoint of this snapshot must persist.
    pub fn dirty_ranges(&self) -> Vec<(u64, u64)> {
        self.dirty.clone()
    }
}

/// Owned, `Send` variant of [`WeightsGuard`] for background copier threads.
///
/// Training updates block until the guard drops; drop it as soon as the
/// GPU→DRAM copy completes to release the `U` phase.
#[derive(Debug)]
pub struct OwnedWeightsGuard {
    state: parking_lot::ArcRwLockReadGuard<parking_lot::RawRwLock, TrainingState>,
    gpu: Gpu,
    dirty: Vec<(u64, u64)>,
}

impl OwnedWeightsGuard {
    /// Size of the guarded state.
    pub fn size(&self) -> ByteSize {
        self.state.size()
    }

    /// The step counter of the guarded state.
    pub fn step_count(&self) -> u64 {
        self.state.step_count()
    }

    /// Digest of the guarded state.
    pub fn digest(&self) -> StateDigest {
        self.state.digest()
    }

    /// Copies the serialized byte range `[offset, offset+dst.len())` into
    /// host memory through the GPU's copy engine (PCIe-throttled).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the state size.
    pub fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        self.state.serialize_range(offset, dst);
        self.gpu
            .copy_engine()
            .meter(ByteSize::from_bytes(dst.len() as u64));
    }

    /// The byte ranges mutated since the previous snapshot (merged,
    /// sorted) — what a delta checkpoint of this snapshot must persist.
    pub fn dirty_ranges(&self) -> Vec<(u64, u64)> {
        self.dirty.clone()
    }
}

/// A read-locked snapshot of GPU state that a persist pipeline can drain in
/// chunks, agnostic to whether the copier runs inline (borrowed
/// [`WeightsGuard`]) or on a background thread (owned
/// [`OwnedWeightsGuard`]).
///
/// `Sync` is required so chunk-scheduled copiers may share one source across
/// scoped worker threads.
pub trait SnapshotSource: Sync {
    /// Size of the serialized snapshot.
    fn size(&self) -> ByteSize;

    /// The step counter captured by the snapshot.
    fn step_count(&self) -> u64;

    /// Digest of the snapshot (for verification).
    fn digest(&self) -> StateDigest;

    /// Copies the serialized byte range `[offset, offset+dst.len())` into
    /// host memory through the GPU's copy engine (PCIe-throttled).
    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]);

    /// The byte ranges mutated since the previous snapshot, merged and
    /// sorted by offset. Sources without dirty tracking report the whole
    /// state dirty, which makes delta paths degrade to full checkpoints.
    fn dirty_ranges(&self) -> Vec<(u64, u64)> {
        vec![(0, self.size().as_u64())]
    }
}

impl SnapshotSource for WeightsGuard<'_> {
    fn size(&self) -> ByteSize {
        WeightsGuard::size(self)
    }

    fn step_count(&self) -> u64 {
        WeightsGuard::step_count(self)
    }

    fn digest(&self) -> StateDigest {
        WeightsGuard::digest(self)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        WeightsGuard::copy_range_to_host(self, offset, dst)
    }

    fn dirty_ranges(&self) -> Vec<(u64, u64)> {
        WeightsGuard::dirty_ranges(self)
    }
}

impl SnapshotSource for OwnedWeightsGuard {
    fn size(&self) -> ByteSize {
        OwnedWeightsGuard::size(self)
    }

    fn step_count(&self) -> u64 {
        OwnedWeightsGuard::step_count(self)
    }

    fn digest(&self) -> StateDigest {
        OwnedWeightsGuard::digest(self)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        OwnedWeightsGuard::copy_range_to_host(self, offset, dst)
    }

    fn dirty_ranges(&self) -> Vec<(u64, u64)> {
        OwnedWeightsGuard::dirty_ranges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn gpu(size: u64, seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(size), seed),
        )
    }

    #[test]
    fn update_advances_state() {
        let g = gpu(300, 1);
        assert_eq!(g.step_count(), 0);
        let d0 = g.digest();
        g.update();
        assert_eq!(g.step_count(), 1);
        assert_ne!(g.digest(), d0);
    }

    #[test]
    fn snapshot_copy_matches_serialization() {
        let g = gpu(300, 2);
        g.update();
        let guard = g.lock_weights_shared();
        let mut host = vec![0u8; 300];
        guard.copy_range_to_host(0, &mut host);
        let expected = g.with_weights(|s| {
            let mut buf = vec![0u8; 300];
            s.serialize_into(&mut buf);
            buf
        });
        assert_eq!(host, expected);
    }

    #[test]
    fn update_blocks_while_snapshot_guard_held() {
        let g = gpu(300, 3);
        let guard = g.lock_weights_shared();
        let updated = Arc::new(AtomicBool::new(false));
        let handle = {
            let g = g.clone();
            let updated = Arc::clone(&updated);
            std::thread::spawn(move || {
                g.update();
                updated.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !updated.load(Ordering::SeqCst),
            "update must stall behind the snapshot copy (Figure 6)"
        );
        drop(guard);
        handle.join().unwrap();
        assert!(updated.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_snapshots_share_read_access() {
        let g = gpu(300, 4);
        let g1 = g.lock_weights_shared();
        let g2 = g.lock_weights_shared();
        assert_eq!(g1.digest(), g2.digest());
        assert_eq!(g1.step_count(), 0);
        assert_eq!(g1.size().as_u64(), 300);
    }

    #[test]
    fn restore_round_trip_through_gpu() {
        let g = gpu(300, 5);
        for _ in 0..4 {
            g.update();
        }
        let digest = g.digest();
        let payload = {
            let guard = g.lock_weights_shared();
            let mut buf = vec![0u8; 300];
            guard.copy_range_to_host(0, &mut buf);
            buf
        };
        let step = g.step_count();
        // Training continues, state diverges...
        g.update();
        g.update();
        assert_ne!(g.digest(), digest);
        // ...then a failure: restore from the checkpoint payload.
        g.restore(&payload, step);
        assert_eq!(g.digest(), digest);
        assert_eq!(g.step_count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds GPU memory")]
    fn oversized_state_rejected() {
        let cfg = GpuConfig {
            memory: ByteSize::from_bytes(100),
            copy: CopyEngineConfig::fast_for_tests(),
        };
        Gpu::new(cfg, TrainingState::synthetic(ByteSize::from_bytes(200), 1));
    }

    #[test]
    fn merge_ranges_coalesces_overlaps_and_adjacency() {
        assert_eq!(merge_ranges(vec![]), vec![]);
        assert_eq!(merge_ranges(vec![(5, 0), (3, 0)]), vec![]);
        assert_eq!(
            merge_ranges(vec![(10, 5), (0, 4), (14, 2), (4, 2)]),
            vec![(0, 6), (10, 6)]
        );
        // Containment and duplicates.
        assert_eq!(
            merge_ranges(vec![(0, 100), (10, 5), (0, 100)]),
            vec![(0, 100)]
        );
    }

    #[test]
    fn fresh_gpu_reports_everything_dirty() {
        let g = gpu(300, 20);
        let guard = g.lock_weights_shared();
        assert_eq!(guard.dirty_ranges(), vec![(0, 300)]);
    }

    #[test]
    fn snapshot_drains_the_dirty_tracker() {
        let g = gpu(300, 21);
        drop(g.lock_weights_shared()); // consume the initial full-dirty set
        g.update_sparse(0.1);
        let guard = g.lock_weights_shared();
        let dirty = guard.dirty_ranges();
        let total: u64 = dirty.iter().map(|(_, l)| l).sum();
        assert!(total >= 30 && total < 40, "~10% of 300, got {total}");
        drop(guard);
        // Nothing mutated since: the next snapshot sees an empty set.
        assert!(g.lock_weights_shared().dirty_ranges().is_empty());
    }

    #[test]
    fn dense_update_marks_everything_dirty_again() {
        let g = gpu(300, 22);
        drop(g.lock_weights_shared());
        g.update_sparse(0.01);
        g.update();
        assert_eq!(g.lock_weights_shared().dirty_ranges(), vec![(0, 300)]);
    }

    #[test]
    fn mark_all_dirty_rearms_after_abandoned_snapshot() {
        let g = gpu(300, 23);
        drop(g.lock_weights_shared()); // drained, but "checkpoint failed"
        g.mark_all_dirty();
        assert_eq!(g.lock_weights_shared().dirty_ranges(), vec![(0, 300)]);
    }

    #[test]
    fn restore_resets_dirty_to_full() {
        let g = gpu(300, 24);
        g.update();
        let payload = {
            let guard = g.lock_weights_shared();
            let mut buf = vec![0u8; 300];
            guard.copy_range_to_host(0, &mut buf);
            buf
        };
        g.restore(&payload, 1);
        assert_eq!(g.lock_weights_shared_owned().dirty_ranges(), vec![(0, 300)]);
    }

    #[test]
    fn sparse_update_ranges_cover_the_changed_bytes() {
        let g = gpu(999, 25);
        drop(g.lock_weights_shared());
        let mut before = vec![0u8; 999];
        g.lock_weights_shared().copy_range_to_host(0, &mut before);
        g.mark_all_dirty(); // the copy above drained; re-arm is irrelevant here
        drop(g.lock_weights_shared()); // drain again so only the sparse step counts
        g.update_sparse(0.25);
        let guard = g.lock_weights_shared_owned();
        let mut after = vec![0u8; 999];
        guard.copy_range_to_host(0, &mut after);
        let dirty = guard.dirty_ranges();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert!(
                    dirty
                        .iter()
                        .any(|&(off, len)| (i as u64) >= off && (i as u64) < off + len),
                    "changed byte {i} not covered by dirty ranges"
                );
            }
        }
    }

    #[test]
    fn streaming_restore_matches_direct_restore() {
        let g = gpu(1000, 30);
        for _ in 0..3 {
            g.update();
        }
        let digest = g.digest();
        let payload = {
            let guard = g.lock_weights_shared();
            let mut buf = vec![0u8; 1000];
            guard.copy_range_to_host(0, &mut buf);
            buf
        };
        g.update();
        assert_ne!(g.digest(), digest);

        // Stream the payload back out of order, from two threads.
        let target = Arc::new(g.begin_restore(ByteSize::from_bytes(1000)));
        std::thread::scope(|s| {
            for reader in 0..2usize {
                let target = Arc::clone(&target);
                let payload = &payload;
                s.spawn(move || {
                    let mut off = reader * 128;
                    while off < 1000 {
                        let end = (off + 128).min(1000);
                        target.write_chunk(off as u64, &payload[off..end]);
                        off += 256;
                    }
                });
            }
        });
        // Live state untouched until finish.
        assert_eq!(g.step_count(), 4);
        Arc::into_inner(target).unwrap().finish(3);
        assert_eq!(g.digest(), digest);
        assert_eq!(g.step_count(), 3);
        assert_eq!(g.lock_weights_shared().dirty_ranges(), vec![(0, 1000)]);
    }

    #[test]
    fn abandoned_streaming_restore_leaves_state_alone() {
        let g = gpu(300, 31);
        g.update();
        let digest = g.digest();
        let target = g.begin_restore(ByteSize::from_bytes(300));
        target.write_chunk(0, &[0xAB; 128]);
        drop(target); // verification failed elsewhere; abandon
        assert_eq!(g.digest(), digest);
        assert_eq!(g.step_count(), 1);
    }

    #[test]
    #[should_panic(expected = "restore chunk exceeds payload size")]
    fn oversized_restore_chunk_rejected() {
        let g = gpu(300, 32);
        let target = g.begin_restore(ByteSize::from_bytes(300));
        target.write_chunk(200, &[0u8; 128]);
    }

    #[test]
    #[should_panic(expected = "must match the training-state layout")]
    fn mis_sized_restore_rejected_up_front() {
        let g = gpu(300, 33);
        let _ = g.begin_restore(ByteSize::from_bytes(299));
    }

    #[test]
    fn chunked_copies_reassemble_correctly() {
        let g = gpu(1000, 6);
        g.update();
        let guard = g.lock_weights_shared();
        let mut chunks = Vec::new();
        let mut off = 0u64;
        while off < 1000 {
            let n = 128.min(1000 - off) as usize;
            let mut piece = vec![0u8; n];
            guard.copy_range_to_host(off, &mut piece);
            chunks.extend_from_slice(&piece);
            off += n as u64;
        }
        let expected = g.with_weights(|s| {
            let mut buf = vec![0u8; 1000];
            s.serialize_into(&mut buf);
            buf
        });
        assert_eq!(chunks, expected);
    }
}

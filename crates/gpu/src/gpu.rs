//! The simulated accelerator: device memory holding the training state,
//! a copy engine, and the update/snapshot synchronization.
//!
//! Figure 6 of the paper shows the residual stall PCcheck accepts: the next
//! iteration's *update* phase (`U`) must wait until the in-flight GPU→DRAM
//! copy (`C`) of the previous checkpoint finishes, because both touch the
//! model weights. (Keeping a second weight copy on the GPU would remove the
//! stall but costs scarce GPU memory — §3.1 decides against it.)
//!
//! [`Gpu`] reproduces this with a readers–writer discipline: checkpoint
//! copies hold read access ([`Gpu::lock_weights_shared`]) while
//! [`Gpu::update`] takes exclusive access.

use std::sync::Arc;

use parking_lot::RwLock;

use pccheck_util::ByteSize;

use crate::copy::{CopyEngine, CopyEngineConfig};
use crate::tensor::{StateDigest, TrainingState};

/// GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Device memory capacity (A100-40GB etc.). Informational; the
    /// simulation does not enforce it beyond the state fitting at all.
    pub memory: ByteSize,
    /// Copy-engine configuration.
    pub copy: CopyEngineConfig,
}

impl GpuConfig {
    /// An unthrottled profile for logic tests.
    pub fn fast_for_tests() -> Self {
        GpuConfig {
            memory: ByteSize::from_gb(40.0),
            copy: CopyEngineConfig::fast_for_tests(),
        }
    }
}

/// A simulated GPU owning a [`TrainingState`].
///
/// Cloning the handle shares the same device (`Arc` semantics).
///
/// # Examples
///
/// ```
/// use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
/// use pccheck_util::ByteSize;
///
/// let gpu = Gpu::new(
///     GpuConfig::fast_for_tests(),
///     TrainingState::synthetic(ByteSize::from_kb(4), 1),
/// );
/// // Snapshot while training would continue:
/// let guard = gpu.lock_weights_shared();
/// let mut host = vec![0u8; guard.size().as_usize()];
/// guard.copy_range_to_host(0, &mut host);
/// drop(guard);
/// gpu.update();
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    inner: Arc<GpuInner>,
}

#[derive(Debug)]
struct GpuInner {
    config: GpuConfig,
    state: Arc<RwLock<TrainingState>>,
    engine: CopyEngine,
}

impl Gpu {
    /// Creates a GPU holding `state`.
    ///
    /// # Panics
    ///
    /// Panics if the state does not fit in device memory.
    pub fn new(config: GpuConfig, state: TrainingState) -> Self {
        assert!(
            state.size() <= config.memory,
            "training state {} exceeds GPU memory {}",
            state.size(),
            config.memory
        );
        let engine = CopyEngine::new(config.copy.clone());
        Gpu {
            inner: Arc::new(GpuInner {
                config,
                state: Arc::new(RwLock::new(state)),
                engine,
            }),
        }
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.inner.config
    }

    /// The copy engine (shared by concurrent checkpoint copies).
    pub fn copy_engine(&self) -> &CopyEngine {
        &self.inner.engine
    }

    /// Size of the training state — the checkpoint size `m`.
    pub fn state_size(&self) -> ByteSize {
        self.inner.state.read().size()
    }

    /// Applies one update step (the `U` phase). Blocks while any snapshot
    /// copy holds the weights, reproducing the Figure 6 stall.
    pub fn update(&self) {
        self.inner.state.write().step();
    }

    /// Runs `f` with read access to the weights.
    pub fn with_weights<R>(&self, f: impl FnOnce(&TrainingState) -> R) -> R {
        f(&self.inner.state.read())
    }

    /// Acquires shared (read) access to the weights for a checkpoint copy.
    /// While any [`WeightsGuard`] is alive, [`update`](Self::update) blocks.
    pub fn lock_weights_shared(&self) -> WeightsGuard<'_> {
        WeightsGuard {
            state: self.inner.state.read(),
            engine: &self.inner.engine,
        }
    }

    /// Like [`lock_weights_shared`](Self::lock_weights_shared), but the
    /// returned guard owns its reference and is `Send`: a background
    /// snapshot-copy thread can hold the weights while the training thread
    /// proceeds with the next iteration's compute phase — exactly PCcheck's
    /// overlap of `C` with `T` (Figure 6).
    pub fn lock_weights_shared_owned(&self) -> OwnedWeightsGuard {
        OwnedWeightsGuard {
            state: RwLock::read_arc(&self.inner.state),
            gpu: self.clone(),
        }
    }

    /// Restores the training state from a recovered checkpoint payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the current layout.
    pub fn restore(&self, payload: &[u8], step: u64) {
        let mut state = self.inner.state.write();
        let layout = state.layout();
        *state = TrainingState::restore(&layout, payload, step);
    }

    /// Digest of the current state (for verification).
    pub fn digest(&self) -> StateDigest {
        self.inner.state.read().digest()
    }

    /// Current update-step counter.
    pub fn step_count(&self) -> u64 {
        self.inner.state.read().step_count()
    }
}

/// Shared access to the GPU weights for the duration of a snapshot copy.
#[derive(Debug)]
pub struct WeightsGuard<'a> {
    state: parking_lot::RwLockReadGuard<'a, TrainingState>,
    engine: &'a CopyEngine,
}

impl WeightsGuard<'_> {
    /// Size of the guarded state.
    pub fn size(&self) -> ByteSize {
        self.state.size()
    }

    /// The step counter of the guarded state.
    pub fn step_count(&self) -> u64 {
        self.state.step_count()
    }

    /// Digest of the guarded state.
    pub fn digest(&self) -> StateDigest {
        self.state.digest()
    }

    /// Copies the serialized byte range `[offset, offset+dst.len())` of the
    /// state into host memory through the GPU's copy engine (throttled at
    /// PCIe bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the state size.
    pub fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        self.state.serialize_range(offset, dst);
        self.engine.meter(ByteSize::from_bytes(dst.len() as u64));
    }
}

/// Owned, `Send` variant of [`WeightsGuard`] for background copier threads.
///
/// Training updates block until the guard drops; drop it as soon as the
/// GPU→DRAM copy completes to release the `U` phase.
#[derive(Debug)]
pub struct OwnedWeightsGuard {
    state: parking_lot::ArcRwLockReadGuard<parking_lot::RawRwLock, TrainingState>,
    gpu: Gpu,
}

impl OwnedWeightsGuard {
    /// Size of the guarded state.
    pub fn size(&self) -> ByteSize {
        self.state.size()
    }

    /// The step counter of the guarded state.
    pub fn step_count(&self) -> u64 {
        self.state.step_count()
    }

    /// Digest of the guarded state.
    pub fn digest(&self) -> StateDigest {
        self.state.digest()
    }

    /// Copies the serialized byte range `[offset, offset+dst.len())` into
    /// host memory through the GPU's copy engine (PCIe-throttled).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the state size.
    pub fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        self.state.serialize_range(offset, dst);
        self.gpu
            .copy_engine()
            .meter(ByteSize::from_bytes(dst.len() as u64));
    }
}

/// A read-locked snapshot of GPU state that a persist pipeline can drain in
/// chunks, agnostic to whether the copier runs inline (borrowed
/// [`WeightsGuard`]) or on a background thread (owned
/// [`OwnedWeightsGuard`]).
///
/// `Sync` is required so chunk-scheduled copiers may share one source across
/// scoped worker threads.
pub trait SnapshotSource: Sync {
    /// Size of the serialized snapshot.
    fn size(&self) -> ByteSize;

    /// The step counter captured by the snapshot.
    fn step_count(&self) -> u64;

    /// Digest of the snapshot (for verification).
    fn digest(&self) -> StateDigest;

    /// Copies the serialized byte range `[offset, offset+dst.len())` into
    /// host memory through the GPU's copy engine (PCIe-throttled).
    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]);
}

impl SnapshotSource for WeightsGuard<'_> {
    fn size(&self) -> ByteSize {
        WeightsGuard::size(self)
    }

    fn step_count(&self) -> u64 {
        WeightsGuard::step_count(self)
    }

    fn digest(&self) -> StateDigest {
        WeightsGuard::digest(self)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        WeightsGuard::copy_range_to_host(self, offset, dst)
    }
}

impl SnapshotSource for OwnedWeightsGuard {
    fn size(&self) -> ByteSize {
        OwnedWeightsGuard::size(self)
    }

    fn step_count(&self) -> u64 {
        OwnedWeightsGuard::step_count(self)
    }

    fn digest(&self) -> StateDigest {
        OwnedWeightsGuard::digest(self)
    }

    fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
        OwnedWeightsGuard::copy_range_to_host(self, offset, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn gpu(size: u64, seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(size), seed),
        )
    }

    #[test]
    fn update_advances_state() {
        let g = gpu(300, 1);
        assert_eq!(g.step_count(), 0);
        let d0 = g.digest();
        g.update();
        assert_eq!(g.step_count(), 1);
        assert_ne!(g.digest(), d0);
    }

    #[test]
    fn snapshot_copy_matches_serialization() {
        let g = gpu(300, 2);
        g.update();
        let guard = g.lock_weights_shared();
        let mut host = vec![0u8; 300];
        guard.copy_range_to_host(0, &mut host);
        let expected = g.with_weights(|s| {
            let mut buf = vec![0u8; 300];
            s.serialize_into(&mut buf);
            buf
        });
        assert_eq!(host, expected);
    }

    #[test]
    fn update_blocks_while_snapshot_guard_held() {
        let g = gpu(300, 3);
        let guard = g.lock_weights_shared();
        let updated = Arc::new(AtomicBool::new(false));
        let handle = {
            let g = g.clone();
            let updated = Arc::clone(&updated);
            std::thread::spawn(move || {
                g.update();
                updated.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !updated.load(Ordering::SeqCst),
            "update must stall behind the snapshot copy (Figure 6)"
        );
        drop(guard);
        handle.join().unwrap();
        assert!(updated.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_snapshots_share_read_access() {
        let g = gpu(300, 4);
        let g1 = g.lock_weights_shared();
        let g2 = g.lock_weights_shared();
        assert_eq!(g1.digest(), g2.digest());
        assert_eq!(g1.step_count(), 0);
        assert_eq!(g1.size().as_u64(), 300);
    }

    #[test]
    fn restore_round_trip_through_gpu() {
        let g = gpu(300, 5);
        for _ in 0..4 {
            g.update();
        }
        let digest = g.digest();
        let payload = {
            let guard = g.lock_weights_shared();
            let mut buf = vec![0u8; 300];
            guard.copy_range_to_host(0, &mut buf);
            buf
        };
        let step = g.step_count();
        // Training continues, state diverges...
        g.update();
        g.update();
        assert_ne!(g.digest(), digest);
        // ...then a failure: restore from the checkpoint payload.
        g.restore(&payload, step);
        assert_eq!(g.digest(), digest);
        assert_eq!(g.step_count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds GPU memory")]
    fn oversized_state_rejected() {
        let cfg = GpuConfig {
            memory: ByteSize::from_bytes(100),
            copy: CopyEngineConfig::fast_for_tests(),
        };
        Gpu::new(cfg, TrainingState::synthetic(ByteSize::from_bytes(200), 1));
    }

    #[test]
    fn chunked_copies_reassemble_correctly() {
        let g = gpu(1000, 6);
        g.update();
        let guard = g.lock_weights_shared();
        let mut chunks = Vec::new();
        let mut off = 0u64;
        while off < 1000 {
            let n = 128.min(1000 - off) as usize;
            let mut piece = vec![0u8; n];
            guard.copy_range_to_host(off, &mut piece);
            chunks.extend_from_slice(&piece);
            off += n as u64;
        }
        let expected = g.with_weights(|s| {
            let mut buf = vec![0u8; 1000];
            s.serialize_into(&mut buf);
            buf
        });
        assert_eq!(chunks, expected);
    }
}

//! The interface between training and checkpointing strategies.
//!
//! Every strategy the paper evaluates — traditional synchronous saving,
//! CheckFreq, GPM, Gemini, and PCcheck itself — plugs into the training
//! loop through [`Checkpointer`]. The trait is deliberately narrow: after
//! the update phase of a checkpoint-boundary iteration, the loop hands the
//! strategy a [`Gpu`] handle and the iteration number; the strategy decides
//! how much of the work happens inline (stalling training) versus in
//! background threads.

use std::fmt;

use crate::gpu::Gpu;
use crate::tensor::StateDigest;

/// What a completed (committed) checkpoint looks like to the outside world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// The training iteration the checkpoint captured.
    pub iteration: u64,
    /// Digest of the captured state, for end-to-end verification.
    pub digest: StateDigest,
}

impl fmt::Display for CheckpointOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint@iter{} ({})", self.iteration, self.digest)
    }
}

/// A checkpointing strategy driven by the training loop.
///
/// Implementations must be thread-safe: background persist threads run
/// concurrently with the training thread calling these hooks.
pub trait Checkpointer: Send + Sync {
    /// Called after the update phase of iteration `iteration` (0-based)
    /// when the checkpoint interval fires. May block — whatever blocking it
    /// does is exactly the training stall the experiments measure.
    fn checkpoint(&self, gpu: &Gpu, iteration: u64);

    /// Blocks until every checkpoint accepted so far is durable. Called at
    /// the end of training and by tests.
    fn drain(&self);

    /// The most recent *committed* (fully durable, recoverable) checkpoint,
    /// if any.
    fn last_committed(&self) -> Option<CheckpointOutcome>;

    /// Human-readable strategy name for reports.
    fn name(&self) -> &str;
}

/// A no-op checkpointer: the "ideal" baseline that saves checkpoints with
/// zero overhead (used for the horizontal lines in Figures 8–10).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCheckpointer;

impl NullCheckpointer {
    /// Creates the no-op checkpointer.
    pub fn new() -> Self {
        NullCheckpointer
    }
}

impl Checkpointer for NullCheckpointer {
    fn checkpoint(&self, _gpu: &Gpu, _iteration: u64) {}

    fn drain(&self) {}

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        None
    }

    fn name(&self) -> &str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuConfig;
    use crate::tensor::TrainingState;
    use pccheck_util::ByteSize;

    #[test]
    fn null_checkpointer_does_nothing() {
        let gpu = Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(64), 0),
        );
        let ckpt = NullCheckpointer::new();
        let before = gpu.digest();
        ckpt.checkpoint(&gpu, 0);
        ckpt.drain();
        assert_eq!(gpu.digest(), before);
        assert_eq!(ckpt.last_committed(), None);
        assert_eq!(ckpt.name(), "ideal");
    }

    #[test]
    fn outcome_displays_iteration() {
        let o = CheckpointOutcome {
            iteration: 7,
            digest: StateDigest(0xdead_beef),
        };
        let s = o.to_string();
        assert!(s.contains("iter7"));
        assert!(s.contains("00000000deadbeef"));
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn Checkpointer> = Box::new(NullCheckpointer::new());
        assert_eq!(b.name(), "ideal");
    }
}

//! Training state with real, verifiable bytes.
//!
//! Checkpointing correctness needs a source of truth: if we restore from a
//! checkpoint taken at iteration *k*, we must get exactly the bytes the
//! model held at iteration *k*. [`TrainingState`] therefore stores its
//! tensors as actual byte buffers that evolve deterministically per update
//! step, and exposes a [`StateDigest`] so tests and recovery paths can
//! verify round-trips without keeping reference copies.

use std::fmt;

use pccheck_util::rng;
use pccheck_util::ByteSize;

/// A 64-bit digest of the full training state (FNV-1a over all tensor
/// bytes plus the step counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateDigest(pub u64);

impl StateDigest {
    /// Recomputes the digest of a serialized checkpoint payload captured at
    /// `step`, without needing the tensor layout: [`TrainingState::digest`]
    /// folds FNV-1a (seeded with `basis ^ step`) over the tensors' bytes in
    /// order, which is exactly the byte stream
    /// [`TrainingState::serialize_into`] produces. Recovery paths use this
    /// to verify a candidate payload against its stored digest when only
    /// the flat bytes survive the crash.
    pub fn of_payload(payload: &[u8], step: u64) -> StateDigest {
        StateDigest(pccheck_util::fnv::fnv1a_fold(
            pccheck_util::fnv::FNV_SEED ^ step,
            payload,
        ))
    }
}

impl fmt::Display for StateDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One named tensor (parameters, Adam first/second moments, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    name: String,
    data: Vec<u8>,
}

impl Tensor {
    /// Creates a tensor with deterministic pseudo-random initial contents.
    pub fn synthetic(name: impl Into<String>, size: ByteSize, seed: u64) -> Self {
        let name = name.into();
        let mut data = vec![0u8; size.as_usize()];
        rng::fill_deterministic(&mut data, rng::derive_seed(seed, &name));
        Tensor { name, data }
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tensor's bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Size in bytes.
    pub fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.data.len() as u64)
    }

    /// Creates a tensor whose contents are one pseudo-random `period`-byte
    /// block tiled across the whole tensor — redundant (chunk dedup
    /// collapses aligned repeats) and LZ-compressible (every block after
    /// the first is a back-reference), with the redundancy knob being the
    /// period: `period == size` degenerates to [`synthetic`]'s
    /// incompressible noise. The [`step`] transform maps each byte
    /// independently of its position, so the tiling — and with it the
    /// compressibility — survives optimizer updates.
    ///
    /// [`synthetic`]: Tensor::synthetic
    /// [`step`]: Tensor::step
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn compressible(
        name: impl Into<String>,
        size: ByteSize,
        seed: u64,
        period: usize,
    ) -> Self {
        assert!(period > 0, "period must be positive");
        let name = name.into();
        let mut data = vec![0u8; size.as_usize()];
        let p = period.min(data.len().max(1));
        let mut block = vec![0u8; p];
        rng::fill_deterministic(&mut block, rng::derive_seed(seed, &name));
        for (i, b) in data.iter_mut().enumerate() {
            *b = block[i % p];
        }
        Tensor { name, data }
    }

    /// Applies one deterministic "optimizer step" to this tensor: every byte
    /// changes as a function of the step counter, so distinct steps yield
    /// distinct contents (a torn or stale checkpoint cannot masquerade as a
    /// fresh one).
    pub fn step(&mut self, step: u64) {
        self.step_suffix(step, 0);
    }

    /// Applies the optimizer-step transform only to `data[start..]` — the
    /// sparse-update path: the leading `start` bytes act as a frozen prefix
    /// (frozen layers / untouched embedding rows) and keep their contents.
    ///
    /// # Panics
    ///
    /// Panics if `start` exceeds the tensor size.
    pub fn step_suffix(&mut self, step: u64, start: usize) {
        let delta = (step as u8).wrapping_mul(2).wrapping_add(1); // odd => bijective
        for b in &mut self.data[start..] {
            *b = b.wrapping_add(delta).rotate_left(1);
        }
    }

    fn fnv(&self, h: u64) -> u64 {
        pccheck_util::fnv::fnv1a_fold(h, &self.data)
    }
}

/// The full model + optimizer state living in (simulated) GPU memory.
///
/// # Examples
///
/// ```
/// use pccheck_gpu::TrainingState;
/// use pccheck_util::ByteSize;
///
/// let mut s = TrainingState::synthetic(ByteSize::from_kb(16), 7);
/// let d0 = s.digest();
/// s.step();
/// assert_ne!(s.digest(), d0);
///
/// // Serialize / restore round-trip:
/// let mut buf = vec![0u8; s.size().as_usize()];
/// s.serialize_into(&mut buf);
/// let restored = TrainingState::restore(&s.layout(), &buf, s.step_count());
/// assert_eq!(restored.digest(), s.digest());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingState {
    tensors: Vec<Tensor>,
    step: u64,
}

/// The (name, size) layout of a state's tensors, needed to reinterpret a
/// flat checkpoint payload.
pub type StateLayout = Vec<(String, ByteSize)>;

impl TrainingState {
    /// Builds a synthetic state of roughly `total` bytes, split into the
    /// parameter/momentum/variance triple an Adam-style optimizer keeps
    /// (matching the paper's "model and optimizer state" checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn synthetic(total: ByteSize, seed: u64) -> Self {
        assert!(!total.is_zero(), "state must be non-empty");
        let shares = total.split_even(3);
        let tensors = vec![
            Tensor::synthetic("params", shares[0], seed),
            Tensor::synthetic("adam_m", shares[1], seed),
            Tensor::synthetic("adam_v", shares[2], seed),
        ];
        TrainingState { tensors, step: 0 }
    }

    /// Builds a synthetic state like [`synthetic`](TrainingState::synthetic)
    /// but with [`Tensor::compressible`] contents: each of the three
    /// optimizer tensors is a `period`-byte block tiled to size. Used by
    /// the codec benchmarks and the `ext_compress` harness to sweep
    /// payload compressibility at the engine level.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or `period == 0`.
    pub fn compressible(total: ByteSize, seed: u64, period: usize) -> Self {
        assert!(!total.is_zero(), "state must be non-empty");
        let shares = total.split_even(3);
        let tensors = vec![
            Tensor::compressible("params", shares[0], seed, period),
            Tensor::compressible("adam_m", shares[1], seed, period),
            Tensor::compressible("adam_v", shares[2], seed, period),
        ];
        TrainingState { tensors, step: 0 }
    }

    /// Builds a state from explicit tensors.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty.
    pub fn from_tensors(tensors: Vec<Tensor>) -> Self {
        assert!(!tensors.is_empty(), "state must have at least one tensor");
        TrainingState { tensors, step: 0 }
    }

    /// The tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Total state size — the checkpoint size `m`.
    pub fn size(&self) -> ByteSize {
        self.tensors.iter().map(Tensor::size).sum()
    }

    /// Number of update steps applied so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The tensor layout needed by [`TrainingState::restore`].
    pub fn layout(&self) -> StateLayout {
        self.tensors
            .iter()
            .map(|t| (t.name().to_string(), t.size()))
            .collect()
    }

    /// Applies one update step: every tensor mutates deterministically.
    pub fn step(&mut self) {
        self.step += 1;
        let step = self.step;
        for t in &mut self.tensors {
            t.step(step);
        }
    }

    /// Applies one *sparse* update step: each tensor mutates only its
    /// trailing `update_fraction` of bytes (a frozen-prefix workload —
    /// frozen backbone layers, LoRA adapters, hot embedding rows), and the
    /// mutated ranges are returned in serialized-payload coordinates so a
    /// dirty-extent tracker can record exactly what changed.
    ///
    /// `update_fraction` is clamped to `[0, 1]`; at `1.0` this is
    /// byte-for-byte identical to [`step`](Self::step). The step counter
    /// advances regardless, so digests still distinguish iterations.
    pub fn step_sparse(&mut self, update_fraction: f64) -> Vec<(u64, u64)> {
        let f = update_fraction.clamp(0.0, 1.0);
        self.step += 1;
        let step = self.step;
        let mut ranges = Vec::with_capacity(self.tensors.len());
        let mut t_start = 0u64;
        for t in &mut self.tensors {
            let len = t.data.len();
            let dirty = (((len as f64) * f).ceil() as usize).min(len);
            if dirty > 0 {
                let start = len - dirty;
                t.step_suffix(step, start);
                ranges.push((t_start + start as u64, dirty as u64));
            }
            t_start += len as u64;
        }
        ranges
    }

    /// Digest over the step counter and all tensor bytes.
    pub fn digest(&self) -> StateDigest {
        let mut h: u64 = pccheck_util::fnv::FNV_SEED ^ self.step;
        for t in &self.tensors {
            h = t.fnv(h);
        }
        StateDigest(h)
    }

    /// Serializes all tensors into `buf` (concatenated in order).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly [`size`](Self::size) bytes.
    pub fn serialize_into(&self, buf: &mut [u8]) {
        assert_eq!(
            buf.len() as u64,
            self.size().as_u64(),
            "payload buffer must match state size"
        );
        let mut off = 0usize;
        for t in &self.tensors {
            buf[off..off + t.data().len()].copy_from_slice(t.data());
            off += t.data().len();
        }
    }

    /// Copies the serialized byte range `[offset, offset+out.len())` of the
    /// state into `out` without materializing the whole payload — this is
    /// what chunked GPU→DRAM copies read.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the state size.
    pub fn serialize_range(&self, offset: u64, out: &mut [u8]) {
        let end = offset + out.len() as u64;
        assert!(end <= self.size().as_u64(), "range exceeds state size");
        let mut t_start = 0u64;
        for t in &self.tensors {
            let t_end = t_start + t.size().as_u64();
            // Overlap of [offset, end) with [t_start, t_end):
            let lo = offset.max(t_start);
            let hi = end.min(t_end);
            if lo < hi {
                let src = &t.data()[(lo - t_start) as usize..(hi - t_start) as usize];
                let dst_off = (lo - offset) as usize;
                out[dst_off..dst_off + src.len()].copy_from_slice(src);
            }
            t_start = t_end;
        }
    }

    /// Reconstructs a state from a flat payload and the step counter it was
    /// taken at — the recovery path.
    ///
    /// # Panics
    ///
    /// Panics if `payload` does not match the layout's total size.
    pub fn restore(layout: &StateLayout, payload: &[u8], step: u64) -> Self {
        let total: u64 = layout.iter().map(|(_, s)| s.as_u64()).sum();
        assert_eq!(payload.len() as u64, total, "payload size mismatch");
        let mut tensors = Vec::with_capacity(layout.len());
        let mut off = 0usize;
        for (name, size) in layout {
            let n = size.as_usize();
            tensors.push(Tensor {
                name: name.clone(),
                data: payload[off..off + n].to_vec(),
            });
            off += n;
        }
        TrainingState { tensors, step }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_state(seed: u64) -> TrainingState {
        TrainingState::synthetic(ByteSize::from_bytes(300), seed)
    }

    #[test]
    fn synthetic_state_has_adam_triple() {
        let s = small_state(1);
        let names: Vec<_> = s.tensors().iter().map(Tensor::name).collect();
        assert_eq!(names, vec!["params", "adam_m", "adam_v"]);
        assert_eq!(s.size().as_u64(), 300);
        assert_eq!(s.step_count(), 0);
    }

    #[test]
    fn steps_change_digest_and_are_deterministic() {
        let mut a = small_state(9);
        let mut b = small_state(9);
        let d0 = a.digest();
        a.step();
        b.step();
        assert_ne!(a.digest(), d0);
        assert_eq!(a.digest(), b.digest(), "same seed+steps => same bytes");
        a.step();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(small_state(1).digest(), small_state(2).digest());
    }

    #[test]
    fn serialize_restore_round_trip() {
        let mut s = small_state(3);
        for _ in 0..5 {
            s.step();
        }
        let mut buf = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut buf);
        let r = TrainingState::restore(&s.layout(), &buf, s.step_count());
        assert_eq!(r.digest(), s.digest());
        assert_eq!(r.step_count(), 5);
        assert_eq!(r, s);
    }

    #[test]
    fn payload_digest_matches_state_digest() {
        let mut s = small_state(9);
        for _ in 0..3 {
            s.step();
        }
        let mut buf = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut buf);
        assert_eq!(StateDigest::of_payload(&buf, s.step_count()), s.digest());
        // Wrong step or corrupted payload must not verify.
        assert_ne!(
            StateDigest::of_payload(&buf, s.step_count() + 1),
            s.digest()
        );
        buf[0] ^= 0xff;
        assert_ne!(StateDigest::of_payload(&buf, s.step_count()), s.digest());
    }

    #[test]
    fn restored_state_evolves_identically() {
        let mut s = small_state(4);
        s.step();
        let mut buf = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut buf);
        let mut r = TrainingState::restore(&s.layout(), &buf, s.step_count());
        s.step();
        r.step();
        assert_eq!(r.digest(), s.digest(), "recovery must resume identically");
    }

    #[test]
    fn serialize_range_matches_full_serialization() {
        let s = small_state(5);
        let mut full = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut full);
        // Read in awkward chunk sizes crossing tensor boundaries.
        for chunk in [1usize, 7, 64, 99, 300] {
            let mut collected = Vec::new();
            let mut off = 0u64;
            while off < s.size().as_u64() {
                let n = chunk.min((s.size().as_u64() - off) as usize);
                let mut piece = vec![0u8; n];
                s.serialize_range(off, &mut piece);
                collected.extend_from_slice(&piece);
                off += n as u64;
            }
            assert_eq!(collected, full, "chunk={chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "range exceeds state size")]
    fn serialize_range_out_of_bounds_panics() {
        let s = small_state(6);
        let mut buf = [0u8; 16];
        s.serialize_range(s.size().as_u64() - 8, &mut buf);
    }

    #[test]
    #[should_panic(expected = "payload buffer must match")]
    fn serialize_into_wrong_size_panics() {
        let s = small_state(7);
        let mut buf = vec![0u8; 10];
        s.serialize_into(&mut buf);
    }

    #[test]
    fn sparse_step_at_full_fraction_matches_dense_step() {
        let mut dense = small_state(11);
        let mut sparse = small_state(11);
        dense.step();
        let ranges = sparse.step_sparse(1.0);
        assert_eq!(sparse.digest(), dense.digest());
        // One whole-tensor range per tensor.
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges.iter().map(|(_, l)| l).sum::<u64>(), 300);
    }

    #[test]
    fn sparse_step_mutates_exactly_the_reported_ranges() {
        let mut s = small_state(12);
        let mut before = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut before);
        let ranges = s.step_sparse(0.1);
        let mut after = vec![0u8; s.size().as_usize()];
        s.serialize_into(&mut after);
        let dirty: u64 = ranges.iter().map(|(_, l)| l).sum();
        assert!(dirty >= 30 && dirty < 40, "~10% of 300 bytes, got {dirty}");
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let in_range = ranges
                .iter()
                .any(|&(off, len)| (i as u64) >= off && (i as u64) < off + len);
            if !in_range {
                assert_eq!(b, a, "byte {i} outside dirty ranges changed");
            } else {
                // The odd-delta transform never maps a byte to itself.
                assert_ne!(b, a, "byte {i} inside dirty ranges unchanged");
            }
        }
        assert_eq!(s.step_count(), 1);
    }

    #[test]
    fn sparse_step_at_zero_fraction_touches_nothing_but_the_counter() {
        let mut s = small_state(13);
        let mut before = vec![0u8; 300];
        s.serialize_into(&mut before);
        let ranges = s.step_sparse(0.0);
        assert!(ranges.is_empty());
        let mut after = vec![0u8; 300];
        s.serialize_into(&mut after);
        assert_eq!(before, after);
        assert_eq!(s.step_count(), 1);
    }

    #[test]
    fn step_is_not_identity_even_at_wraparound_steps() {
        // delta = step*2+1 is always odd, so the per-byte map is never the
        // identity; check a few steps including u8 wrap candidates.
        let mut s = small_state(8);
        let mut prev = s.digest();
        for _ in 0..300 {
            s.step();
            let d = s.digest();
            assert_ne!(d, prev);
            prev = d;
        }
    }

    proptest! {
        #[test]
        fn round_trip_any_size(total in 3u64..2048, seed in any::<u64>(), steps in 0u64..20) {
            let mut s = TrainingState::synthetic(ByteSize::from_bytes(total), seed);
            for _ in 0..steps {
                s.step();
            }
            let mut buf = vec![0u8; s.size().as_usize()];
            s.serialize_into(&mut buf);
            let r = TrainingState::restore(&s.layout(), &buf, s.step_count());
            prop_assert_eq!(r.digest(), s.digest());
        }

        #[test]
        fn serialize_range_is_consistent(total in 10u64..512, off in 0u64..500, len in 1usize..64) {
            let s = TrainingState::synthetic(ByteSize::from_bytes(total), 1);
            let off = off.min(total - 1);
            let len = len.min((total - off) as usize);
            let mut full = vec![0u8; total as usize];
            s.serialize_into(&mut full);
            let mut piece = vec![0u8; len];
            s.serialize_range(off, &mut piece);
            prop_assert_eq!(&piece[..], &full[off as usize..off as usize + len]);
        }
    }
}

//! The paper's model zoo (Table 3) with calibrated timing parameters.
//!
//! Checkpoint sizes and batch sizes come straight from Table 3. Iteration
//! times are calibrated against the evaluation's own anchors:
//!
//! * §5.2.3 states VGG16's iteration time is 60 ms — which makes VGG16 the
//!   workload where even PCcheck cannot checkpoint every 10 iterations
//!   cheaply (demand `m/(f·t)` ≈ 1.8 GB/s exceeds the disk), exactly as
//!   Figure 9a reports.
//! * §5.2.3 gives OPT-1.3B throughputs of 0.5 it/s (PCcheck) and
//!   0.256 it/s (CheckFreq) at interval 10: t = 2 s, with the device's raw
//!   write bandwidth just covering the 16.2 GB / 20 s demand while the
//!   single-threaded CheckFreq path (16 GB / 37 s per §1) halves
//!   throughput — both reproduced by these numbers.
//! * The remaining models' times are set so the sustainability boundary
//!   (`m/(f·t)` vs the device bandwidth) lands where Figures 8b–8f put it:
//!   BERT/TransformerXL/OPT-2.7B/BLOOM-7B all checkpoint every 10
//!   iterations with small overhead.
//!
//! Absolute values shift curves; the reproduced *shapes* depend on the
//! ratios `Tw/(N·f·t)` and `m/(f·t·T_S)`, which these figures match.

use serde::{Deserialize, Serialize};

use pccheck_util::{ByteSize, SimDuration};

/// The accelerator a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA A100-40GB on a GCP `a2-highgpu-1g` VM (the SSD testbed).
    A100,
    /// NVIDIA Titan RTX-24GB in the PMEM machine (§5.1).
    TitanRtx,
    /// NVIDIA H100 on an Azure `NC40ads_H100_v5` VM (§5.2.1: iteration time
    /// halved, disk bandwidth doubled).
    H100,
}

impl GpuKind {
    /// Compute speed multiplier relative to the A100 baseline: iteration
    /// times are divided by this factor.
    pub fn compute_factor(self) -> f64 {
        match self {
            GpuKind::A100 => 1.0,
            // The RTX runs BERT visibly slower (§5.2.4); ~2x is consistent
            // with the figure's lower absolute throughput.
            GpuKind::TitanRtx => 0.5,
            GpuKind::H100 => 2.0,
        }
    }

    /// PCIe host-link bandwidth for pinned-memory DMA copies.
    pub fn pcie_bandwidth(self) -> pccheck_util::Bandwidth {
        use pccheck_util::Bandwidth;
        match self {
            // PCIe3 x16 ≈ 12 GB/s effective for pinned transfers.
            GpuKind::A100 => Bandwidth::from_gb_per_sec(12.0),
            // PCIe3 x8 (§5.1): half the lanes.
            GpuKind::TitanRtx => Bandwidth::from_gb_per_sec(6.0),
            // PCIe5 x16.
            GpuKind::H100 => Bandwidth::from_gb_per_sec(48.0),
        }
    }
}

/// One row of Table 3 plus calibrated timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as the paper spells it.
    pub name: &'static str,
    /// Training dataset (Table 3).
    pub dataset: &'static str,
    /// Parameter count.
    pub params: u64,
    /// Checkpoint size `m` — model plus optimizer state (Table 3).
    pub checkpoint_size: ByteSize,
    /// Micro-batch size on the A100 machine (Table 3).
    pub batch_a100: u32,
    /// Micro-batch size on the RTX machine, if the model fits.
    pub batch_rtx: Option<u32>,
    /// Number of pipeline-parallel nodes in the paper's setup (1 for
    /// single-GPU workloads; 2 for OPT-2.7B; 6 for BLOOM-7B).
    pub nodes: u32,
    /// Calibrated per-iteration time on an A100 (forward+backward+update).
    pub iter_time_a100: SimDuration,
}

impl ModelSpec {
    /// Iteration time on the given GPU kind.
    pub fn iter_time(&self, gpu: GpuKind) -> SimDuration {
        self.iter_time_a100.mul_f64(1.0 / gpu.compute_factor())
    }

    /// Checkpoint size per node: pipeline parallelism splits the model, so
    /// each node checkpoints its own partition (§3.1).
    pub fn shard_size(&self) -> ByteSize {
        self.checkpoint_size / u64::from(self.nodes)
    }

    /// Whether the paper evaluates this model in a distributed setting.
    pub fn is_distributed(&self) -> bool {
        self.nodes > 1
    }
}

/// The catalog of evaluated models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelZoo;

impl ModelZoo {
    /// VGG16 on ImageNet: 138 M params, 1.1 GB checkpoint, 60 ms iterations.
    pub fn vgg16() -> ModelSpec {
        ModelSpec {
            name: "VGG16",
            dataset: "ImageNet",
            params: 138_000_000,
            checkpoint_size: ByteSize::from_gb(1.1),
            batch_a100: 32,
            batch_rtx: Some(32),
            nodes: 1,
            iter_time_a100: SimDuration::from_millis(60),
        }
    }

    /// BERT on SQuAD: 345 M params, 4 GB checkpoint.
    pub fn bert() -> ModelSpec {
        ModelSpec {
            name: "BERT",
            dataset: "SQuAD",
            params: 345_000_000,
            checkpoint_size: ByteSize::from_gb(4.0),
            batch_a100: 3,
            batch_rtx: Some(3),
            nodes: 1,
            iter_time_a100: SimDuration::from_millis(500),
        }
    }

    /// Transformer-XL on WikiText: 192 M params, 2.7 GB checkpoint.
    pub fn transformer_xl() -> ModelSpec {
        ModelSpec {
            name: "TransformerXL",
            dataset: "WikiText",
            params: 192_000_000,
            checkpoint_size: ByteSize::from_gb(2.7),
            batch_a100: 64,
            batch_rtx: Some(32),
            nodes: 1,
            iter_time_a100: SimDuration::from_millis(400),
        }
    }

    /// OPT-350M on WikiText (used in the Figure 13 sensitivity study).
    pub fn opt_350m() -> ModelSpec {
        ModelSpec {
            name: "OPT-350M",
            dataset: "WikiText",
            params: 350_000_000,
            checkpoint_size: ByteSize::from_gb(4.2),
            batch_a100: 4,
            batch_rtx: None,
            nodes: 1,
            iter_time_a100: SimDuration::from_millis(500),
        }
    }

    /// OPT-1.3B on WikiText: 16.2 GB checkpoint, ~0.5 iters/s.
    pub fn opt_1_3b() -> ModelSpec {
        ModelSpec {
            name: "OPT-1.3B",
            dataset: "WikiText",
            params: 1_300_000_000,
            checkpoint_size: ByteSize::from_gb(16.2),
            batch_a100: 1,
            batch_rtx: None,
            nodes: 1,
            iter_time_a100: SimDuration::from_secs(2),
        }
    }

    /// OPT-2.7B on WikiText: 45 GB checkpoint over 2 pipeline nodes.
    pub fn opt_2_7b() -> ModelSpec {
        ModelSpec {
            name: "OPT-2.7B",
            dataset: "WikiText",
            params: 2_700_000_000,
            checkpoint_size: ByteSize::from_gb(45.0),
            batch_a100: 1,
            batch_rtx: None,
            nodes: 2,
            iter_time_a100: SimDuration::from_millis(2500),
        }
    }

    /// BLOOM-7B on WikiText: 108 GB checkpoint over 6 pipeline nodes.
    pub fn bloom_7b() -> ModelSpec {
        ModelSpec {
            name: "BLOOM-7B",
            dataset: "WikiText",
            params: 7_000_000_000,
            checkpoint_size: ByteSize::from_gb(108.0),
            batch_a100: 1,
            batch_rtx: None,
            nodes: 6,
            iter_time_a100: SimDuration::from_millis(1500),
        }
    }

    /// All models of Table 3 plus OPT-350M, in the paper's order.
    pub fn all() -> Vec<ModelSpec> {
        vec![
            Self::vgg16(),
            Self::bert(),
            Self::transformer_xl(),
            Self::opt_350m(),
            Self::opt_1_3b(),
            Self::opt_2_7b(),
            Self::bloom_7b(),
        ]
    }

    /// The six models Figure 8/9 sweep.
    pub fn figure8_models() -> Vec<ModelSpec> {
        vec![
            Self::vgg16(),
            Self::bert(),
            Self::transformer_xl(),
            Self::opt_1_3b(),
            Self::opt_2_7b(),
            Self::bloom_7b(),
        ]
    }

    /// Looks a model up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        Self::all()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Sparse-update workload family: each entry is a Table-3 model whose
    /// synthetic step mutates only `update_fraction` of the state, spanning
    /// the sparsity sweep the `ext_delta` experiment measures (1/10/50/100%).
    pub fn sparse_family() -> Vec<SparseModelSpec> {
        vec![
            SparseModelSpec {
                name: "BERT-frozen-backbone",
                base: Self::bert(),
                update_fraction: 0.01,
            },
            SparseModelSpec {
                name: "OPT-1.3B-LoRA",
                base: Self::opt_1_3b(),
                update_fraction: 0.10,
            },
            SparseModelSpec {
                name: "TransformerXL-embeddings",
                base: Self::transformer_xl(),
                update_fraction: 0.50,
            },
            SparseModelSpec {
                name: "VGG16-dense",
                base: Self::vgg16(),
                update_fraction: 1.0,
            },
        ]
    }

    /// Looks a sparse workload up by (case-insensitive) name.
    pub fn sparse_by_name(name: &str) -> Option<SparseModelSpec> {
        Self::sparse_family()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }
}

/// A sparse-update variant of a catalog model: fine-tuning regimes where
/// each optimizer step touches only a fraction of the checkpointed state
/// (frozen backbone layers, LoRA adapters, hot embedding rows). The
/// `update_fraction` knob feeds
/// [`TrainingState::step_sparse`](crate::TrainingState::step_sparse), so
/// the per-step dirty footprint is calibrated exactly like the dense
/// models' checkpoint sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseModelSpec {
    /// Workload name (model + sparsity regime).
    pub name: &'static str,
    /// The dense model this workload fine-tunes.
    pub base: ModelSpec,
    /// Fraction of each tensor's bytes one step mutates, in `(0, 1]`.
    pub update_fraction: f64,
}

impl SparseModelSpec {
    /// Bytes one optimizer step dirties (per node).
    pub fn dirty_bytes_per_step(&self) -> ByteSize {
        ByteSize::from_bytes(
            (self.base.shard_size().as_u64() as f64 * self.update_fraction).ceil() as u64,
        )
    }

    /// Whether a delta checkpoint is worthwhile under `max_dirty_ratio`
    /// (dense workloads should fall back to the full persist path).
    pub fn prefers_delta(&self, max_dirty_ratio: f64) -> bool {
        self.update_fraction <= max_dirty_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_checkpoint_sizes() {
        assert!((ModelZoo::vgg16().checkpoint_size.as_gb() - 1.1).abs() < 1e-9);
        assert!((ModelZoo::bert().checkpoint_size.as_gb() - 4.0).abs() < 1e-9);
        assert!((ModelZoo::transformer_xl().checkpoint_size.as_gb() - 2.7).abs() < 1e-9);
        assert!((ModelZoo::opt_1_3b().checkpoint_size.as_gb() - 16.2).abs() < 1e-9);
        assert!((ModelZoo::opt_2_7b().checkpoint_size.as_gb() - 45.0).abs() < 1e-9);
        assert!((ModelZoo::bloom_7b().checkpoint_size.as_gb() - 108.0).abs() < 1e-9);
    }

    #[test]
    fn table3_batch_sizes() {
        assert_eq!(ModelZoo::vgg16().batch_a100, 32);
        assert_eq!(ModelZoo::bert().batch_a100, 3);
        assert_eq!(ModelZoo::transformer_xl().batch_a100, 64);
        assert_eq!(ModelZoo::transformer_xl().batch_rtx, Some(32));
        assert_eq!(ModelZoo::opt_1_3b().batch_a100, 1);
        assert_eq!(ModelZoo::opt_1_3b().batch_rtx, None);
    }

    #[test]
    fn distributed_models_shard_their_checkpoints() {
        let bloom = ModelZoo::bloom_7b();
        assert!(bloom.is_distributed());
        assert_eq!(bloom.nodes, 6);
        assert!((bloom.shard_size().as_gb() - 18.0).abs() < 1e-9);
        let opt = ModelZoo::opt_2_7b();
        assert_eq!(opt.nodes, 2);
        assert!((opt.shard_size().as_gb() - 22.5).abs() < 1e-9);
        assert!(!ModelZoo::vgg16().is_distributed());
        assert_eq!(
            ModelZoo::vgg16().shard_size(),
            ModelZoo::vgg16().checkpoint_size
        );
    }

    #[test]
    fn iteration_times_match_calibration_anchors() {
        // §5.2.3: VGG16 iteration time is 60 ms.
        assert_eq!(
            ModelZoo::vgg16().iter_time_a100,
            SimDuration::from_millis(60)
        );
        // Fig 8d: OPT-1.3B runs at ~0.5 iters/s without checkpointing.
        assert_eq!(
            ModelZoo::opt_1_3b().iter_time_a100,
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn gpu_kinds_scale_iteration_time() {
        let bert = ModelZoo::bert();
        let a100 = bert.iter_time(GpuKind::A100);
        let rtx = bert.iter_time(GpuKind::TitanRtx);
        let h100 = bert.iter_time(GpuKind::H100);
        assert!(rtx > a100, "RTX is slower than A100");
        assert!(h100 < a100, "H100 halves the iteration time (§5.2.1)");
        assert_eq!(h100, a100 / 2);
    }

    #[test]
    fn pcie_hierarchy_is_sane() {
        assert!(GpuKind::TitanRtx.pcie_bandwidth() < GpuKind::A100.pcie_bandwidth());
        assert!(GpuKind::A100.pcie_bandwidth() < GpuKind::H100.pcie_bandwidth());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelZoo::by_name("bloom-7b").unwrap().name, "BLOOM-7B");
        assert_eq!(ModelZoo::by_name("VGG16").unwrap().name, "VGG16");
        assert!(ModelZoo::by_name("GPT-5").is_none());
    }

    #[test]
    fn figure8_covers_six_models() {
        let models = ModelZoo::figure8_models();
        assert_eq!(models.len(), 6);
        assert_eq!(models[0].name, "VGG16");
        assert_eq!(models[5].name, "BLOOM-7B");
    }

    #[test]
    fn sparse_family_spans_the_sparsity_sweep() {
        let family = ModelZoo::sparse_family();
        let fractions: Vec<f64> = family.iter().map(|m| m.update_fraction).collect();
        assert_eq!(fractions, vec![0.01, 0.10, 0.50, 1.0]);
        for m in &family {
            assert!(m.update_fraction > 0.0 && m.update_fraction <= 1.0);
            assert!(m.dirty_bytes_per_step() <= m.base.shard_size());
        }
        // The 10% LoRA workload dirties ~1.62 GB of OPT-1.3B per step.
        let lora = ModelZoo::sparse_by_name("opt-1.3b-lora").unwrap();
        assert!((lora.dirty_bytes_per_step().as_gb() - 1.62).abs() < 0.01);
        // Dense falls back; sparse workloads take the delta path.
        assert!(!ModelZoo::sparse_by_name("VGG16-dense")
            .unwrap()
            .prefers_delta(0.5));
        assert!(lora.prefers_delta(0.5));
        assert!(ModelZoo::sparse_by_name("GPT-5-lora").is_none());
    }

    #[test]
    fn checkpoint_sizes_grow_with_params_within_family() {
        let all = ModelZoo::all();
        let opt: Vec<_> = all.iter().filter(|m| m.name.starts_with("OPT")).collect();
        for pair in opt.windows(2) {
            assert!(pair[0].params < pair[1].params);
            assert!(pair[0].checkpoint_size < pair[1].checkpoint_size);
        }
    }
}

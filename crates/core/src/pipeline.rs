//! The shared persist pipeline: chunk → write → fence → commit.
//!
//! Every storage-backed strategy in this repository — the PCcheck engine
//! and the traditional/CheckFreq/GPM baselines — moves checkpoint bytes
//! through the same four mechanical stages: slice the snapshot into
//! chunks, write each chunk into a leased slot, fence it durable, and run
//! the store's lock-free commit (meta publish → durable `Committed`
//! state word → `fetch_max` head advance — never a mutex across device
//! I/O). What *differs* between strategies is pure
//! scheduling policy: when the training thread stalls, how many
//! concurrency tickets exist, whether the copier runs inline or on a
//! background thread, and whether fences are issued per writer (PMEM) or
//! deferred into one `msync` (SSD).
//!
//! [`PersistPipeline`] owns the mechanism so the strategies reduce to
//! policy. It also owns the pipeline's telemetry: per-chunk write/persist
//! stage latencies ([`Telemetry::stage_write`] /
//! [`Telemetry::stage_persist`]) and the per-device submission-queue
//! gauges sampled from [`PersistentDevice::queue_depths`] — including
//! every member of a striped or tiered composite device.
//!
//! [`PersistentDevice::queue_depths`]: pccheck_device::PersistentDevice::queue_depths

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use pccheck_device::{
    chunk_count, chunk_digest, fnv1a_fold, ChunkDigestTable, ExtentRecord, ExtentTable, HostBuffer,
    HostBufferPool, FNV_SEED,
};
use pccheck_gpu::{merge_ranges, SnapshotSource};
use pccheck_telemetry::{FlightEventKind, Phase, SpanId, Telemetry};
use pccheck_util::ByteSize;

use crate::codec::{compress_gated, ChunkEncoding, DedupIndex, FrameRecord, FrameTable};
use crate::error::PccheckError;
use crate::meta::DeltaLink;
use crate::qos::QosArbiter;
use crate::store::{CheckpointStore, CommitOutcome, JobId, SlotLease};

/// Tile size for the GPU-kernel write-through loop (kernel grids move data
/// in bounded tiles; GPM's SSD/PMEM adaptation).
pub const KERNEL_COPY_CHUNK: usize = 4 * 1024 * 1024;

/// How payload fences are issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceMode {
    /// Each writer persists the chunks it wrote (required on PMEM, where
    /// fences are per-thread — §4.1).
    PerWriter,
    /// Writers only write; the coordinator issues one deferred fence over
    /// the whole payload in [`PersistPipeline::seal`] (the SSD `msync`
    /// optimization).
    Deferred,
}

/// When the delta path gives up and streams a full checkpoint instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaPolicy {
    /// Fall back to a full checkpoint when dirty bytes exceed this fraction
    /// of the full state (a dense update saves nothing and costs a table).
    pub max_dirty_ratio: f64,
    /// Longest allowed base chain. Every `max_chain`-th checkpoint is
    /// forced full, bounding how many slots a chain pins and how many
    /// payloads recovery must replay.
    pub max_chain: u32,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy {
            max_dirty_ratio: 0.5,
            max_chain: 7,
        }
    }
}

/// What [`PersistPipeline::copy_delta`] actually persisted, and what the
/// caller must pass to `seal`/commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaPlan {
    /// The policy forced a full checkpoint; the payload was streamed by
    /// [`PersistPipeline::copy_streamed`]. Commit with the full-state
    /// digest via [`PersistPipeline::commit`].
    Full {
        /// Persist-phase start timestamp for the caller's `seal`.
        persist_start: u64,
    },
    /// A delta payload (extent table + packed dirty bytes) was streamed.
    /// Commit with `payload_digest` via [`PersistPipeline::commit_delta`].
    Delta {
        /// Persist-phase start timestamp for the caller's `seal`.
        persist_start: u64,
        /// Bytes of payload in the slot (table + packed extents).
        payload_len: u64,
        /// Checksum of the serialized extent table (the delta slot's meta
        /// digest).
        payload_digest: u64,
        /// Back-pointer to commit with.
        link: DeltaLink,
        /// Packed dirty bytes persisted (excludes the table).
        dirty_bytes: u64,
    },
}

/// Rolled-up outcome of [`PersistPipeline::checkpoint_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Only dirty extents were persisted, chained onto the base.
    Delta {
        /// Bytes of payload in the slot (table + packed extents).
        payload_len: u64,
        /// Packed dirty bytes persisted.
        dirty_bytes: u64,
        /// Depth of the committed checkpoint in its chain.
        chain_depth: u32,
    },
    /// The policy fell back to a full streamed checkpoint.
    Full,
}

/// Rolled-up outcome of [`PersistPipeline::checkpoint_framed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramedOutcome {
    /// A framed payload (frame table + packed chunks) was persisted.
    Framed {
        /// Physical bytes in the slot (table + packed chunks).
        payload_len: u64,
        /// Bytes the codec avoided persisting.
        saved_bytes: u64,
        /// Chunks stored as dedup references.
        dedup_chunks: u64,
    },
    /// The codec saved nothing (or was inapplicable) and the payload was
    /// streamed raw.
    Raw,
}

/// Telemetry context for one checkpoint's trip through the pipeline.
#[derive(Clone, Copy)]
pub struct PipelineCtx<'a> {
    /// The recording handle (may be disabled: every hook no-ops).
    pub telemetry: &'a Telemetry,
    /// The checkpoint's span.
    pub span: SpanId,
}

/// Per-chunk digests collected while a full payload streamed through the
/// copy paths, parked until [`PersistPipeline::commit`] can bind them to
/// the commit's digest and write the slot's [`ChunkDigestTable`].
#[derive(Debug)]
struct PendingDigests {
    counter: u64,
    chunk_len: u64,
    payload_len: u64,
    digests: Vec<u64>,
}

/// The shared chunk-scheduled I/O layer over a [`CheckpointStore`].
///
/// Cloning is cheap: clones share the store and the DRAM staging pool, so
/// a strategy may hand a clone to a background persist thread.
#[derive(Debug, Clone)]
pub struct PersistPipeline {
    store: Arc<CheckpointStore>,
    pool: Option<HostBufferPool>,
    /// Writer-pool width (`p` in the paper). Atomic and shared across
    /// clones so the online controller can retune it between checkpoints
    /// without rebuilding the pipeline.
    writers: Arc<AtomicUsize>,
    fence: FenceMode,
    /// Bandwidth arbiter gating writer-pool leases when several jobs
    /// multiplex this pipeline (service mode). `None` = no arbitration.
    qos: Option<Arc<QosArbiter>>,
    /// Per-slot digests awaiting commit, shared across clones so a
    /// background committer sees what the copier collected.
    pending_digests: Arc<Mutex<HashMap<u32, PendingDigests>>>,
    /// Chunk codec + dedup state, shared across clones (the controller
    /// toggles `enabled`; the dedup index survives across checkpoints).
    codec: Arc<CodecState>,
}

/// Shared chunk-codec state: the on/off switch the controller flips and
/// the content-addressed dedup index over each job's latest framed commit.
#[derive(Debug, Default)]
struct CodecState {
    enabled: AtomicBool,
    dedup: Mutex<DedupIndex>,
}

/// What [`PersistPipeline::copy_framed`] persisted and what
/// [`PersistPipeline::commit_framed`] must bind to the commit record.
#[derive(Debug, Clone)]
pub struct FramedPlan {
    /// Persist-phase start timestamp for the caller's `seal`.
    pub persist_start: u64,
    /// Physical bytes in the slot (frame table + packed chunks).
    pub payload_len: u64,
    /// Checksum of the serialized frame table (the framed slot's meta
    /// digest, mirroring the delta path's table-checksum discipline).
    pub payload_digest: u64,
    /// Back-pointer pinning the base checkpoint, present iff any chunk
    /// deduplicated against it.
    pub link: Option<DeltaLink>,
    /// Logical (uncompressed) payload length.
    pub logical_len: u64,
    /// Bytes the codec avoided persisting (`logical - physical`).
    pub saved_bytes: u64,
    /// Chunks stored as dedup references instead of materialized bytes.
    pub dedup_chunks: u64,
    /// The frame table as persisted (commit installs the next dedup
    /// generation from its materialized records).
    pub table: FrameTable,
}

impl PersistPipeline {
    /// A single-writer, per-writer-fence pipeline over `store` with no
    /// DRAM staging pool (whole-buffer strategies).
    pub fn new(store: Arc<CheckpointStore>) -> Self {
        PersistPipeline {
            store,
            pool: None,
            writers: Arc::new(AtomicUsize::new(1)),
            fence: FenceMode::PerWriter,
            qos: None,
            pending_digests: Arc::new(Mutex::new(HashMap::new())),
            codec: Arc::new(CodecState::default()),
        }
    }

    /// Whether a full payload of `total` bytes cut into `chunk`-byte
    /// chunks fits the store's per-slot digest-table capacity.
    fn digest_table_fits(&self, total: ByteSize, chunk: ByteSize) -> bool {
        let cap = self.store.digest_chunks() as usize;
        cap > 0 && chunk_count(total.as_u64(), chunk.as_u64()) <= cap
    }

    /// Parks the chunk digests a copy path collected for `lease`'s slot.
    fn park_digests(&self, lease: &SlotLease, chunk_len: u64, total: ByteSize, digests: Vec<u64>) {
        self.pending_digests.lock().insert(
            lease.slot,
            PendingDigests {
                counter: lease.counter,
                chunk_len,
                payload_len: total.as_u64(),
                digests,
            },
        );
    }

    /// Writes the slot's per-chunk digest table from digests parked by the
    /// copy path, binding them to the commit's `digest`. Stale leftovers
    /// (different counter or payload length — an earlier aborted attempt
    /// on the same slot) are silently discarded.
    fn flush_digest_table(
        &self,
        lease: &SlotLease,
        payload_len: u64,
        digest: u64,
    ) -> Result<(), PccheckError> {
        let Some(p) = self.pending_digests.lock().remove(&lease.slot) else {
            return Ok(());
        };
        if p.counter != lease.counter || p.payload_len != payload_len {
            return Ok(());
        }
        let table = ChunkDigestTable {
            chunk_len: p.chunk_len,
            payload_len,
            counter: lease.counter,
            payload_digest: digest,
            digests: p.digests,
        };
        self.store.write_digest_table(lease.slot, &table)?;
        Ok(())
    }

    /// Sets the number of parallel writer threads (`p` in the paper).
    pub fn with_writers(self, writers: usize) -> Self {
        self.set_writers(writers);
        self
    }

    /// Retunes the writer-pool width online; takes effect on the next
    /// copy call (in-flight checkpoints keep the width they started with).
    pub fn set_writers(&self, writers: usize) {
        self.writers.store(writers.max(1), Ordering::Release);
    }

    /// The current writer-pool width.
    pub fn writers(&self) -> usize {
        self.writers.load(Ordering::Acquire)
    }

    /// Enables or disables the chunk codec at build time.
    pub fn with_codec(self, enabled: bool) -> Self {
        self.set_codec_enabled(enabled);
        self
    }

    /// Flips the chunk codec online (the controller's switch). Disabling
    /// also drops the dedup index: re-enabling starts from a cold index
    /// rather than trusting generations whose age is unknown.
    pub fn set_codec_enabled(&self, enabled: bool) {
        let was = self.codec.enabled.swap(enabled, Ordering::AcqRel);
        if was && !enabled {
            self.codec.dedup.lock().clear();
        }
    }

    /// Whether the chunk codec is currently enabled.
    pub fn codec_enabled(&self) -> bool {
        self.codec.enabled.load(Ordering::Acquire)
    }

    /// Sets the fence mode.
    pub fn with_fence(mut self, fence: FenceMode) -> Self {
        self.fence = fence;
        self
    }

    /// Attaches the DRAM staging pool used by the chunk-scheduled copy
    /// paths ([`copy_staged`](Self::copy_staged) /
    /// [`copy_streamed`](Self::copy_streamed)).
    pub fn with_staging(mut self, pool: HostBufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches the bandwidth QoS arbiter: every chunk write first
    /// acquires a byte-metered grant on behalf of the lease's job, so
    /// concurrent jobs share the writer pool in weighted-deficit
    /// round-robin order instead of device-queue arrival order.
    pub fn with_qos(mut self, qos: Arc<QosArbiter>) -> Self {
        self.qos = Some(qos);
        self
    }

    /// The attached QoS arbiter, when one is installed.
    pub fn qos(&self) -> Option<&Arc<QosArbiter>> {
        self.qos.as_ref()
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// The fence mode this pipeline issues.
    pub fn fence(&self) -> FenceMode {
        self.fence
    }

    /// The staging pool, when one is attached.
    pub fn staging_pool(&self) -> Option<&HostBufferPool> {
        self.pool.as_ref()
    }

    fn pool(&self) -> &HostBufferPool {
        self.pool
            .as_ref()
            .expect("chunk-scheduled copy paths need a staging pool")
    }

    /// Leases a free slot and refreshes the queue-depth gauges.
    ///
    /// Single-tenant stores only; on a multi-tenant (service-mode) store
    /// use [`lease_for`](Self::lease_for) with the job id.
    pub fn lease(&self, ctx: PipelineCtx<'_>) -> SlotLease {
        let lease = self.store.begin_checkpoint();
        ctx.telemetry
            .gauge_queue_depth(self.store.free_slot_count() as u64);
        self.sample_device_queues(ctx);
        lease
    }

    /// Leases a free slot from `job`'s namespace (or the global pool when
    /// `job` is `None`) and refreshes the queue-depth gauges with that
    /// job's free-slot count.
    ///
    /// # Errors
    ///
    /// Fails when `job` names no namespace in the store.
    pub fn lease_for(
        &self,
        ctx: PipelineCtx<'_>,
        job: Option<JobId>,
    ) -> Result<SlotLease, PccheckError> {
        let lease = match job {
            Some(j) => self.store.begin_checkpoint_job(j)?,
            None => self.store.begin_checkpoint(),
        };
        let free = match job {
            Some(j) => self.store.free_slot_count_job(j)?,
            None => self.store.free_slot_count(),
        };
        ctx.telemetry.gauge_queue_depth(free as u64);
        self.sample_device_queues(ctx);
        Ok(lease)
    }

    /// Writes one payload chunk, feeding the write-stage histogram and the
    /// per-device submission-queue gauges. Returns the nanoseconds spent in
    /// the device call (media time, for the writer's queue-wait split).
    fn write_chunk(
        &self,
        ctx: PipelineCtx<'_>,
        lease: &SlotLease,
        offset: u64,
        data: &[u8],
    ) -> Result<u64, PccheckError> {
        let start = ctx.telemetry.now_nanos();
        self.store.write_payload(lease, offset, data)?;
        let mut media = 0;
        if ctx.telemetry.is_enabled() {
            media = ctx.telemetry.now_nanos().saturating_sub(start);
            ctx.telemetry.stage_write(media);
            self.sample_device_queues(ctx);
        }
        Ok(media)
    }

    /// Fences one payload range, feeding the persist-stage histogram.
    /// Returns the nanoseconds spent in the device call (media time).
    fn persist_chunk(
        &self,
        ctx: PipelineCtx<'_>,
        lease: &SlotLease,
        offset: u64,
        len: u64,
    ) -> Result<u64, PccheckError> {
        let start = ctx.telemetry.now_nanos();
        self.store.persist_payload(lease, offset, len)?;
        let mut media = 0;
        if ctx.telemetry.is_enabled() {
            media = ctx.telemetry.now_nanos().saturating_sub(start);
            ctx.telemetry.stage_persist(media);
        }
        Ok(media)
    }

    /// Samples the device's submission queues into the per-device gauges
    /// and, when a QoS arbiter is attached, feeds the summed depth into
    /// its backpressure cap. Composite devices report the controller at
    /// index 0 and each member after it.
    fn sample_device_queues(&self, ctx: PipelineCtx<'_>) {
        if self.qos.is_none() && !ctx.telemetry.is_enabled() {
            return;
        }
        let depths = self.store.device().queue_depths();
        if let Some(q) = &self.qos {
            q.observe_queue_depth(depths.iter().copied().sum());
        }
        if !ctx.telemetry.is_enabled() {
            return;
        }
        for (i, depth) in depths.iter().enumerate() {
            ctx.telemetry.gauge_device_queue(i, *depth);
        }
    }

    /// Writes one chunk and, in [`FenceMode::PerWriter`], fences it; emits
    /// the per-chunk `Persist` telemetry either way (in deferred mode the
    /// fence follows in [`seal`](Self::seal)).
    fn write_and_fence_chunk(
        &self,
        ctx: PipelineCtx<'_>,
        lease: &SlotLease,
        offset: u64,
        data: &[u8],
    ) -> Result<u64, PccheckError> {
        // Held across write + fence: the grant is the writer-pool lease
        // the WDRR arbiter schedules. Legacy (non-namespaced) leases in a
        // QoS pipeline charge job 0.
        let _grant = self
            .qos
            .as_ref()
            .map(|q| q.acquire(lease.job().unwrap_or(0), data.len() as u64));
        let mut media = self.write_chunk(ctx, lease, offset, data)?;
        if self.fence == FenceMode::PerWriter {
            media += self.persist_chunk(ctx, lease, offset, data.len() as u64)?;
        }
        ctx.telemetry
            .chunk(ctx.span, Phase::Persist, offset, data.len() as u64);
        Ok(media)
    }

    /// Non-pipelined copy (Figure 6): stage the entire snapshot in DRAM
    /// chunks, then persist with `p` parallel writers distributing chunks
    /// round-robin.
    ///
    /// Returns the persist-phase start timestamp so the caller can close
    /// the phase after [`seal`](Self::seal).
    ///
    /// # Errors
    ///
    /// Propagates the first device error any writer hit.
    pub fn copy_staged(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        lease: &SlotLease,
        total: ByteSize,
    ) -> Result<u64, PccheckError> {
        let pool = self.pool();
        // Stage all chunks (blocks on the pool if DRAM is scarce).
        let copy_start = ctx.telemetry.now_nanos();
        let chunk = pool.chunk_size();
        let mut chunk_digests = self.digest_table_fits(total, chunk).then(Vec::new);
        let mut staged = Vec::new();
        let mut off = 0u64;
        while off < total.as_u64() {
            let n = chunk.as_u64().min(total.as_u64() - off) as usize;
            let mut buf = pool.acquire();
            src.copy_range_to_host(off, &mut buf.as_mut_slice()[..n]);
            if let Some(d) = chunk_digests.as_mut() {
                d.push(chunk_digest(&buf.as_slice()[..n]));
            }
            ctx.telemetry.chunk(ctx.span, Phase::GpuCopy, off, n as u64);
            staged.push((off, n, buf));
            off += n as u64;
        }
        if let Some(digests) = chunk_digests {
            self.park_digests(lease, chunk.as_u64(), total, digests);
        }
        ctx.telemetry
            .phase_done(ctx.span, Phase::GpuCopy, copy_start);
        self.store.flight().record(
            FlightEventKind::CopyDone,
            lease.counter,
            lease.slot,
            0,
            total.as_u64(),
            0,
        );
        // Persist with p writers, chunks distributed round-robin.
        let persist_start = ctx.telemetry.now_nanos();
        let p = self.writers();
        let results: Mutex<Vec<PccheckError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|s| {
            for w in 0..p {
                let staged = &staged;
                let results = &results;
                s.spawn(move |_| {
                    let actor_start = ctx.telemetry.now_nanos();
                    let mut actor_bytes = 0u64;
                    let mut media_nanos = 0u64;
                    for (off, n, buf) in staged.iter().skip(w).step_by(p) {
                        match self.write_and_fence_chunk(ctx, lease, *off, &buf.as_slice()[..*n]) {
                            Ok(media) => {
                                actor_bytes += *n as u64;
                                media_nanos += media;
                            }
                            Err(e) => results.lock().push(e),
                        }
                    }
                    if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("writer-{w}"),
                            actor_start,
                            actor_bytes,
                            media_nanos,
                        );
                    }
                });
            }
        })
        .expect("writer thread panicked");
        drop(staged); // chunks return to the pool
        if let Some(e) = results.into_inner().into_iter().next() {
            return Err(e);
        }
        Ok(persist_start)
    }

    /// Pipelined copy (Figure 7): a producer copies chunks from the GPU
    /// while `p` writer threads persist already-copied chunks; each DRAM
    /// buffer returns to the pool the moment its chunk is durable.
    ///
    /// Returns the persist-phase start timestamp (the phases overlap, so
    /// it coincides with the copy start).
    ///
    /// # Errors
    ///
    /// Propagates the first device error any writer hit.
    pub fn copy_streamed(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        lease: &SlotLease,
        total: ByteSize,
    ) -> Result<u64, PccheckError> {
        type Job = (u64, usize, HostBuffer);
        let pool = self.pool();
        let start = ctx.telemetry.now_nanos();
        let p = self.writers();
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(pool.total_chunks());
        let results: Mutex<Vec<PccheckError>> = Mutex::new(Vec::new());
        // First device error aborts the stream: writers stop issuing I/O
        // (they keep draining the channel so the producer never deadlocks
        // on a full pool) and the producer stops copying and enqueueing.
        let abort = AtomicBool::new(false);
        crossbeam::thread::scope(|s| {
            for w in 0..p {
                let rx = rx.clone();
                let results = &results;
                let abort = &abort;
                s.spawn(move |_| {
                    let actor_start = ctx.telemetry.now_nanos();
                    let mut actor_bytes = 0u64;
                    let mut media_nanos = 0u64;
                    while let Ok((off, n, buf)) = rx.recv() {
                        if !abort.load(Ordering::Acquire) {
                            match self.write_and_fence_chunk(ctx, lease, off, &buf.as_slice()[..n])
                            {
                                Ok(media) => {
                                    actor_bytes += n as u64;
                                    media_nanos += media;
                                }
                                Err(e) => {
                                    results.lock().push(e);
                                    abort.store(true, Ordering::Release);
                                }
                            }
                        }
                        drop(buf); // free the DRAM chunk for the producer
                    }
                    if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("writer-{w}"),
                            actor_start,
                            actor_bytes,
                            media_nanos,
                        );
                    }
                });
            }
            drop(rx);
            // Producer: GPU→DRAM chunk copies. Per-chunk digests fold in
            // here, where the bytes are already hot in cache.
            let chunk = pool.chunk_size();
            let mut chunk_digests = self.digest_table_fits(total, chunk).then(Vec::new);
            let mut off = 0u64;
            while off < total.as_u64() && !abort.load(Ordering::Acquire) {
                let n = chunk.as_u64().min(total.as_u64() - off) as usize;
                let mut buf = pool.acquire();
                src.copy_range_to_host(off, &mut buf.as_mut_slice()[..n]);
                if let Some(d) = chunk_digests.as_mut() {
                    d.push(chunk_digest(&buf.as_slice()[..n]));
                }
                ctx.telemetry.chunk(ctx.span, Phase::GpuCopy, off, n as u64);
                tx.send((off, n, buf)).expect("writers outlive producer");
                off += n as u64;
            }
            ctx.telemetry.phase_done(ctx.span, Phase::GpuCopy, start);
            if off >= total.as_u64() {
                self.store.flight().record(
                    FlightEventKind::CopyDone,
                    lease.counter,
                    lease.slot,
                    0,
                    total.as_u64(),
                    0,
                );
                if let Some(digests) = chunk_digests {
                    self.park_digests(lease, chunk.as_u64(), total, digests);
                }
            }
            drop(tx); // writers drain and exit
        })
        .expect("pipelined checkpoint thread panicked");
        if let Some(e) = results.into_inner().into_iter().next() {
            return Err(e);
        }
        Ok(start)
    }

    /// The logical state length a committed checkpoint represents,
    /// regardless of how it is stored: a framed payload answers from its
    /// frame header, an extent delta from its table's `full_len`, and a
    /// legacy full checkpoint is its own logical image. 0 when the head
    /// is unreadable (the caller's size check then forces a full
    /// fallback).
    fn base_logical_len(&self, base: &crate::meta::CheckMeta) -> u64 {
        let off = self.store.slot_payload_offset(base.slot);
        if base.payload_len >= crate::codec::FRAME_HEADER as u64 {
            let mut head = [0u8; crate::codec::FRAME_HEADER];
            if self.store.device().read_durable_at(off, &mut head).is_ok()
                && u64::from_le_bytes(head[..8].try_into().expect("8 bytes"))
                    == crate::codec::FRAME_MAGIC
            {
                return u64::from_le_bytes(head[24..32].try_into().expect("8 bytes"));
            }
        }
        if base.delta.is_some() {
            self.read_extent_table(base.slot, base.payload_len)
                .map(|t| t.full_len)
                .unwrap_or(0)
        } else {
            base.payload_len
        }
    }

    /// Reads and authenticates the extent table at the head of a delta
    /// slot's payload.
    fn read_extent_table(&self, slot: u32, payload_len: u64) -> Result<ExtentTable, PccheckError> {
        let base_off = self.store.slot_payload_offset(slot);
        let mut head = [0u8; pccheck_device::extent::EXTENT_TABLE_HEADER + 8];
        self.store.device().read_durable_at(base_off, &mut head)?;
        let count = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
        let table_len = ExtentTable::encoded_len_for(count).min(payload_len);
        let mut buf = vec![0u8; table_len as usize];
        self.store.device().read_durable_at(base_off, &mut buf)?;
        Ok(ExtentTable::decode(&buf)?)
    }

    /// Incremental copy: persists only the snapshot's dirty extents
    /// (`[extent table][packed dirty bytes]`) into the leased slot,
    /// streaming the packed bytes through the same overlapped
    /// producer/writer machinery as [`copy_streamed`](Self::copy_streamed).
    ///
    /// Falls back to a full `copy_streamed` — returning
    /// [`DeltaPlan::Full`] — when there is no committed base, the base
    /// chain would exceed `policy.max_chain`, the dirty ratio exceeds
    /// `policy.max_dirty_ratio`, the delta payload would not actually be
    /// smaller than the full state, or the base describes a different
    /// state size. Periodic falls back bound recovery cost: a chain is
    /// never longer than `max_chain` links.
    ///
    /// `full_digest` is the digest of the complete state *after* this
    /// update (what [`commit`](Self::commit) would be given on the full
    /// path); recovery verifies the chain-reconstructed state against it.
    ///
    /// Delta checkpoints require the serial checkpoint discipline: one
    /// in-flight checkpoint at a time, each based on the latest committed
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates the first device error any writer hit.
    pub fn copy_delta(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        lease: &SlotLease,
        total: ByteSize,
        full_digest: u64,
        policy: DeltaPolicy,
    ) -> Result<DeltaPlan, PccheckError> {
        let dirty = merge_ranges(src.dirty_ranges());
        let dirty_bytes: u64 = dirty.iter().map(|(_, len)| len).sum();
        let ratio = if total.as_u64() == 0 {
            1.0
        } else {
            dirty_bytes as f64 / total.as_u64() as f64
        };
        ctx.telemetry.gauge_dirty_ratio((ratio * 1000.0) as u64);

        // Delta chains are per-tenant: a namespaced lease bases on its own
        // namespace's head, never on another job's checkpoint.
        let base = self.store.latest_committed_for(lease);
        let plan_delta = match &base {
            None => None,
            Some(base) => {
                let base_depth = base.delta.map_or(0, |l| l.chain_depth);
                let base_full_len = self.base_logical_len(base);
                let table_len = ExtentTable::encoded_len_for(dirty.len());
                let fits = table_len + dirty_bytes < total.as_u64()
                    && table_len + dirty_bytes <= self.store.slot_size().as_u64();
                (base_depth + 1 <= policy.max_chain
                    && ratio <= policy.max_dirty_ratio
                    && base_full_len == total.as_u64()
                    && fits)
                    .then_some((*base, base_depth, table_len))
            }
        };
        let Some((base, base_depth, table_len)) = plan_delta else {
            let persist_start = self.copy_streamed(ctx, src, lease, total)?;
            return Ok(DeltaPlan::Full { persist_start });
        };

        let pool = self.pool();
        let start = ctx.telemetry.now_nanos();
        let p = self.writers();
        type Job = (u64, usize, HostBuffer);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(pool.total_chunks());
        let results: Mutex<Vec<PccheckError>> = Mutex::new(Vec::new());
        let abort = AtomicBool::new(false);
        let mut extent_digests: Vec<u64> = Vec::with_capacity(dirty.len());
        crossbeam::thread::scope(|s| {
            for w in 0..p {
                let rx = rx.clone();
                let results = &results;
                let abort = &abort;
                s.spawn(move |_| {
                    let actor_start = ctx.telemetry.now_nanos();
                    let mut actor_bytes = 0u64;
                    let mut media_nanos = 0u64;
                    while let Ok((off, n, buf)) = rx.recv() {
                        if !abort.load(Ordering::Acquire) {
                            match self.write_and_fence_chunk(ctx, lease, off, &buf.as_slice()[..n])
                            {
                                Ok(media) => {
                                    actor_bytes += n as u64;
                                    media_nanos += media;
                                }
                                Err(e) => {
                                    results.lock().push(e);
                                    abort.store(true, Ordering::Release);
                                }
                            }
                        }
                        drop(buf);
                    }
                    if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("writer-{w}"),
                            actor_start,
                            actor_bytes,
                            media_nanos,
                        );
                    }
                });
            }
            drop(rx);
            // Producer: copy each dirty extent from the snapshot, packing
            // them back to back after the table and folding the per-extent
            // digest as the chunks stream by.
            let chunk = pool.chunk_size();
            let mut dst = table_len;
            'extents: for &(ext_off, ext_len) in &dirty {
                let mut h = FNV_SEED;
                let mut done = 0u64;
                while done < ext_len {
                    if abort.load(Ordering::Acquire) {
                        break 'extents;
                    }
                    let n = chunk.as_u64().min(ext_len - done) as usize;
                    let mut buf = pool.acquire();
                    src.copy_range_to_host(ext_off + done, &mut buf.as_mut_slice()[..n]);
                    h = fnv1a_fold(h, &buf.as_slice()[..n]);
                    ctx.telemetry
                        .chunk(ctx.span, Phase::GpuCopy, ext_off + done, n as u64);
                    tx.send((dst, n, buf)).expect("writers outlive producer");
                    done += n as u64;
                    dst += n as u64;
                }
                extent_digests.push(h);
            }
            ctx.telemetry.phase_done(ctx.span, Phase::GpuCopy, start);
            if extent_digests.len() == dirty.len() {
                self.store.flight().record(
                    FlightEventKind::CopyDone,
                    lease.counter,
                    lease.slot,
                    0,
                    dirty_bytes,
                    0,
                );
            }
            drop(tx);
        })
        .expect("delta checkpoint thread panicked");
        if let Some(e) = results.into_inner().into_iter().next() {
            return Err(e);
        }

        // Build and persist the extent table at the head of the slot.
        let map_start = ctx.telemetry.now_nanos();
        let table = ExtentTable {
            full_len: total.as_u64(),
            full_digest,
            extents: dirty
                .iter()
                .zip(&extent_digests)
                .map(|(&(offset, len), &digest)| ExtentRecord {
                    offset,
                    len,
                    digest,
                })
                .collect(),
        };
        let table_bytes = table.encode();
        debug_assert_eq!(table_bytes.len() as u64, table_len);
        self.write_and_fence_chunk(ctx, lease, 0, &table_bytes)?;
        ctx.telemetry
            .phase_done(ctx.span, Phase::DeltaMap, map_start);
        let payload_len = table_len + dirty_bytes;
        ctx.telemetry
            .add_delta_bytes_saved(total.as_u64().saturating_sub(payload_len));
        Ok(DeltaPlan::Delta {
            persist_start: start,
            payload_len,
            payload_digest: crate::meta::checksum(&table_bytes),
            link: DeltaLink {
                base_counter: base.counter,
                base_slot: base.slot,
                chain_depth: base_depth + 1,
            },
            dirty_bytes,
        })
    }

    /// Runs the store's delta-aware CAS commit and closes the `Commit`
    /// phase. Pairs with [`DeltaPlan::Delta`] from
    /// [`copy_delta`](Self::copy_delta).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn commit_delta(
        &self,
        ctx: PipelineCtx<'_>,
        lease: SlotLease,
        iteration: u64,
        payload_len: u64,
        payload_digest: u64,
        link: DeltaLink,
    ) -> Result<CommitOutcome, PccheckError> {
        let commit_start = ctx.telemetry.now_nanos();
        // Delta payloads carry per-extent digests in their extent table
        // already; any digests parked for this slot are stale leftovers.
        self.pending_digests.lock().remove(&lease.slot);
        let outcome =
            self.store
                .commit_with_delta(lease, iteration, payload_len, payload_digest, Some(link));
        ctx.telemetry
            .phase_done(ctx.span, Phase::Commit, commit_start);
        outcome
    }

    /// One-call incremental checkpoint: lease →
    /// [`copy_delta`](Self::copy_delta) → `seal` → commit, routing to the
    /// delta or full commit as the plan dictates.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn checkpoint_delta(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        iteration: u64,
        full_digest: u64,
        policy: DeltaPolicy,
    ) -> Result<(CommitOutcome, DeltaOutcome), PccheckError> {
        let total = src.size();
        let lease = self.lease(ctx);
        match self.copy_delta(ctx, src, &lease, total, full_digest, policy)? {
            DeltaPlan::Full { persist_start } => {
                self.seal(ctx, &lease, iteration, total, persist_start)?;
                let out = self.commit(ctx, lease, iteration, total.as_u64(), full_digest)?;
                Ok((out, DeltaOutcome::Full))
            }
            DeltaPlan::Delta {
                persist_start,
                payload_len,
                payload_digest,
                link,
                dirty_bytes,
            } => {
                self.seal(
                    ctx,
                    &lease,
                    iteration,
                    ByteSize::from_bytes(payload_len),
                    persist_start,
                )?;
                let out =
                    self.commit_delta(ctx, lease, iteration, payload_len, payload_digest, link)?;
                Ok((
                    out,
                    DeltaOutcome::Delta {
                        payload_len,
                        dirty_bytes,
                        chain_depth: link.chain_depth,
                    },
                ))
            }
        }
    }

    /// Codec copy: stages the snapshot, content-addresses every chunk,
    /// deduplicates byte-identical chunks (within this frame and against
    /// the latest committed checkpoint's frame), entropy-gate-compresses
    /// the rest, and persists `[frame table][packed chunks]` into the
    /// leased slot. The table is written *last* so a torn frame is never
    /// mistaken for a complete one — the same ordering discipline as the
    /// delta path's extent table.
    ///
    /// Returns `Ok(None)` — persisting nothing — when the codec path is
    /// inapplicable or unprofitable: the staging pool cannot hold the
    /// whole snapshot at once, the physical payload would not be smaller
    /// than the raw one, or it would overflow the slot. The caller then
    /// falls back to a raw copy path; the slot is untouched.
    ///
    /// `full_digest` is the digest of the complete logical state (what
    /// [`commit`](Self::commit) would be given on the raw path); restore
    /// verifies the reconstructed payload against it end to end.
    ///
    /// # Errors
    ///
    /// Propagates the first device error any writer hit.
    pub fn copy_framed(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        lease: &SlotLease,
        total: ByteSize,
        full_digest: u64,
        policy: DeltaPolicy,
    ) -> Result<Option<FramedPlan>, PccheckError> {
        let pool = self.pool();
        let chunk = pool.chunk_size();
        let n_chunks = chunk_count(total.as_u64(), chunk.as_u64());
        // The codec stages the whole snapshot (dedup needs every chunk's
        // content address before any byte is packed); a pool smaller than
        // the snapshot would deadlock on `acquire`.
        if n_chunks == 0 || pool.total_chunks() < n_chunks {
            return Ok(None);
        }

        // Stage all chunks, folding each content address while the bytes
        // are hot in cache.
        let copy_start = ctx.telemetry.now_nanos();
        let mut staged: Vec<(u64, usize, HostBuffer, u64)> = Vec::with_capacity(n_chunks);
        let mut off = 0u64;
        while off < total.as_u64() {
            let n = chunk.as_u64().min(total.as_u64() - off) as usize;
            let mut buf = pool.acquire();
            src.copy_range_to_host(off, &mut buf.as_mut_slice()[..n]);
            let digest = chunk_digest(&buf.as_slice()[..n]);
            ctx.telemetry.chunk(ctx.span, Phase::GpuCopy, off, n as u64);
            staged.push((off, n, buf, digest));
            off += n as u64;
        }
        ctx.telemetry
            .phase_done(ctx.span, Phase::GpuCopy, copy_start);
        self.store.flight().record(
            FlightEventKind::CopyDone,
            lease.counter,
            lease.slot,
            0,
            total.as_u64(),
            0,
        );

        // Cross-checkpoint dedup bases on the job's latest committed
        // checkpoint, bounded by the same chain policy as deltas: every
        // base reference pins the base's slot via a `DeltaLink`.
        let base = self.store.latest_committed_for(lease);
        let cross = base.as_ref().and_then(|b| {
            let base_depth = b.delta.map_or(0, |l| l.chain_depth);
            (base_depth + 1 <= policy.max_chain).then_some((b.counter, b.slot, base_depth))
        });

        let persist_start = ctx.telemetry.now_nanos();

        // Classify every chunk: self-dedup (byte compare — exact), then
        // base dedup (content address against the pinned generation), then
        // materialize.
        let mut records: Vec<FrameRecord> = Vec::with_capacity(staged.len());
        let mut self_seen: HashMap<u64, usize> = HashMap::new();
        let mut materialized: Vec<usize> = Vec::new();
        {
            let dedup = self.codec.dedup.lock();
            for (i, (_, n, buf, digest)) in staged.iter().enumerate() {
                if let Some(&j) = self_seen.get(digest) {
                    let (_, jn, jbuf, _) = &staged[j];
                    if jn == n && jbuf.as_slice()[..*jn] == buf.as_slice()[..*n] {
                        records.push(FrameRecord {
                            kind: ChunkEncoding::DedupSelf,
                            aux: j as u32,
                            logical_len: *n as u64,
                            a: 0,
                            b: 0,
                            digest: *digest,
                        });
                        continue;
                    }
                }
                if let Some((base_counter, _, _)) = cross {
                    if let Some(hit) =
                        dedup.lookup(lease.job(), base_counter, *digest, *n as u64)
                    {
                        records.push(FrameRecord {
                            kind: ChunkEncoding::DedupBase,
                            aux: hit.slot,
                            logical_len: *n as u64,
                            a: hit.counter,
                            b: hit.logical_off,
                            digest: *digest,
                        });
                        continue;
                    }
                }
                self_seen.entry(*digest).or_insert(i);
                materialized.push(i);
                // Placeholder; phys offset/len assigned after compression.
                records.push(FrameRecord {
                    kind: ChunkEncoding::Raw,
                    aux: 0,
                    logical_len: *n as u64,
                    a: 0,
                    b: 0,
                    digest: *digest,
                });
            }
        }

        // Compress materialized chunks with the writer pool's parallelism
        // (compression is the CPU-bound stage; the entropy gate keeps
        // dense payloads cheap).
        let p = self.writers();
        let compressed: Mutex<HashMap<usize, Vec<u8>>> = Mutex::new(HashMap::new());
        crossbeam::thread::scope(|s| {
            for w in 0..p {
                let materialized = &materialized;
                let staged = &staged;
                let compressed = &compressed;
                s.spawn(move |_| {
                    for &i in materialized.iter().skip(w).step_by(p) {
                        let (_, n, buf, _) = &staged[i];
                        if let Some(c) = compress_gated(&buf.as_slice()[..*n]) {
                            compressed.lock().insert(i, c);
                        }
                    }
                });
            }
        })
        .expect("codec compression thread panicked");
        let mut compressed = compressed.into_inner();

        // Pack materialized chunks back to back after the table.
        let mut phys = 0u64;
        for &i in &materialized {
            let n = staged[i].1;
            let (kind, len) = match compressed.get(&i) {
                Some(c) if c.len() < n => (ChunkEncoding::Lz, c.len() as u64),
                _ => {
                    compressed.remove(&i);
                    (ChunkEncoding::Raw, n as u64)
                }
            };
            records[i].kind = kind;
            records[i].a = phys;
            records[i].b = len;
            phys += len;
        }

        let table_len = FrameTable::encoded_len_for(records.len());
        let physical = table_len + phys;
        if physical >= total.as_u64() || physical > self.store.slot_size().as_u64() {
            // Nothing written yet: the caller streams the payload raw.
            return Ok(None);
        }

        // Persist the packed chunks with p writers, round-robin — then the
        // table, last.
        let jobs: Vec<(u64, usize)> = materialized
            .iter()
            .filter(|&&i| records[i].kind.is_materialized())
            .map(|&i| (table_len + records[i].a, i))
            .collect();
        let results: Mutex<Vec<PccheckError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|s| {
            for w in 0..p {
                let jobs = &jobs;
                let staged = &staged;
                let records = &records;
                let compressed = &compressed;
                let results = &results;
                s.spawn(move |_| {
                    let actor_start = ctx.telemetry.now_nanos();
                    let mut actor_bytes = 0u64;
                    let mut media_nanos = 0u64;
                    for (dst, i) in jobs.iter().skip(w).step_by(p) {
                        let data: &[u8] = match compressed.get(i) {
                            Some(c) => c,
                            None => &staged[*i].2.as_slice()[..staged[*i].1],
                        };
                        debug_assert_eq!(data.len() as u64, records[*i].b);
                        match self.write_and_fence_chunk(ctx, lease, *dst, data) {
                            Ok(media) => {
                                actor_bytes += data.len() as u64;
                                media_nanos += media;
                            }
                            Err(e) => results.lock().push(e),
                        }
                    }
                    if actor_bytes > 0 && ctx.telemetry.is_enabled() {
                        ctx.telemetry.actor_span_split(
                            ctx.span,
                            &format!("writer-{w}"),
                            actor_start,
                            actor_bytes,
                            media_nanos,
                        );
                    }
                });
            }
        })
        .expect("codec writer thread panicked");
        drop(staged); // chunks return to the pool
        if let Some(e) = results.into_inner().into_iter().next() {
            return Err(e);
        }

        let table = FrameTable {
            counter: lease.counter,
            logical_len: total.as_u64(),
            full_digest,
            records,
        };
        let table_bytes = table.encode();
        debug_assert_eq!(table_bytes.len() as u64, table_len);
        self.write_and_fence_chunk(ctx, lease, 0, &table_bytes)?;

        let dedup_chunks = table
            .records
            .iter()
            .filter(|r| !r.kind.is_materialized())
            .count() as u64;
        let saved_bytes = total.as_u64() - physical;
        ctx.telemetry.add_codec_bytes_saved(saved_bytes);
        ctx.telemetry.add_dedup_chunks(dedup_chunks);
        ctx.telemetry
            .gauge_compression_ratio(physical * 1000 / total.as_u64().max(1));

        let link = table.references_base().then(|| {
            let (base_counter, base_slot, base_depth) =
                cross.expect("base references require a dedup base");
            DeltaLink {
                base_counter,
                base_slot,
                chain_depth: base_depth + 1,
            }
        });
        Ok(Some(FramedPlan {
            persist_start,
            payload_len: physical,
            payload_digest: crate::meta::checksum(&table_bytes),
            link,
            logical_len: total.as_u64(),
            saved_bytes,
            dedup_chunks,
            table,
        }))
    }

    /// Runs the store's delta-aware CAS commit for a framed payload and,
    /// on success, installs the frame's materialized chunks as the job's
    /// next dedup generation. Pairs with [`copy_framed`](Self::copy_framed).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn commit_framed(
        &self,
        ctx: PipelineCtx<'_>,
        lease: SlotLease,
        iteration: u64,
        plan: &FramedPlan,
    ) -> Result<CommitOutcome, PccheckError> {
        let commit_start = ctx.telemetry.now_nanos();
        let job = lease.job();
        let slot = lease.slot;
        let counter = lease.counter;
        // Framed payloads carry per-chunk digests in the frame table;
        // digests parked by a copy path are stale leftovers.
        self.pending_digests.lock().remove(&slot);
        let outcome = self.store.commit_with_delta(
            lease,
            iteration,
            plan.payload_len,
            plan.payload_digest,
            plan.link,
        )?;
        if outcome == CommitOutcome::Committed {
            // Only materialized (Raw/Lz) chunks enter the generation, so a
            // future DedupBase reference always resolves in one hop —
            // chains of indirection never form.
            let mut chunks = Vec::new();
            let mut logical_off = 0u64;
            for r in &plan.table.records {
                if r.kind.is_materialized() {
                    chunks.push((r.digest, logical_off, r.logical_len));
                }
                logical_off += r.logical_len;
            }
            self.codec.dedup.lock().install(job, counter, slot, chunks);
        }
        ctx.telemetry
            .phase_done(ctx.span, Phase::Commit, commit_start);
        Ok(outcome)
    }

    /// One-call codec checkpoint: lease → [`copy_framed`](Self::copy_framed)
    /// → `seal` → commit, falling back to the raw streamed path when the
    /// codec declines.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn checkpoint_framed(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        iteration: u64,
        full_digest: u64,
        policy: DeltaPolicy,
    ) -> Result<(CommitOutcome, FramedOutcome), PccheckError> {
        let total = src.size();
        let lease = self.lease(ctx);
        match self.copy_framed(ctx, src, &lease, total, full_digest, policy)? {
            None => {
                let persist_start = self.copy_streamed(ctx, src, &lease, total)?;
                self.seal(ctx, &lease, iteration, total, persist_start)?;
                let out = self.commit(ctx, lease, iteration, total.as_u64(), full_digest)?;
                Ok((out, FramedOutcome::Raw))
            }
            Some(plan) => {
                self.seal(
                    ctx,
                    &lease,
                    iteration,
                    ByteSize::from_bytes(plan.payload_len),
                    plan.persist_start,
                )?;
                let out = self.commit_framed(ctx, lease, iteration, &plan)?;
                Ok((
                    out,
                    FramedOutcome::Framed {
                        payload_len: plan.payload_len,
                        saved_bytes: plan.saved_bytes,
                        dedup_chunks: plan.dedup_chunks,
                    },
                ))
            }
        }
    }

    /// Whole-buffer snapshot: copies the entire source into one host
    /// allocation and closes the `GpuCopy` phase that started at
    /// `phase_start` (the traditional/CheckFreq `C` step).
    pub fn snapshot_whole(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        phase_start: u64,
    ) -> Vec<u8> {
        let total = src.size();
        let mut host = vec![0u8; total.as_usize()];
        src.copy_range_to_host(0, &mut host);
        ctx.telemetry
            .chunk(ctx.span, Phase::GpuCopy, 0, total.as_u64());
        ctx.telemetry
            .phase_done(ctx.span, Phase::GpuCopy, phase_start);
        host
    }

    /// Whole-buffer persist: leases a slot *after* the copy, writes the
    /// payload in one piece, fences it, and closes the `Persist` phase
    /// (the traditional/CheckFreq `P` step).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn persist_whole(
        &self,
        ctx: PipelineCtx<'_>,
        payload: &[u8],
        iteration: u64,
    ) -> Result<SlotLease, PccheckError> {
        let total = payload.len() as u64;
        let persist_start = ctx.telemetry.now_nanos();
        let lease = self.lease(ctx);
        self.write_chunk(ctx, &lease, 0, payload)?;
        self.persist_chunk(ctx, &lease, 0, total)?;
        ctx.telemetry.chunk(ctx.span, Phase::Persist, 0, total);
        ctx.telemetry
            .phase_done(ctx.span, Phase::Persist, persist_start);
        self.store.flight().record(
            FlightEventKind::PayloadPersisted,
            lease.counter,
            lease.slot,
            iteration,
            total,
            0,
        );
        Ok(lease)
    }

    /// Kernel write-through (GPM): copies the snapshot tile by tile
    /// straight into the leased slot with no DRAM staging, then issues one
    /// same-thread fence over the payload. `GpuCopy` and `Persist` overlap
    /// tile-by-tile, so both phases close against the shared `phase_start`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_through(
        &self,
        ctx: PipelineCtx<'_>,
        src: &dyn SnapshotSource,
        lease: &SlotLease,
        iteration: u64,
        phase_start: u64,
    ) -> Result<(), PccheckError> {
        let total = src.size();
        // A small bounce tile stands in for the kernel's register/shared-
        // memory tile; it never holds the checkpoint (Table 1: DRAM = 0).
        let mut tile = vec![0u8; KERNEL_COPY_CHUNK.min(total.as_usize().max(1))];
        let mut off = 0u64;
        while off < total.as_u64() {
            let n = (tile.len() as u64).min(total.as_u64() - off) as usize;
            src.copy_range_to_host(off, &mut tile[..n]);
            ctx.telemetry.chunk(ctx.span, Phase::GpuCopy, off, n as u64);
            self.write_chunk(ctx, lease, off, &tile[..n])?;
            ctx.telemetry.chunk(ctx.span, Phase::Persist, off, n as u64);
            off += n as u64;
        }
        ctx.telemetry
            .phase_done(ctx.span, Phase::GpuCopy, phase_start);
        // cudaDeviceSynchronize + msync/fence: one persist over the payload
        // issued by this same (training) thread — correct on both SSD and
        // PMEM because the same thread performed every store.
        self.persist_chunk(ctx, lease, 0, total.as_u64())?;
        ctx.telemetry
            .phase_done(ctx.span, Phase::Persist, phase_start);
        self.store.flight().record(
            FlightEventKind::PayloadPersisted,
            lease.counter,
            lease.slot,
            iteration,
            total.as_u64(),
            0,
        );
        Ok(())
    }

    /// Makes a chunk-copied payload durable: in [`FenceMode::Deferred`]
    /// issues the one coordinator fence over the whole payload, records the
    /// flight milestone, and closes the `Persist` phase that started at
    /// `persist_start`.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the deferred fence.
    pub fn seal(
        &self,
        ctx: PipelineCtx<'_>,
        lease: &SlotLease,
        iteration: u64,
        total: ByteSize,
        persist_start: u64,
    ) -> Result<(), PccheckError> {
        if self.fence == FenceMode::Deferred {
            // §4.1 SSD path: one msync covering the whole payload. The
            // drain shows up as a `fence` actor leg so the ledger can tell
            // "media still flushing" from "device idle" inside Persist.
            let fence_start = ctx.telemetry.now_nanos();
            let media = self.persist_chunk(ctx, lease, 0, total.as_u64())?;
            if ctx.telemetry.is_enabled() {
                ctx.telemetry.actor_span_split(
                    ctx.span,
                    "fence",
                    fence_start,
                    total.as_u64(),
                    media,
                );
            }
        }
        self.store.flight().record(
            FlightEventKind::PayloadPersisted,
            lease.counter,
            lease.slot,
            iteration,
            total.as_u64(),
            0,
        );
        ctx.telemetry
            .phase_done(ctx.span, Phase::Persist, persist_start);
        Ok(())
    }

    /// Runs the store's lock-free commit — meta publish, durable
    /// `Committed` state-word write, `fetch_max` head advance — and
    /// closes the `Commit` phase. Concurrent callers never serialize on
    /// a lock here; losers of the head race surface as
    /// [`CommitOutcome::SupersededBy`].
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn commit(
        &self,
        ctx: PipelineCtx<'_>,
        lease: SlotLease,
        iteration: u64,
        payload_len: u64,
        digest: u64,
    ) -> Result<CommitOutcome, PccheckError> {
        let commit_start = ctx.telemetry.now_nanos();
        // The digest table persists before the commit barrier so a reader
        // that observes the commit also observes the table (or a torn one
        // it will detect and ignore).
        self.flush_digest_table(&lease, payload_len, digest)?;
        let outcome = self.store.commit(lease, iteration, payload_len, digest);
        ctx.telemetry
            .phase_done(ctx.span, Phase::Commit, commit_start);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{DeviceConfig, PersistentDevice, SsdDevice, StripedDevice};
    use pccheck_gpu::{Gpu, GpuConfig, TrainingState};
    use pccheck_telemetry::Telemetry;

    fn gpu(size: u64, seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(size), seed),
        )
    }

    fn ssd_store(state: ByteSize, slots: u32) -> Arc<CheckpointStore> {
        let cap = CheckpointStore::required_capacity(state, slots) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        Arc::new(CheckpointStore::format(device, state, slots).unwrap())
    }

    #[test]
    fn whole_buffer_path_commits_a_recoverable_checkpoint() {
        let g = gpu(300, 11);
        g.update();
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 2));
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 300);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = g.lock_weights_shared();
        let digest = guard.digest();
        let start = telemetry.now_nanos();
        let host = pipeline.snapshot_whole(ctx, &guard, start);
        drop(guard);
        let lease = pipeline.persist_whole(ctx, &host, 1).unwrap();
        let outcome = pipeline.commit(ctx, lease, 1, 300, digest.0).unwrap();
        assert_eq!(outcome, CommitOutcome::Committed);
        let meta = pipeline.store().latest_committed().unwrap();
        assert_eq!(meta.iteration, 1);
        assert_eq!(meta.digest, digest.0);
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.phase(Phase::GpuCopy).count, 1);
        assert_eq!(snap.phase(Phase::Persist).count, 1);
        assert_eq!(snap.phase(Phase::Commit).count, 1);
        // The pipeline fed the per-stage histograms and the device gauge.
        assert_eq!(snap.write_stage.count, 1);
        assert_eq!(snap.persist_stage.count, 1);
    }

    #[test]
    fn staged_and_streamed_paths_agree() {
        for streamed in [false, true] {
            let g = gpu(900, 13);
            g.update();
            let pool = HostBufferPool::new(ByteSize::from_bytes(128), 8);
            let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 3))
                .with_writers(2)
                .with_staging(pool);
            let telemetry = Telemetry::enabled();
            let span = telemetry.span_requested("test", 1, 900);
            let ctx = PipelineCtx {
                telemetry: &telemetry,
                span,
            };
            let guard = g.lock_weights_shared_owned();
            let digest = guard.digest();
            let total = guard.size();
            let lease = pipeline.lease(ctx);
            let persist_start = if streamed {
                pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap()
            } else {
                pipeline.copy_staged(ctx, &guard, &lease, total).unwrap()
            };
            drop(guard);
            pipeline.seal(ctx, &lease, 1, total, persist_start).unwrap();
            let outcome = pipeline
                .commit(ctx, lease, 1, total.as_u64(), digest.0)
                .unwrap();
            assert_eq!(outcome, CommitOutcome::Committed, "streamed={streamed}");
            let snap = telemetry.snapshot().unwrap();
            // 900 bytes in 128-byte chunks: 8 chunks through both stages.
            assert_eq!(snap.gpu_copy_bytes, 900);
            assert_eq!(snap.persist_chunk_bytes, 900);
            assert_eq!(snap.write_stage.count, 8);
            assert_eq!(snap.persist_stage.count, 8);
        }
    }

    #[test]
    fn chunk_copy_paths_emit_writer_actor_spans() {
        for streamed in [false, true] {
            let g = gpu(900, 47);
            g.update();
            let pool = HostBufferPool::new(ByteSize::from_bytes(128), 8);
            let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 3))
                .with_writers(2)
                .with_staging(pool);
            let telemetry = Telemetry::enabled();
            let span = telemetry.span_requested("test", 1, 900);
            let ctx = PipelineCtx {
                telemetry: &telemetry,
                span,
            };
            let guard = g.lock_weights_shared_owned();
            let total = guard.size();
            let lease = pipeline.lease(ctx);
            let persist_start = if streamed {
                pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap()
            } else {
                pipeline.copy_staged(ctx, &guard, &lease, total).unwrap()
            };
            drop(guard);
            pipeline.seal(ctx, &lease, 1, total, persist_start).unwrap();

            let spans: Vec<(String, u64)> = telemetry
                .events()
                .iter()
                .filter_map(|e| match &e.kind {
                    pccheck_telemetry::EventKind::ActorSpan { actor, bytes, .. }
                        if e.span == span =>
                    {
                        Some((actor.clone(), *bytes))
                    }
                    _ => None,
                })
                .collect();
            let total_bytes: u64 = spans.iter().map(|(_, b)| b).sum();
            assert_eq!(
                total_bytes, 900,
                "writer spans account for every chunk (streamed={streamed})"
            );
            assert!(
                spans.iter().all(|(a, _)| a.starts_with("writer-")),
                "streamed={streamed}: {spans:?}"
            );
            if !streamed {
                // Round-robin distribution guarantees both writers worked.
                assert!(spans.iter().any(|(a, _)| a == "writer-0"));
                assert!(spans.iter().any(|(a, _)| a == "writer-1"));
            }
        }
    }

    #[test]
    fn deferred_fence_skips_per_chunk_persists_until_seal() {
        let g = gpu(512, 17);
        g.update();
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 4);
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 2))
            .with_writers(2)
            .with_fence(FenceMode::Deferred)
            .with_staging(pool);
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 512);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipeline.lease(ctx);
        let start = pipeline.copy_staged(ctx, &guard, &lease, total).unwrap();
        drop(guard);
        pipeline.seal(ctx, &lease, 1, total, start).unwrap();
        pipeline
            .commit(ctx, lease, 1, total.as_u64(), digest.0)
            .unwrap();
        let snap = telemetry.snapshot().unwrap();
        // 4 chunk writes but exactly one (deferred) fence.
        assert_eq!(snap.write_stage.count, 4);
        assert_eq!(snap.persist_stage.count, 1);
    }

    #[test]
    fn device_queue_gauges_cover_striped_members() {
        let g = gpu(600, 19);
        g.update();
        let members: Vec<Arc<dyn PersistentDevice>> = (0..2)
            .map(|_| {
                Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(
                    ByteSize::from_kb(64),
                ))) as Arc<dyn PersistentDevice>
            })
            .collect();
        let striped: Arc<dyn PersistentDevice> =
            Arc::new(StripedDevice::new(members, ByteSize::from_bytes(256)));
        let store = Arc::new(CheckpointStore::format(striped, g.state_size(), 2).unwrap());
        let pipeline = PersistPipeline::new(store);
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 600);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = g.lock_weights_shared();
        let digest = guard.digest();
        let host = pipeline.snapshot_whole(ctx, &guard, 0);
        drop(guard);
        let lease = pipeline.persist_whole(ctx, &host, 1).unwrap();
        pipeline.commit(ctx, lease, 1, 600, digest.0).unwrap();
        // Controller + two members were sampled (values may be zero since
        // sampling happens after each op completes, but the gauge slots
        // exist and the store's own stats saw the traffic).
        let report = pipeline.store().device().stats_report();
        assert_eq!(report.len(), 3);
        assert!(report[0].bytes_persisted >= 600);
    }

    #[test]
    fn streamed_copy_aborts_after_first_writer_error() {
        let g = gpu(4096, 31);
        g.update();
        let state = g.state_size();
        let cap = CheckpointStore::required_capacity(state, 2) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(
            CheckpointStore::format(Arc::clone(&ssd) as Arc<dyn PersistentDevice>, state, 2)
                .unwrap(),
        );
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 2);
        let pipeline = PersistPipeline::new(store)
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 4096);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = g.lock_weights_shared_owned();
        let lease = pipeline.lease(ctx);
        // The very next persist crashes the device: every later write (and
        // the per-writer fence) fails.
        ssd.arm_crash_after_persists(0);
        let err = pipeline.copy_streamed(ctx, &guard, &lease, guard.size());
        assert!(err.is_err(), "the first writer error must propagate");
        // Without the abort flag the producer would copy and enqueue all 32
        // chunks after the device was already dead.
        let snap = telemetry.snapshot().unwrap();
        assert!(
            snap.gpu_copy_bytes < 4096,
            "producer kept copying after a writer failed ({} bytes)",
            snap.gpu_copy_bytes
        );
    }

    #[test]
    fn delta_path_persists_only_dirty_extents_and_chains() {
        let g = gpu(1024, 29);
        g.update();
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 4);
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 4))
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 1024);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let policy = DeltaPolicy::default();

        // First checkpoint: no committed base → falls back to full.
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let (out, kind) = pipeline
            .checkpoint_delta(ctx, &guard, 1, digest.0, policy)
            .unwrap();
        drop(guard);
        assert_eq!(out, CommitOutcome::Committed);
        assert_eq!(kind, DeltaOutcome::Full);
        assert!(!pipeline.store().latest_committed().unwrap().is_delta());

        // Sparse update → a delta chained on the full base.
        g.update_sparse(0.1);
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let (out, kind) = pipeline
            .checkpoint_delta(ctx, &guard, 2, digest.0, policy)
            .unwrap();
        drop(guard);
        assert_eq!(out, CommitOutcome::Committed);
        let DeltaOutcome::Delta {
            payload_len,
            dirty_bytes,
            chain_depth,
        } = kind
        else {
            panic!("sparse update must take the delta path, got {kind:?}");
        };
        assert_eq!(chain_depth, 1);
        assert!(dirty_bytes < 1024, "only dirty bytes persisted");
        assert!(payload_len < 1024, "delta payload smaller than the state");
        let head = pipeline.store().latest_committed().unwrap();
        assert_eq!(head.iteration, 2);
        assert_eq!(head.delta.unwrap().chain_depth, 1);
        // Base + delta pinned out of the 4-slot store.
        assert_eq!(pipeline.store().free_slot_count(), 2);
        let snap = telemetry.snapshot().unwrap();
        assert!(snap.dirty_ratio_permille >= 100 && snap.dirty_ratio_permille < 500);
        assert!(snap.delta_bytes_saved > 0);
        assert_eq!(snap.phase(Phase::DeltaMap).count, 1);

        // Dense update → dirty ratio 100% → full fallback frees the chain.
        g.update();
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let (out, kind) = pipeline
            .checkpoint_delta(ctx, &guard, 3, digest.0, policy)
            .unwrap();
        drop(guard);
        assert_eq!(out, CommitOutcome::Committed);
        assert_eq!(kind, DeltaOutcome::Full);
        assert_eq!(pipeline.store().free_slot_count(), 3);
    }

    #[test]
    fn chain_length_cap_forces_a_periodic_full_checkpoint() {
        let g = gpu(1024, 37);
        g.update();
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 4);
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 6))
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        let policy = DeltaPolicy {
            max_dirty_ratio: 0.5,
            max_chain: 2,
        };
        let mut kinds = Vec::new();
        for iter in 1..=7u64 {
            let guard = g.lock_weights_shared_owned();
            let digest = guard.digest();
            let (out, kind) = pipeline
                .checkpoint_delta(ctx, &guard, iter, digest.0, policy)
                .unwrap();
            drop(guard);
            assert_eq!(out, CommitOutcome::Committed);
            kinds.push(matches!(kind, DeltaOutcome::Full));
            g.update_sparse(0.05);
        }
        // full, delta, delta, full, delta, delta, full.
        assert_eq!(kinds, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn streamed_copy_records_a_chunk_digest_table() {
        let g = gpu(8192, 41);
        g.update();
        let pool = HostBufferPool::new(ByteSize::from_kb(4), 4);
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 3))
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipeline.lease(ctx);
        let slot = lease.slot;
        let start = pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap();
        drop(guard);
        pipeline.seal(ctx, &lease, 1, total, start).unwrap();
        pipeline
            .commit(ctx, lease, 1, total.as_u64(), digest.0)
            .unwrap();
        let store = pipeline.store();
        let meta = store.latest_committed().unwrap();
        assert_eq!(meta.slot, slot);
        let table = store
            .read_digest_table(&meta)
            .expect("streamed full checkpoints record a digest table");
        assert_eq!(table.chunk_len, 4096);
        assert_eq!(table.digests.len(), 2);
        assert_eq!(table.payload_digest, meta.digest);
        let payload = store.read_checkpoint(&meta).unwrap();
        for i in 0..table.digests.len() {
            let (off, len) = table.chunk_range(i);
            assert!(table.verify_chunk(i, &payload[off as usize..(off + len) as usize]));
        }
    }

    #[test]
    fn chunks_finer_than_the_digest_region_skip_the_table() {
        // 900-byte state → capacity for 1 chunk digest, but the pool chunks
        // at 128 bytes (8 chunks): the table must be skipped, not mangled.
        let g = gpu(900, 43);
        g.update();
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 8);
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 3))
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        let guard = g.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipeline.lease(ctx);
        let start = pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap();
        drop(guard);
        pipeline.seal(ctx, &lease, 1, total, start).unwrap();
        pipeline
            .commit(ctx, lease, 1, total.as_u64(), digest.0)
            .unwrap();
        let meta = pipeline.store().latest_committed().unwrap();
        assert!(pipeline.store().read_digest_table(&meta).is_none());
    }

    #[test]
    fn multi_job_leases_route_through_qos_and_namespaces() {
        use crate::qos::{QosArbiter, QosConfig};

        let state = ByteSize::from_bytes(900);
        let cap = CheckpointStore::required_capacity_service(state, 8, 0, 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(CheckpointStore::format_service(device, state, 8, 0, 4).unwrap());
        store.allocate_namespace(1, 3).unwrap();
        store.allocate_namespace(2, 3).unwrap();
        let qos = Arc::new(QosArbiter::new(QosConfig::default()));
        qos.register_job(1, 1);
        qos.register_job(2, 1);
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 8);
        let pipeline = PersistPipeline::new(store)
            .with_writers(2)
            .with_staging(pool)
            .with_qos(Arc::clone(&qos));
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        for (job, seed, iter) in [(1u64, 5u64, 10u64), (2, 6, 20)] {
            let g = gpu(900, seed);
            g.update();
            let guard = g.lock_weights_shared_owned();
            let digest = guard.digest();
            let total = guard.size();
            let lease = pipeline.lease_for(ctx, Some(job)).unwrap();
            assert_eq!(lease.job(), Some(job));
            let start = pipeline.copy_streamed(ctx, &guard, &lease, total).unwrap();
            drop(guard);
            pipeline.seal(ctx, &lease, iter, total, start).unwrap();
            let out = pipeline
                .commit(ctx, lease, iter, total.as_u64(), digest.0)
                .unwrap();
            assert_eq!(out, CommitOutcome::Committed);
        }
        // Each job committed into its own namespace...
        let store = pipeline.store();
        assert_eq!(
            store.latest_committed_job(1).unwrap().unwrap().iteration,
            10
        );
        assert_eq!(
            store.latest_committed_job(2).unwrap().unwrap().iteration,
            20
        );
        // ...and every chunk write was metered by the arbiter.
        let shares = qos.shares();
        assert_eq!(shares.iter().find(|s| s.0 == 1).unwrap().1, 900);
        assert_eq!(shares.iter().find(|s| s.0 == 2).unwrap().1, 900);
        // An unknown job is rejected at lease time.
        assert!(pipeline.lease_for(ctx, Some(99)).is_err());
    }

    #[test]
    fn delta_chains_stay_inside_their_namespace() {
        // Job 1 commits iteration 1 (full) then a sparse update; job 2
        // commits nothing. Job 2's first delta attempt must fall back to
        // full (no base IN ITS NAMESPACE) even though job 1's head exists.
        let state = ByteSize::from_bytes(1024);
        let cap = CheckpointStore::required_capacity_service(state, 8, 0, 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(CheckpointStore::format_service(device, state, 8, 0, 4).unwrap());
        store.allocate_namespace(1, 4).unwrap();
        store.allocate_namespace(2, 4).unwrap();
        let pool = HostBufferPool::new(ByteSize::from_bytes(128), 4);
        let pipeline = PersistPipeline::new(store)
            .with_writers(2)
            .with_staging(pool);
        let telemetry = Telemetry::disabled();
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span: SpanId::NONE,
        };
        let policy = DeltaPolicy::default();

        let g1 = gpu(1024, 51);
        g1.update();
        for iter in 1..=2u64 {
            let guard = g1.lock_weights_shared_owned();
            let digest = guard.digest();
            let total = guard.size();
            let lease = pipeline.lease_for(ctx, Some(1)).unwrap();
            let plan = pipeline
                .copy_delta(ctx, &guard, &lease, total, digest.0, policy)
                .unwrap();
            drop(guard);
            match plan {
                DeltaPlan::Full { persist_start } => {
                    assert_eq!(iter, 1, "first commit has no base");
                    pipeline
                        .seal(ctx, &lease, iter, total, persist_start)
                        .unwrap();
                    pipeline
                        .commit(ctx, lease, iter, total.as_u64(), digest.0)
                        .unwrap();
                }
                DeltaPlan::Delta {
                    persist_start,
                    payload_len,
                    payload_digest,
                    link,
                    ..
                } => {
                    assert_eq!(iter, 2, "sparse update chains on the job's own base");
                    pipeline
                        .seal(
                            ctx,
                            &lease,
                            iter,
                            ByteSize::from_bytes(payload_len),
                            persist_start,
                        )
                        .unwrap();
                    pipeline
                        .commit_delta(ctx, lease, iter, payload_len, payload_digest, link)
                        .unwrap();
                }
            }
            g1.update_sparse(0.1);
        }
        assert_eq!(
            pipeline
                .store()
                .latest_committed_job(1)
                .unwrap()
                .unwrap()
                .delta
                .unwrap()
                .chain_depth,
            1
        );

        // Job 2, sparse dirty set but empty namespace: must plan Full.
        let g2 = gpu(1024, 52);
        g2.update();
        g2.update_sparse(0.1);
        let guard = g2.lock_weights_shared_owned();
        let digest = guard.digest();
        let total = guard.size();
        let lease = pipeline.lease_for(ctx, Some(2)).unwrap();
        let plan = pipeline
            .copy_delta(ctx, &guard, &lease, total, digest.0, policy)
            .unwrap();
        drop(guard);
        assert!(
            matches!(plan, DeltaPlan::Full { .. }),
            "job 2 has no base in its namespace: {plan:?}"
        );
    }

    #[test]
    fn write_through_needs_no_staging_pool() {
        let g = gpu(300, 23);
        g.update();
        let pipeline = PersistPipeline::new(ssd_store(g.state_size(), 2));
        assert!(pipeline.staging_pool().is_none());
        let telemetry = Telemetry::enabled();
        let span = telemetry.span_requested("test", 1, 300);
        let ctx = PipelineCtx {
            telemetry: &telemetry,
            span,
        };
        let guard = g.lock_weights_shared();
        let digest = guard.digest();
        let start = telemetry.now_nanos();
        let lease = pipeline.lease(ctx);
        pipeline
            .write_through(ctx, &guard, &lease, 1, start)
            .unwrap();
        let outcome = pipeline.commit(ctx, lease, 1, 300, digest.0).unwrap();
        drop(guard);
        assert_eq!(outcome, CommitOutcome::Committed);
        let snap = telemetry.snapshot().unwrap();
        // One tile (300 bytes < 4 MiB), one same-thread fence.
        assert_eq!(snap.gpu_copy_bytes, 300);
        assert_eq!(snap.persist_chunk_bytes, 300);
        assert_eq!(snap.persist_stage.count, 1);
    }

    /// In-memory snapshot source with controllable content, for codec
    /// tests (synthetic GPU states are RNG-filled, i.e. incompressible).
    struct VecSource {
        data: Vec<u8>,
        step: u64,
    }

    impl pccheck_gpu::SnapshotSource for VecSource {
        fn size(&self) -> ByteSize {
            ByteSize::from_bytes(self.data.len() as u64)
        }
        fn step_count(&self) -> u64 {
            self.step
        }
        fn digest(&self) -> pccheck_gpu::StateDigest {
            pccheck_gpu::StateDigest::of_payload(&self.data, self.step)
        }
        fn copy_range_to_host(&self, offset: u64, dst: &mut [u8]) {
            let s = offset as usize;
            dst.copy_from_slice(&self.data[s..s + dst.len()]);
        }
    }

    /// Store + framed pipeline over a fresh SSD, returning the device too
    /// so tests can crash/recover it.
    fn framed_rig(
        state_bytes: u64,
        chunk: u64,
        pool_chunks: usize,
    ) -> (Arc<dyn PersistentDevice>, PersistPipeline) {
        let state = ByteSize::from_bytes(state_bytes);
        let cap = CheckpointStore::required_capacity(state, 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(CheckpointStore::format(Arc::clone(&device), state, 4).unwrap());
        let pipeline = PersistPipeline::new(store)
            .with_writers(2)
            .with_staging(HostBufferPool::new(ByteSize::from_bytes(chunk), pool_chunks))
            .with_codec(true);
        (device, pipeline)
    }

    fn test_ctx(telemetry: &Telemetry) -> PipelineCtx<'_> {
        PipelineCtx {
            telemetry,
            span: pccheck_telemetry::SpanId::NONE,
        }
    }

    #[test]
    fn framed_checkpoint_compresses_and_recovers_bit_identical() {
        let (device, pipeline) = framed_rig(4096, 256, 16);
        // Compressible: long runs with mild variation.
        let data: Vec<u8> = (0..4096u32).map(|i| (i / 192) as u8).collect();
        let src = VecSource {
            data: data.clone(),
            step: 1,
        };
        let telemetry = Telemetry::enabled();
        let ctx = test_ctx(&telemetry);
        let digest = pccheck_gpu::SnapshotSource::digest(&src).0;
        let (commit, outcome) = pipeline
            .checkpoint_framed(ctx, &src, 1, digest, DeltaPolicy::default())
            .unwrap();
        assert_eq!(commit, CommitOutcome::Committed);
        let FramedOutcome::Framed {
            payload_len,
            saved_bytes,
            ..
        } = outcome
        else {
            panic!("compressible payload must persist framed, got {outcome:?}");
        };
        assert!(payload_len < 4096, "physical {payload_len} < logical");
        assert_eq!(saved_bytes, 4096 - payload_len);
        let meta = pipeline.store().latest_committed().unwrap();
        assert_eq!(meta.payload_len, payload_len, "commit records physical bytes");
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.codec_bytes_saved, saved_bytes);
        assert!(snap.compression_ratio_permille < 1000);

        let rec = crate::recovery::recover(device).unwrap();
        assert_eq!(rec.iteration, 1);
        assert_eq!(rec.payload, data, "restore decodes the frame bit-identically");
    }

    #[test]
    fn framed_self_dedup_collapses_repeated_chunks() {
        let (device, pipeline) = framed_rig(4096, 256, 16);
        // 16 chunks, but only 2 distinct contents → 14 self-dedup refs.
        // Use incompressible chunk bodies so dedup (not LZ) does the work.
        let mut chunk_a = vec![0u8; 256];
        let mut chunk_b = vec![0u8; 256];
        pccheck_util::rng::fill_deterministic(&mut chunk_a, 11);
        pccheck_util::rng::fill_deterministic(&mut chunk_b, 22);
        let mut data = Vec::new();
        for i in 0..16 {
            data.extend_from_slice(if i % 2 == 0 { &chunk_a } else { &chunk_b });
        }
        let src = VecSource {
            data: data.clone(),
            step: 1,
        };
        let telemetry = Telemetry::disabled();
        let ctx = test_ctx(&telemetry);
        let digest = pccheck_gpu::SnapshotSource::digest(&src).0;
        let (_, outcome) = pipeline
            .checkpoint_framed(ctx, &src, 1, digest, DeltaPolicy::default())
            .unwrap();
        let FramedOutcome::Framed { dedup_chunks, payload_len, .. } = outcome else {
            panic!("repeated chunks must persist framed, got {outcome:?}");
        };
        assert_eq!(dedup_chunks, 14, "2 materialized + 14 self-references");
        // 688-byte table + two 256-byte materialized chunks.
        assert!(payload_len < 4096 / 2, "physical {payload_len} collapsed");
        let rec = crate::recovery::recover(device).unwrap();
        assert_eq!(rec.payload, data);
    }

    #[test]
    fn framed_base_dedup_links_and_recovers_across_checkpoints() {
        let (device, pipeline) = framed_rig(4096, 256, 16);
        let mut data = vec![0u8; 4096];
        pccheck_util::rng::fill_deterministic(&mut data, 7);
        let telemetry = Telemetry::disabled();
        let ctx = test_ctx(&telemetry);

        let src1 = VecSource {
            data: data.clone(),
            step: 1,
        };
        let d1 = pccheck_gpu::SnapshotSource::digest(&src1).0;
        let (_, o1) = pipeline
            .checkpoint_framed(ctx, &src1, 1, d1, DeltaPolicy::default())
            .unwrap();
        // Incompressible and nothing to dedup against: the first
        // checkpoint streams raw (all-Raw framing would only add a table).
        assert_eq!(o1, FramedOutcome::Raw);

        // Second checkpoint: mutate one chunk; with a raw base there is no
        // installed generation, still raw.
        data[300] ^= 0xA5;
        let src2 = VecSource {
            data: data.clone(),
            step: 2,
        };
        let d2 = pccheck_gpu::SnapshotSource::digest(&src2).0;
        let (_, o2) = pipeline
            .checkpoint_framed(ctx, &src2, 2, d2, DeltaPolicy::default())
            .unwrap();
        assert_eq!(o2, FramedOutcome::Raw, "no generation installed yet");

        // Seed a framed generation: make the payload self-redundant once.
        let half: Vec<u8> = data[..2048].to_vec();
        let mut doubled = half.clone();
        doubled.extend_from_slice(&half);
        let src3 = VecSource {
            data: doubled.clone(),
            step: 3,
        };
        let d3 = pccheck_gpu::SnapshotSource::digest(&src3).0;
        let (_, o3) = pipeline
            .checkpoint_framed(ctx, &src3, 3, d3, DeltaPolicy::default())
            .unwrap();
        assert!(
            matches!(o3, FramedOutcome::Framed { .. }),
            "self-redundant payload frames: {o3:?}"
        );

        // Fourth: nearly identical to the third → base dedup kicks in.
        let mut data4 = doubled.clone();
        data4[100] ^= 0x5A;
        let src4 = VecSource {
            data: data4.clone(),
            step: 4,
        };
        let d4 = pccheck_gpu::SnapshotSource::digest(&src4).0;
        let (commit, o4) = pipeline
            .checkpoint_framed(ctx, &src4, 4, d4, DeltaPolicy::default())
            .unwrap();
        assert_eq!(commit, CommitOutcome::Committed);
        let FramedOutcome::Framed { dedup_chunks, payload_len, .. } = o4 else {
            panic!("near-duplicate of a framed base must frame, got {o4:?}");
        };
        assert!(dedup_chunks >= 14, "most chunks deduplicate: {dedup_chunks}");
        assert!(payload_len < 1024, "tiny physical payload: {payload_len}");
        let meta = pipeline.store().latest_committed().unwrap();
        assert!(meta.is_delta(), "base references pin the base via a link");
        assert_eq!(meta.delta.unwrap().base_counter, 3);

        // Newest recovers through the base-reference resolution path.
        let rec = crate::recovery::recover(device).unwrap();
        assert_eq!(rec.iteration, 4);
        assert_eq!(rec.payload, data4);
    }

    #[test]
    fn framed_declines_incompressible_dense_payloads() {
        let (_device, pipeline) = framed_rig(4096, 256, 16);
        let mut data = vec![0u8; 4096];
        pccheck_util::rng::fill_deterministic(&mut data, 99);
        let src = VecSource { data, step: 1 };
        let telemetry = Telemetry::disabled();
        let ctx = test_ctx(&telemetry);
        let digest = pccheck_gpu::SnapshotSource::digest(&src).0;
        let (commit, outcome) = pipeline
            .checkpoint_framed(ctx, &src, 1, digest, DeltaPolicy::default())
            .unwrap();
        assert_eq!(commit, CommitOutcome::Committed);
        assert_eq!(outcome, FramedOutcome::Raw, "dense payloads stream raw");
        let meta = pipeline.store().latest_committed().unwrap();
        assert_eq!(meta.payload_len, 4096, "raw fallback commits legacy shape");
    }

    #[test]
    fn framed_declines_when_pool_cannot_stage_the_snapshot() {
        // 16 chunks needed, pool holds 4: the codec must decline rather
        // than deadlock on the staging pool.
        let (_device, pipeline) = framed_rig(4096, 256, 4);
        let data: Vec<u8> = (0..4096u32).map(|i| (i / 192) as u8).collect();
        let src = VecSource { data, step: 1 };
        let telemetry = Telemetry::disabled();
        let ctx = test_ctx(&telemetry);
        let digest = pccheck_gpu::SnapshotSource::digest(&src).0;
        let (commit, outcome) = pipeline
            .checkpoint_framed(ctx, &src, 1, digest, DeltaPolicy::default())
            .unwrap();
        assert_eq!(commit, CommitOutcome::Committed);
        assert_eq!(outcome, FramedOutcome::Raw);
    }

    #[test]
    fn disabling_codec_clears_dedup_generations() {
        let (_device, pipeline) = framed_rig(4096, 256, 16);
        let mut data = vec![0u8; 4096];
        pccheck_util::rng::fill_deterministic(&mut data[..2048], 7);
        let tail = data[..2048].to_vec();
        data[2048..].copy_from_slice(&tail);
        let src = VecSource {
            data: data.clone(),
            step: 1,
        };
        let telemetry = Telemetry::disabled();
        let ctx = test_ctx(&telemetry);
        let digest = pccheck_gpu::SnapshotSource::digest(&src).0;
        let (_, o) = pipeline
            .checkpoint_framed(ctx, &src, 1, digest, DeltaPolicy::default())
            .unwrap();
        assert!(matches!(o, FramedOutcome::Framed { .. }));
        assert!(pipeline.codec.dedup.lock().generation_counter(None).is_some());
        pipeline.set_codec_enabled(false);
        assert!(
            pipeline.codec.dedup.lock().generation_counter(None).is_none(),
            "disable drops generations; re-enable starts cold"
        );
        pipeline.set_codec_enabled(true);
        assert!(pipeline.codec.dedup.lock().generation_counter(None).is_none());
    }
}

//! Persist-path chunk codec: entropy-gated LZ compression, content-defined
//! dedup, and the chunk-framing slot format that carries both.
//!
//! # Frame layout
//!
//! A framed slot's payload is `[frame table][packed physical chunks]`. The
//! table comes first — exactly like the delta path's extent table — so
//! recovery can classify a slot from its payload prefix alone: `XTB1` means
//! extent delta, [`FRAME_MAGIC`] means framed, anything else is a legacy
//! raw payload. The table header binds the frame to its commit (checkpoint
//! counter), names the logical (uncompressed) payload length and the
//! end-to-end digest of the reconstructed state, and is sealed by a folded
//! FNV-1a CRC over header + records so a torn table write is detected
//! before any chunk is trusted.
//!
//! Each [`FrameRecord`] describes one logical chunk, in logical order:
//!
//! - [`ChunkEncoding::Raw`] — stored verbatim at `phys_off..+phys_len` in
//!   the packed region (`phys_len == logical_len`).
//! - [`ChunkEncoding::Lz`] — stored LZ-compressed (`phys_len <
//!   logical_len`); see the block format below.
//! - [`ChunkEncoding::DedupSelf`] — byte-identical to an *earlier*
//!   materialized chunk of this same frame; stores only its index.
//! - [`ChunkEncoding::DedupBase`] — byte-identical to a materialized chunk
//!   of the base checkpoint named by the commit's [`DeltaLink`]; the link
//!   pins the base exactly like a delta chain does, so the referenced
//!   bytes cannot be recycled while this checkpoint is live.
//!
//! Every record carries the [`chunk_digest`] content address of its
//! logical bytes: restore verifies each chunk as it materializes, so a
//! stale or torn reference is detected (and the candidate discarded) —
//! never silently accepted.
//!
//! # LZ block format
//!
//! A dependency-free LZ77 byte stream in the LZ4 style: each sequence is
//! `token | literal-run | literals | offset(2B LE) | match-run`, where the
//! token's high nibble is the literal count and the low nibble the match
//! length minus [`MIN_MATCH`], both extended by 255-continuation bytes
//! when they saturate at 15. The final sequence is literals-only. Matches
//! reference a 64 KiB window. The compressor is greedy over a 4-byte
//! hash table — built for persist-path throughput, not ratio.
//!
//! # Entropy gate
//!
//! Compressing dense fp16/fp32 noise wastes CPU for zero gain, so
//! [`compress_gated`] first estimates Shannon entropy over a sampled 4 KiB
//! byte histogram and skips the compressor entirely above
//! [`ENTROPY_SKIP_BITS`] bits/byte. A compressed chunk is kept only when
//! it actually saves ≥ 1/16 of the logical bytes; otherwise the chunk
//! stays raw and restore never pays a decompress.
//!
//! # Dedup index lifetime
//!
//! The [`DedupIndex`] holds one *generation* per job: the content
//! addresses of the **materialized** (Raw/Lz) chunks of that job's latest
//! framed commit. Installing the next commit's generation evicts the
//! previous one wholesale, so a reference produced by a lookup is always
//! depth-≤1: it points at bytes physically present in the immediate base
//! checkpoint, never at a chain of references. Entries are capped per
//! generation; overflow chunks simply stay materialized.

use std::collections::HashMap;

use pccheck_util::fnv::{chunk_digest, fnv1a, fnv1a_fold, FNV_SEED};

/// Frame table magic: ASCII `PCFRAME1` (little-endian `u64`).
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"PCFRAME1");

/// Encoded frame header size: magic, count, version, counter,
/// `logical_len`, `full_digest`.
pub const FRAME_HEADER: usize = 40;

/// Encoded size of one [`FrameRecord`].
pub const FRAME_RECORD_SIZE: usize = 40;

/// Frame format version.
pub const FRAME_VERSION: u32 = 1;

/// Shortest match the LZ coder emits.
pub const MIN_MATCH: usize = 4;

/// LZ match window (2-byte offsets).
const MAX_OFFSET: usize = 65_535;

/// Sampled-entropy threshold (bits/byte) above which compression is
/// skipped outright: dense random bytes sit at ~8.0, text and sparse
/// tensors well below 7.
pub const ENTROPY_SKIP_BITS: f64 = 7.2;

/// A kept compressed chunk must save at least `logical/16` bytes.
const MIN_GAIN_SHIFT: u32 = 4;

/// How one logical chunk is stored in the frame's packed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkEncoding {
    /// Verbatim bytes at `phys_off..+phys_len`.
    Raw,
    /// LZ-compressed bytes at `phys_off..+phys_len`.
    Lz,
    /// Byte-identical to an earlier materialized chunk of this frame.
    DedupSelf,
    /// Byte-identical to a materialized chunk of the base checkpoint
    /// named by the commit's `DeltaLink`.
    DedupBase,
}

impl ChunkEncoding {
    fn to_u32(self) -> u32 {
        match self {
            ChunkEncoding::Raw => 0,
            ChunkEncoding::Lz => 1,
            ChunkEncoding::DedupSelf => 2,
            ChunkEncoding::DedupBase => 3,
        }
    }

    fn from_u32(v: u32) -> Option<ChunkEncoding> {
        match v {
            0 => Some(ChunkEncoding::Raw),
            1 => Some(ChunkEncoding::Lz),
            2 => Some(ChunkEncoding::DedupSelf),
            3 => Some(ChunkEncoding::DedupBase),
            _ => None,
        }
    }

    /// Whether the chunk's bytes are physically present in this frame.
    pub fn is_materialized(self) -> bool {
        matches!(self, ChunkEncoding::Raw | ChunkEncoding::Lz)
    }
}

/// One logical chunk's entry in a [`FrameTable`].
///
/// Field meaning depends on `kind`:
///
/// | kind       | `aux`             | `a`            | `b`                  |
/// |------------|-------------------|----------------|----------------------|
/// | Raw / Lz   | 0                 | phys offset    | phys len             |
/// | DedupSelf  | referenced index  | 0              | 0                    |
/// | DedupBase  | base slot         | base counter   | base logical offset  |
///
/// Physical offsets are relative to the start of the packed region (the
/// byte right after the encoded table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// Storage class of this chunk.
    pub kind: ChunkEncoding,
    /// Kind-dependent 32-bit field (see table above).
    pub aux: u32,
    /// Length of the chunk's logical (uncompressed) bytes.
    pub logical_len: u64,
    /// Kind-dependent field (see table above).
    pub a: u64,
    /// Kind-dependent field (see table above).
    pub b: u64,
    /// [`chunk_digest`] content address of the logical bytes.
    pub digest: u64,
}

/// The frame table at the head of a framed slot's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTable {
    /// Checkpoint counter this frame belongs to (binds table to commit).
    pub counter: u64,
    /// Total logical payload length the records reconstruct.
    pub logical_len: u64,
    /// End-to-end digest of the reconstructed logical payload, in the
    /// same discipline the commit's caller used (state or raw FNV).
    pub full_digest: u64,
    /// Per-chunk records in logical order.
    pub records: Vec<FrameRecord>,
}

impl FrameTable {
    /// Encoded size of a table holding `count` records.
    pub fn encoded_len_for(count: usize) -> u64 {
        (FRAME_HEADER + count * FRAME_RECORD_SIZE + 8) as u64
    }

    /// Encoded size of this table.
    pub fn encoded_len(&self) -> u64 {
        Self::encoded_len_for(self.records.len())
    }

    /// Bytes of packed physical chunk data the records reference.
    pub fn packed_len(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind.is_materialized())
            .map(|r| r.a + r.b)
            .max()
            .unwrap_or(0)
    }

    /// Total slot payload footprint: table + packed region.
    pub fn physical_len(&self) -> u64 {
        self.encoded_len() + self.packed_len()
    }

    /// Sum of the logical lengths of deduplicated (non-materialized)
    /// chunks — the bytes dedup saved.
    pub fn dedup_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.kind.is_materialized())
            .map(|r| r.logical_len)
            .sum()
    }

    /// Whether any record references the base checkpoint (the commit must
    /// then carry a `DeltaLink` pinning it).
    pub fn references_base(&self) -> bool {
        self.records
            .iter()
            .any(|r| r.kind == ChunkEncoding::DedupBase)
    }

    /// Serializes the table: header, records, trailing FNV-1a CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.logical_len.to_le_bytes());
        out.extend_from_slice(&self.full_digest.to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.kind.to_u32().to_le_bytes());
            out.extend_from_slice(&r.aux.to_le_bytes());
            out.extend_from_slice(&r.logical_len.to_le_bytes());
            out.extend_from_slice(&r.a.to_le_bytes());
            out.extend_from_slice(&r.b.to_le_bytes());
            out.extend_from_slice(&r.digest.to_le_bytes());
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a table from the head of `buf` (trailing packed bytes are
    /// ignored). `None` on bad magic, impossible count, CRC mismatch, an
    /// unknown record kind, a self-reference that is not a backward
    /// pointer at a materialized chunk, or records whose logical lengths
    /// do not sum to `logical_len` — the advisory-table discipline:
    /// callers fall back rather than trust a damaged frame.
    pub fn decode(buf: &[u8]) -> Option<FrameTable> {
        if buf.len() < FRAME_HEADER + 8 {
            return None;
        }
        if u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")) != FRAME_MAGIC {
            return None;
        }
        let count = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
        if u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) != FRAME_VERSION {
            return None;
        }
        let table_len = Self::encoded_len_for(count) as usize;
        if table_len > buf.len() {
            return None;
        }
        let crc_off = table_len - 8;
        let stored = u64::from_le_bytes(buf[crc_off..table_len].try_into().expect("8 bytes"));
        if fnv1a(&buf[..crc_off]) != stored {
            return None;
        }
        let counter = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let logical_len = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
        let full_digest = u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes"));
        let mut records = Vec::with_capacity(count);
        let mut off = FRAME_HEADER;
        let mut logical_sum = 0u64;
        for i in 0..count {
            let kind = ChunkEncoding::from_u32(u32::from_le_bytes(
                buf[off..off + 4].try_into().expect("4 bytes"),
            ))?;
            let aux = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4 bytes"));
            let r = FrameRecord {
                kind,
                aux,
                logical_len: u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("8")),
                a: u64::from_le_bytes(buf[off + 16..off + 24].try_into().expect("8")),
                b: u64::from_le_bytes(buf[off + 24..off + 32].try_into().expect("8")),
                digest: u64::from_le_bytes(buf[off + 32..off + 40].try_into().expect("8")),
            };
            if kind == ChunkEncoding::DedupSelf {
                let target = aux as usize;
                if target >= i {
                    return None;
                }
                let t: &FrameRecord = &records[target];
                if !t.kind.is_materialized() || t.logical_len != r.logical_len {
                    return None;
                }
            }
            logical_sum = logical_sum.checked_add(r.logical_len)?;
            records.push(r);
            off += FRAME_RECORD_SIZE;
        }
        if logical_sum != logical_len {
            return None;
        }
        Some(FrameTable {
            counter,
            logical_len,
            full_digest,
            records,
        })
    }
}

/// Estimates Shannon entropy (bits/byte) from an evenly strided sample of
/// at most 4 KiB.
pub fn entropy_estimate(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let stride = (data.len() / 4096).max(1);
    let mut hist = [0u32; 256];
    let mut n = 0u32;
    let mut i = 0;
    while i < data.len() {
        hist[data[i] as usize] += 1;
        n += 1;
        i += stride;
    }
    let n = f64::from(n);
    let mut bits = 0.0;
    for &c in &hist {
        if c > 0 {
            let p = f64::from(c) / n;
            bits -= p * p.log2();
        }
    }
    bits
}

/// Compresses `src`, or `None` when the result would not be worth keeping.
///
/// `None` means "store raw": the sampled entropy exceeded
/// [`ENTROPY_SKIP_BITS`], the input was shorter than a match, or the
/// compressed form failed the minimum-gain bar (≥ 1/16 smaller).
pub fn compress_gated(src: &[u8]) -> Option<Vec<u8>> {
    if src.len() < MIN_MATCH * 2 || entropy_estimate(src) > ENTROPY_SKIP_BITS {
        return None;
    }
    let limit = src.len() - (src.len() >> MIN_GAIN_SHIFT);
    lz_compress_limit(src, limit)
}

/// Greedy LZ compression of `src`; `None` when the output would reach
/// `limit` bytes (not worth keeping).
fn lz_compress_limit(src: &[u8], limit: usize) -> Option<Vec<u8>> {
    const HASH_BITS: u32 = 13;
    let mut table = [0usize; 1 << HASH_BITS]; // position + 1; 0 = empty
    let hash = |w: u32| -> usize { (w.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize };
    let word_at = |i: usize| -> u32 {
        u32::from_le_bytes(src[i..i + 4].try_into().expect("4-byte window"))
    };

    let mut out = Vec::with_capacity(limit.min(src.len()));
    let mut lit_start = 0usize;
    let mut i = 0usize;
    // Leave a 4-byte tail so `word_at` never reads past the end.
    let search_end = src.len().saturating_sub(MIN_MATCH);
    while i < search_end {
        let w = word_at(i);
        let h = hash(w);
        let cand = table[h];
        table[h] = i + 1;
        let matched = cand > 0 && {
            let c = cand - 1;
            i - c <= MAX_OFFSET && word_at(c) == w
        };
        if !matched {
            i += 1;
            continue;
        }
        let c = cand - 1;
        // Extend the match forward.
        let mut mlen = MIN_MATCH;
        while i + mlen < src.len() && src[c + mlen] == src[i + mlen] {
            mlen += 1;
        }
        emit_sequence(&mut out, &src[lit_start..i], (i - c) as u16, mlen);
        if out.len() >= limit {
            return None;
        }
        i += mlen;
        lit_start = i;
    }
    emit_literals_only(&mut out, &src[lit_start..]);
    (out.len() < limit).then_some(out)
}

fn write_run(out: &mut Vec<u8>, mut run: usize) {
    while run >= 255 {
        out.push(255);
        run -= 255;
    }
    out.push(run as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let lit_nib = literals.len().min(15) as u8;
    let m = match_len - MIN_MATCH;
    let m_nib = m.min(15) as u8;
    out.push((lit_nib << 4) | m_nib);
    if lit_nib == 15 {
        write_run(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if m_nib == 15 {
        write_run(out, m - 15);
    }
}

fn emit_literals_only(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_nib = literals.len().min(15) as u8;
    out.push(lit_nib << 4); // match nibble 0 + no offset = terminal
    if lit_nib == 15 {
        write_run(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// Decompresses an LZ block produced by this module into exactly
/// `logical_len` bytes. `None` on any malformed input (truncated stream,
/// out-of-window offset, wrong output length) — restore treats that as a
/// corrupt chunk and fails the candidate.
pub fn lz_decompress(src: &[u8], logical_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(logical_len);
    let mut i = 0usize;
    loop {
        let token = *src.get(i)?;
        i += 1;
        let mut lit = usize::from(token >> 4);
        if lit == 15 {
            loop {
                let b = *src.get(i)?;
                i += 1;
                lit += usize::from(b);
                if b != 255 {
                    break;
                }
            }
        }
        if i + lit > src.len() {
            return None;
        }
        out.extend_from_slice(&src[i..i + lit]);
        i += lit;
        if i == src.len() {
            // Terminal literals-only sequence (match nibble must be 0).
            if token & 0x0F != 0 {
                return None;
            }
            break;
        }
        if i + 2 > src.len() {
            return None;
        }
        let offset = usize::from(u16::from_le_bytes(
            src[i..i + 2].try_into().expect("2 bytes"),
        ));
        i += 2;
        if offset == 0 || offset > out.len() {
            return None;
        }
        let mut mlen = usize::from(token & 0x0F);
        if mlen == 15 {
            loop {
                let b = *src.get(i)?;
                i += 1;
                mlen += usize::from(b);
                if b != 255 {
                    break;
                }
            }
        }
        mlen += MIN_MATCH;
        // Overlapping copy: byte-by-byte on purpose (offset < mlen is the
        // run-length case).
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() > logical_len {
            return None;
        }
    }
    (out.len() == logical_len).then_some(out)
}

/// Where a deduplicated chunk's materialized bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupHit {
    /// Checkpoint counter of the generation the entry belongs to.
    pub counter: u64,
    /// Slot holding the materialized bytes.
    pub slot: u32,
    /// Logical byte offset of the chunk within that checkpoint's payload.
    pub logical_off: u64,
    /// Chunk length.
    pub len: u64,
}

#[derive(Debug, Default)]
struct Generation {
    counter: u64,
    slot: u32,
    by_digest: HashMap<u64, (u64, u64)>, // digest -> (logical_off, len)
}

/// Content-addressed index over the *materialized* chunks of each job's
/// latest framed commit.
///
/// One generation per job: installing a new commit's chunks evicts the
/// prior generation wholesale, which is exactly the lifetime the depth-≤1
/// reference rule needs — a lookup can only ever name bytes physically
/// present in the current base checkpoint. Jobs are keyed by their id
/// (`u64::MAX` stands for the single-tenant "no job" namespace) so
/// multi-tenant stores never dedup across namespaces.
#[derive(Debug, Default)]
pub struct DedupIndex {
    generations: HashMap<u64, Generation>,
    /// Max entries kept per generation; overflow chunks stay materialized.
    cap: usize,
}

/// Default per-generation entry cap.
pub const DEDUP_DEFAULT_CAP: usize = 8192;

impl DedupIndex {
    /// An index bounded to `cap` entries per job generation.
    pub fn with_capacity(cap: usize) -> DedupIndex {
        DedupIndex {
            generations: HashMap::new(),
            cap,
        }
    }

    fn job_key(job: Option<u64>) -> u64 {
        job.unwrap_or(u64::MAX)
    }

    /// Replaces `job`'s generation with the materialized chunks of the
    /// just-committed checkpoint `counter` in `slot`. `chunks` yields
    /// `(digest, logical_off, len)` per materialized chunk.
    pub fn install(
        &mut self,
        job: Option<u64>,
        counter: u64,
        slot: u32,
        chunks: impl IntoIterator<Item = (u64, u64, u64)>,
    ) {
        let cap = if self.cap == 0 {
            DEDUP_DEFAULT_CAP
        } else {
            self.cap
        };
        let mut by_digest = HashMap::new();
        for (digest, off, len) in chunks {
            if by_digest.len() >= cap {
                break;
            }
            by_digest.entry(digest).or_insert((off, len));
        }
        self.generations.insert(
            Self::job_key(job),
            Generation {
                counter,
                slot,
                by_digest,
            },
        );
    }

    /// Looks up a chunk by content address, only answering from `job`'s
    /// generation when it is exactly checkpoint `base_counter` — a lookup
    /// against any other generation would reference bytes the commit's
    /// `DeltaLink` does not pin.
    pub fn lookup(&self, job: Option<u64>, base_counter: u64, digest: u64, len: u64) -> Option<DedupHit> {
        let g = self.generations.get(&Self::job_key(job))?;
        if g.counter != base_counter {
            return None;
        }
        let &(logical_off, entry_len) = g.by_digest.get(&digest)?;
        (entry_len == len).then_some(DedupHit {
            counter: g.counter,
            slot: g.slot,
            logical_off,
            len,
        })
    }

    /// The checkpoint counter of `job`'s current generation, if any.
    pub fn generation_counter(&self, job: Option<u64>) -> Option<u64> {
        self.generations
            .get(&Self::job_key(job))
            .map(|g| g.counter)
    }

    /// Drops `job`'s generation (e.g., its namespace was released).
    pub fn evict_job(&mut self, job: Option<u64>) {
        self.generations.remove(&Self::job_key(job));
    }

    /// Drops every generation.
    pub fn clear(&mut self) {
        self.generations.clear();
    }
}

/// Builds the digest every framed restore verifies the reconstructed
/// payload against: the state discipline (`FNV_SEED ^ iteration` fold)
/// or the raw checksum — the same dual acceptance the legacy paths use.
pub fn payload_digest_matches(state: &[u8], iteration: u64, full_digest: u64) -> bool {
    fnv1a_fold(FNV_SEED ^ iteration, state) == full_digest || fnv1a(state) == full_digest
}

/// Convenience: the content address of a chunk (re-exported so persist and
/// restore provably share one digest).
pub fn content_address(chunk: &[u8]) -> u64 {
    chunk_digest(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_table() -> FrameTable {
        FrameTable {
            counter: 42,
            logical_len: 300,
            full_digest: 0xfeed_face_dead_beef,
            records: vec![
                FrameRecord {
                    kind: ChunkEncoding::Raw,
                    aux: 0,
                    logical_len: 100,
                    a: 0,
                    b: 100,
                    digest: 11,
                },
                FrameRecord {
                    kind: ChunkEncoding::Lz,
                    aux: 0,
                    logical_len: 100,
                    a: 100,
                    b: 40,
                    digest: 22,
                },
                FrameRecord {
                    kind: ChunkEncoding::DedupSelf,
                    aux: 0,
                    logical_len: 100,
                    a: 0,
                    b: 0,
                    digest: 11,
                },
            ],
        }
    }

    #[test]
    fn frame_encode_decode_round_trip() {
        let t = sample_table();
        let buf = t.encode();
        assert_eq!(buf.len() as u64, t.encoded_len());
        assert_eq!(FrameTable::decode(&buf).unwrap(), t);
        assert_eq!(t.packed_len(), 140);
        assert_eq!(t.physical_len(), t.encoded_len() + 140);
        assert_eq!(t.dedup_bytes(), 100);
        assert!(!t.references_base());
    }

    #[test]
    fn frame_decode_ignores_trailing_packed_bytes() {
        let t = sample_table();
        let mut buf = t.encode();
        buf.extend_from_slice(&[0x5A; 140]);
        assert_eq!(FrameTable::decode(&buf).unwrap(), t);
    }

    #[test]
    fn frame_decode_rejects_any_single_bitflip() {
        let good = sample_table().encode();
        for pos in 0..good.len() {
            let mut buf = good.clone();
            buf[pos] ^= 0x08;
            assert!(
                FrameTable::decode(&buf).is_none(),
                "bitflip at {pos} not detected"
            );
        }
    }

    #[test]
    fn frame_decode_rejects_forward_self_reference() {
        let mut t = sample_table();
        t.records[2].aux = 2; // self-reference (not a backward pointer)
        assert!(FrameTable::decode(&t.encode()).is_none());
        t.records[2].aux = 5; // forward/out-of-range
        assert!(FrameTable::decode(&t.encode()).is_none());
    }

    #[test]
    fn frame_decode_rejects_logical_len_mismatch() {
        let mut t = sample_table();
        t.logical_len = 299;
        assert!(FrameTable::decode(&t.encode()).is_none());
    }

    #[test]
    fn frame_decode_rejects_impossible_count() {
        let mut buf = sample_table().encode();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(FrameTable::decode(&buf).is_none());
    }

    #[test]
    fn lz_round_trips_compressible_data() {
        let mut src = Vec::new();
        for i in 0..4096u32 {
            src.push((i % 7) as u8);
        }
        let comp = compress_gated(&src).expect("repetitive data compresses");
        assert!(comp.len() < src.len() / 2);
        assert_eq!(lz_decompress(&comp, src.len()).unwrap(), src);
    }

    #[test]
    fn lz_skips_incompressible_data() {
        let mut src = vec![0u8; 4096];
        pccheck_util::rng::fill_deterministic(&mut src, 99);
        assert!(compress_gated(&src).is_none());
    }

    #[test]
    fn entropy_gate_orders_payload_classes() {
        let zeros = vec![0u8; 4096];
        let mut noise = vec![0u8; 4096];
        pccheck_util::rng::fill_deterministic(&mut noise, 3);
        assert!(entropy_estimate(&zeros) < 0.1);
        assert!(entropy_estimate(&noise) > ENTROPY_SKIP_BITS);
    }

    #[test]
    fn lz_decompress_rejects_truncation_and_bad_offsets() {
        let src = vec![7u8; 600];
        let comp = compress_gated(&src).unwrap();
        for cut in 1..comp.len() {
            // Any strict prefix either fails outright or yields the wrong
            // length; never a silent wrong answer.
            if let Some(out) = lz_decompress(&comp[..cut], src.len()) {
                assert_eq!(out, src);
            }
        }
        // A match before any literals (offset into an empty window).
        assert!(lz_decompress(&[0x01, 0x01, 0x00], 5).is_none());
    }

    #[test]
    fn dedup_index_answers_only_current_generation() {
        let mut idx = DedupIndex::default();
        idx.install(None, 7, 2, vec![(111, 0, 64), (222, 64, 64)]);
        assert_eq!(
            idx.lookup(None, 7, 111, 64),
            Some(DedupHit {
                counter: 7,
                slot: 2,
                logical_off: 0,
                len: 64
            })
        );
        // Wrong base counter: the caller's link would not pin gen 7.
        assert!(idx.lookup(None, 6, 111, 64).is_none());
        // Length mismatch is a digest collision, not a hit.
        assert!(idx.lookup(None, 7, 111, 32).is_none());
        // Installing the next generation evicts the old one.
        idx.install(None, 8, 0, vec![(333, 0, 64)]);
        assert!(idx.lookup(None, 8, 111, 64).is_none());
        assert_eq!(idx.lookup(None, 8, 333, 64).unwrap().slot, 0);
        assert_eq!(idx.generation_counter(None), Some(8));
    }

    #[test]
    fn dedup_index_is_per_job() {
        let mut idx = DedupIndex::default();
        idx.install(Some(1), 5, 0, vec![(42, 0, 128)]);
        idx.install(Some(2), 9, 1, vec![(42, 0, 128)]);
        assert_eq!(idx.lookup(Some(1), 5, 42, 128).unwrap().counter, 5);
        assert_eq!(idx.lookup(Some(2), 9, 42, 128).unwrap().counter, 9);
        assert!(idx.lookup(Some(3), 5, 42, 128).is_none());
        idx.evict_job(Some(1));
        assert!(idx.lookup(Some(1), 5, 42, 128).is_none());
        assert!(idx.lookup(Some(2), 9, 42, 128).is_some());
    }

    #[test]
    fn dedup_index_caps_generation_size() {
        let mut idx = DedupIndex::with_capacity(2);
        idx.install(None, 1, 0, vec![(1, 0, 8), (2, 8, 8), (3, 16, 8)]);
        assert!(idx.lookup(None, 1, 1, 8).is_some());
        assert!(idx.lookup(None, 1, 2, 8).is_some());
        assert!(idx.lookup(None, 1, 3, 8).is_none());
    }

    proptest! {
        #[test]
        fn lz_round_trips_arbitrary_bytes(src in proptest::collection::vec(any::<u8>(), 0..2048)) {
            // Bypass the gates: force a compression attempt with no limit,
            // and require exact reconstruction whenever one is produced.
            if let Some(comp) = lz_compress_limit(&src, usize::MAX) {
                prop_assert_eq!(lz_decompress(&comp, src.len()).unwrap(), src);
            }
        }

        #[test]
        fn lz_round_trips_low_entropy_bytes(
            src in proptest::collection::vec(0u8..4, 64..2048)
        ) {
            let comp = compress_gated(&src);
            if let Some(comp) = comp {
                prop_assert!(comp.len() < src.len());
                prop_assert_eq!(lz_decompress(&comp, src.len()).unwrap(), src);
            }
        }

        #[test]
        fn frame_round_trips_arbitrary_raw_geometry(
            lens in proptest::collection::vec(1u64..10_000, 1..40),
            counter in 1u64..1_000_000,
        ) {
            let mut records = Vec::new();
            let mut phys = 0u64;
            for (i, &len) in lens.iter().enumerate() {
                records.push(FrameRecord {
                    kind: ChunkEncoding::Raw,
                    aux: 0,
                    logical_len: len,
                    a: phys,
                    b: len,
                    digest: (i as u64) * 31 + 7,
                });
                phys += len;
            }
            let t = FrameTable {
                counter,
                logical_len: lens.iter().sum(),
                full_digest: counter ^ 0xABCD,
                records,
            };
            prop_assert_eq!(FrameTable::decode(&t.encode()).unwrap(), t);
        }
    }
}

//! The PCcheck engine: orchestrator + persistent manager.
//!
//! This is the concrete (real-thread) implementation of the system in
//! Figure 5. On each checkpoint request the engine:
//!
//! 1. takes one of `N` concurrency tickets (if all are taken, the request
//!    blocks — the only stall PCcheck admits beyond the `U`-phase weight
//!    lock),
//! 2. snapshots the GPU state chunk by chunk into pinned DRAM buffers from
//!    the staging pool, holding the weights shared-lock only for the copy,
//! 3. hands chunks to `p` writer threads that write them to the device at
//!    the leased slot's offsets (pipelined mode overlaps 2 and 3;
//!    non-pipelined mode stages the full checkpoint first),
//! 4. persists the payload (per-writer fences on PMEM, or one deferred
//!    `msync` on SSD when `single_sync` is set),
//! 5. runs the store's lock-free commit protocol — atomic meta publish,
//!    durable `Committed` state-word write, `fetch_max` head advance — and
//!    recycles the displaced slot through the lock-free slot queue. No
//!    mutex is held anywhere on this path, so `N` checkpointers commit
//!    concurrently without serializing on metadata.
//!
//! All of this happens on background threads; the training loop's
//! `checkpoint()` call returns as soon as the ticket and the weights lock
//! are handed over, exactly like Figure 6's overlap of `C`/`P` with `T`.
//!
//! The chunk → write → fence → commit mechanics live in the shared
//! [`PersistPipeline`]; this module is the *scheduling policy* around it:
//! `N` concurrency tickets, background workers, and the staged-vs-streamed
//! copy choice.

use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use pccheck_device::{HostBufferPool, PersistentDevice};
use pccheck_gpu::{CheckpointOutcome, Checkpointer, Gpu, OwnedWeightsGuard};
use pccheck_telemetry::{CheckpointCounters, CountersSnapshot, FlightEventKind, Phase, Telemetry};
use pccheck_util::ByteSize;

use crate::config::PcCheckConfig;
use crate::error::PccheckError;
use crate::pipeline::{DeltaPolicy, FenceMode, PersistPipeline, PipelineCtx};
use crate::store::{CheckpointStore, CommitOutcome, JobId, SlotLease};
use crate::tuner::{ControllerConfig, ControllerSignals, PersistController};

/// Cumulative engine statistics.
///
/// A thin wrapper over [`pccheck_telemetry::CheckpointCounters`] — the
/// same counter block the telemetry layer uses, kept engine-local so the
/// accessors work with telemetry disabled. Prefer
/// [`snapshot`](EngineStats::snapshot) when reading more than one counter:
/// it returns one mutually consistent view instead of independent loads.
#[derive(Debug, Default)]
pub struct EngineStats {
    counters: CheckpointCounters,
}

impl EngineStats {
    /// Checkpoints that became the latest committed state.
    pub fn committed(&self) -> u64 {
        self.counters.committed()
    }

    /// Checkpoints that lost the commit race to a newer one.
    pub fn superseded(&self) -> u64 {
        self.counters.superseded()
    }

    /// Checkpoint requests accepted.
    pub fn requested(&self) -> u64 {
        self.counters.requested()
    }

    /// Checkpoints that failed (device error, crash injection).
    pub fn failed(&self) -> u64 {
        self.counters.failed()
    }

    /// Payload bytes of committed checkpoints.
    pub fn bytes_persisted(&self) -> u64 {
        self.counters.bytes_persisted()
    }

    /// One mutually consistent view of all counters.
    pub fn snapshot(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }
}

#[derive(Debug, Default)]
struct InFlight {
    count: Mutex<usize>,
    cond: Condvar,
}

impl InFlight {
    fn acquire(&self, limit: usize) {
        let mut count = self.count.lock();
        while *count >= limit {
            self.cond.wait(&mut count);
        }
        *count += 1;
    }

    fn release(&self) {
        let mut count = self.count.lock();
        *count -= 1;
        drop(count);
        // Both acquirers and `wait_zero` drainers share this condvar. A
        // `notify_one` could hand the sole wakeup to a drainer (which
        // re-checks `count == 0` and exits without re-notifying) while an
        // acquirer sleeps forever — the classic lost wakeup.
        self.cond.notify_all();
    }

    fn wait_zero(&self) {
        let mut count = self.count.lock();
        while *count > 0 {
            self.cond.wait(&mut count);
        }
    }
}

/// The PCcheck checkpointing engine.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug)]
pub struct PcCheckEngine {
    config: PcCheckConfig,
    pipeline: Arc<PersistPipeline>,
    store: Arc<CheckpointStore>,
    pool: HostBufferPool,
    /// In service mode, the tenant this facade checkpoints for: leases
    /// come from this job's namespace and commits move its commit
    /// pointer. `None` = classic single-tenant engine.
    job: Option<JobId>,
    in_flight: Arc<InFlight>,
    stats: Arc<EngineStats>,
    telemetry: Telemetry,
    first_error: Arc<Mutex<Option<PccheckError>>>,
    last_committed: Arc<Mutex<Option<CheckpointOutcome>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The adaptive persist-path controller (present when
    /// `config.adaptive_interval > 0`); steered from the training thread
    /// every `adaptive_interval` requests.
    controller: Mutex<Option<PersistController>>,
    /// Delta policy the framed path persists under — the controller's
    /// latest decision, or the default when no controller runs.
    delta_policy: Arc<Mutex<DeltaPolicy>>,
    /// Whether THIS engine's checkpoints use the codec. Distinct from the
    /// pipeline's global switch so service-mode tenants sharing one
    /// pipeline opt in (and re-tune) independently: a checkpoint frames
    /// only when both this flag and the pipeline's switch are on.
    codec_active: Arc<std::sync::atomic::AtomicBool>,
}

impl PcCheckEngine {
    /// Creates an engine over `device` for checkpoints of `checkpoint_size`
    /// bytes, formatting a fresh store with `N+1` slots.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the configuration is
    /// inconsistent or the device is too small for `N+1` slots.
    pub fn new(
        config: PcCheckConfig,
        device: Arc<dyn PersistentDevice>,
        checkpoint_size: ByteSize,
    ) -> Result<Self, PccheckError> {
        config.validate()?;
        let slots = (config.max_concurrent + 1) as u32;
        let store = CheckpointStore::format_with_flight(
            device,
            checkpoint_size,
            slots,
            config.flight_records,
        )?;
        Self::with_store(config, Arc::new(store))
    }

    /// Creates an engine over an existing (e.g., recovered) store.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the configuration is
    /// invalid or the store has fewer than `N+1` slots.
    pub fn with_store(
        config: PcCheckConfig,
        store: Arc<CheckpointStore>,
    ) -> Result<Self, PccheckError> {
        config.validate()?;
        if (store.num_slots() as usize) < config.max_concurrent + 1 {
            return Err(PccheckError::InvalidConfig(format!(
                "store has {} slots but N={} needs {}",
                store.num_slots(),
                config.max_concurrent,
                config.max_concurrent + 1
            )));
        }
        if !config.pipelined && config.dram_bytes() < store.slot_size() {
            // The staged (Figure 6) path holds every chunk of a checkpoint
            // in DRAM before persisting; a smaller pool would deadlock on
            // `HostBufferPool::acquire`.
            return Err(PccheckError::InvalidConfig(format!(
                "non-pipelined mode needs DRAM >= checkpoint size: pool {} < {}",
                config.dram_bytes(),
                store.slot_size()
            )));
        }
        let pool = HostBufferPool::new(config.chunk_size, config.dram_chunks);
        let fence = if config.single_sync {
            FenceMode::Deferred
        } else {
            FenceMode::PerWriter
        };
        let pipeline = PersistPipeline::new(Arc::clone(&store))
            .with_writers(config.writer_threads)
            .with_fence(fence)
            .with_staging(pool.clone())
            .with_codec(config.codec);
        let last = store.latest_committed().map(|m| CheckpointOutcome {
            iteration: m.iteration,
            digest: m.state_digest(),
        });
        let controller = Self::build_controller(&config);
        let codec_active = config.codec;
        Ok(PcCheckEngine {
            config,
            pipeline: Arc::new(pipeline),
            store,
            pool,
            job: None,
            in_flight: Arc::new(InFlight::default()),
            stats: Arc::new(EngineStats::default()),
            telemetry: Telemetry::disabled(),
            first_error: Arc::new(Mutex::new(None)),
            last_committed: Arc::new(Mutex::new(last)),
            workers: Mutex::new(Vec::new()),
            controller: Mutex::new(controller),
            delta_policy: Arc::new(Mutex::new(DeltaPolicy::default())),
            codec_active: Arc::new(std::sync::atomic::AtomicBool::new(codec_active)),
        })
    }

    /// Builds the adaptive controller when the config asks for one,
    /// seeded from the configured writer count and codec state.
    fn build_controller(config: &PcCheckConfig) -> Option<PersistController> {
        if config.adaptive_interval == 0 {
            return None;
        }
        let mut cc = ControllerConfig::default();
        // The controller may not lower p below 1 nor raise it past the
        // larger of its default ceiling and the configured start.
        cc.max_writers = cc.max_writers.max(config.writer_threads);
        Some(PersistController::new(
            cc,
            config.writer_threads.max(1),
            config.codec,
        ))
    }

    /// Creates a per-job facade over a *shared* pipeline (service mode):
    /// the store, staging pool, writer pool, and QoS arbiter all belong
    /// to the daemon; this engine only schedules `job`'s checkpoints over
    /// them. Leases draw from `job`'s namespace and `last_committed`
    /// starts from that namespace's recovered head.
    ///
    /// # Errors
    ///
    /// Returns [`PccheckError::InvalidConfig`] if the configuration is
    /// invalid, the pipeline has no staging pool, the store is not
    /// multi-tenant, `job` has no namespace, or the namespace has fewer
    /// than `N+1` slots.
    pub fn with_shared(
        config: PcCheckConfig,
        pipeline: Arc<PersistPipeline>,
        job: JobId,
    ) -> Result<Self, PccheckError> {
        config.validate()?;
        let store = Arc::clone(pipeline.store());
        if !store.is_multi_tenant() {
            return Err(PccheckError::InvalidConfig(
                "with_shared needs a service-mode (multi-tenant) store".into(),
            ));
        }
        let Some(pool) = pipeline.staging_pool().cloned() else {
            return Err(PccheckError::InvalidConfig(
                "with_shared needs a pipeline with a staging pool attached".into(),
            ));
        };
        let ns = store
            .namespaces()
            .into_iter()
            .find(|d| d.job == job)
            .ok_or_else(|| {
                PccheckError::InvalidConfig(format!("job {job} has no namespace in this store"))
            })?;
        if (ns.slot_count as usize) < config.max_concurrent + 1 {
            return Err(PccheckError::InvalidConfig(format!(
                "job {job}'s namespace has {} slots but N={} needs {}",
                ns.slot_count,
                config.max_concurrent,
                config.max_concurrent + 1
            )));
        }
        let last = store.latest_committed_job(job)?.map(|m| CheckpointOutcome {
            iteration: m.iteration,
            digest: m.state_digest(),
        });
        let controller = Self::build_controller(&config);
        let codec_active = config.codec;
        Ok(PcCheckEngine {
            config,
            pipeline,
            store,
            pool,
            job: Some(job),
            in_flight: Arc::new(InFlight::default()),
            stats: Arc::new(EngineStats::default()),
            telemetry: Telemetry::disabled(),
            first_error: Arc::new(Mutex::new(None)),
            last_committed: Arc::new(Mutex::new(last)),
            workers: Mutex::new(Vec::new()),
            // Service mode: the controller runs in per-job observe mode —
            // it retunes this tenant's codec and delta policy but never
            // writes the shared pipeline's writer count or codec switch
            // (those belong to the daemon).
            controller: Mutex::new(controller),
            delta_policy: Arc::new(Mutex::new(DeltaPolicy::default())),
            codec_active: Arc::new(std::sync::atomic::AtomicBool::new(codec_active)),
        })
    }

    /// The job this facade checkpoints for (service mode), if any.
    pub fn job(&self) -> Option<JobId> {
        self.job
    }

    /// The engine configuration.
    pub fn config(&self) -> &PcCheckConfig {
        &self.config
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Attaches a telemetry handle; every subsequent checkpoint records
    /// its full lifecycle. With the default
    /// [`Telemetry::disabled`] handle every hook is a no-op.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Waits for all in-flight checkpoints, then surfaces the first error
    /// any background checkpoint hit since the last call (the error slot
    /// is cleared once returned). The trait-level
    /// [`drain`](Checkpointer::drain) keeps its infallible signature;
    /// failures it observes stay visible through
    /// [`stats().failed()`](EngineStats::failed), the telemetry `fail`
    /// event, and the next `try_drain` call.
    ///
    /// # Errors
    ///
    /// Returns the first [`PccheckError`] recorded by a background
    /// checkpoint worker.
    pub fn try_drain(&self) -> Result<(), PccheckError> {
        self.in_flight.wait_zero();
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            handle.join().expect("checkpoint worker panicked");
        }
        drop(workers);
        match self.first_error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The DRAM staging pool (for footprint inspection).
    pub fn dram_pool(&self) -> &HostBufferPool {
        &self.pool
    }

    fn reap_finished_workers(&self) {
        let mut workers = self.workers.lock();
        let mut still_running = Vec::with_capacity(workers.len());
        for handle in workers.drain(..) {
            if handle.is_finished() {
                handle.join().expect("checkpoint worker panicked");
            } else {
                still_running.push(handle);
            }
        }
        *workers = still_running;
    }

    /// The shared persist pipeline this engine schedules over.
    pub fn pipeline(&self) -> &Arc<PersistPipeline> {
        &self.pipeline
    }

    /// A snapshot of the adaptive controller's state, when one runs.
    pub fn controller_state(&self) -> Option<PersistController> {
        self.controller.lock().clone()
    }

    /// The delta policy the framed path currently persists under.
    pub fn delta_policy(&self) -> DeltaPolicy {
        *self.delta_policy.lock()
    }

    /// Whether this engine's checkpoints currently use the chunk codec
    /// (the config flag, possibly overridden by the controller).
    pub fn codec_active(&self) -> bool {
        self.codec_active.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Runs one controller interval if the config asks for adaptation,
    /// telemetry is live, and `adaptive_interval` requests have elapsed
    /// since the last one. Called on the training thread — the tick is a
    /// snapshot read plus integer arithmetic, far below one iteration.
    ///
    /// Single-tenant engines own their pipeline, so the decision is
    /// applied to its writer count and codec switch. Service-mode facades
    /// share the daemon's pipeline: the tick is pure and the decision
    /// only moves this job's own knobs (codec use, delta policy).
    fn maybe_steer(&self) {
        if self.config.adaptive_interval == 0 {
            return;
        }
        let requested = self.stats.counters.requested();
        if requested == 0 || requested % self.config.adaptive_interval != 0 {
            return;
        }
        let Some(snapshot) = self.telemetry.snapshot() else {
            return;
        };
        let mut slot = self.controller.lock();
        let Some(controller) = slot.as_mut() else {
            return;
        };
        let decision = if self.job.is_none() {
            controller.steer(&snapshot, &self.pipeline)
        } else {
            controller.tick(ControllerSignals::from_snapshot(&snapshot))
        };
        *self.delta_policy.lock() = decision.delta_policy;
        self.codec_active
            .store(decision.codec_enabled, std::sync::atomic::Ordering::Release);
    }

    /// Body of one checkpoint, run on a background worker thread.
    #[allow(clippy::too_many_arguments)]
    fn run_checkpoint(
        pipeline: &PersistPipeline,
        config: &PcCheckConfig,
        ctx: PipelineCtx<'_>,
        guard: OwnedWeightsGuard,
        job: Option<JobId>,
        iteration: u64,
        digest: pccheck_gpu::StateDigest,
        delta_policy: DeltaPolicy,
        use_codec: bool,
    ) -> Result<CommitOutcome, PccheckError> {
        let total = guard.size();
        let lease = pipeline.lease_for(ctx, job)?;
        let (counter, slot) = (lease.counter, lease.slot);
        let result = Self::run_leased(
            pipeline,
            config,
            ctx,
            guard,
            lease,
            iteration,
            digest,
            total,
            delta_policy,
            use_codec,
        );
        if result.is_err() {
            // A failed checkpoint leaves its Begin record unterminated on
            // the flight ring without this — record the failure so the
            // forensic auditor can tell "died mid-flight at the crash"
            // from "failed and the run continued".
            pipeline.store().flight().record(
                FlightEventKind::Failed,
                counter,
                slot,
                iteration,
                0,
                0,
            );
        }
        result
    }

    /// The leased portion of [`run_checkpoint`](Self::run_checkpoint):
    /// copy, persist, and commit — all through the shared pipeline; the
    /// staged-vs-streamed choice is this engine's scheduling policy.
    #[allow(clippy::too_many_arguments)]
    fn run_leased(
        pipeline: &PersistPipeline,
        config: &PcCheckConfig,
        ctx: PipelineCtx<'_>,
        guard: OwnedWeightsGuard,
        lease: SlotLease,
        iteration: u64,
        digest: pccheck_gpu::StateDigest,
        total: ByteSize,
        delta_policy: DeltaPolicy,
        use_codec: bool,
    ) -> Result<CommitOutcome, PccheckError> {
        // Codec path: stage, classify (compress / self-dedup / base-dedup),
        // and pack into a framed payload. `copy_framed` declines — and we
        // stream raw below — when the pool can't stage the snapshot or the
        // frame wouldn't shrink it, so this branch never loses to the
        // legacy path on incompressible data beyond the decline probe.
        if use_codec && pipeline.codec_enabled() {
            if let Some(plan) =
                pipeline.copy_framed(ctx, &guard, &lease, total, digest.0, delta_policy)?
            {
                let sealed = ByteSize::from_bytes(plan.payload_len);
                if pipeline.fence() == FenceMode::PerWriter {
                    pipeline.seal(ctx, &lease, iteration, sealed, plan.persist_start)?;
                    drop(guard);
                } else {
                    drop(guard);
                    pipeline.seal(ctx, &lease, iteration, sealed, plan.persist_start)?;
                }
                return pipeline.commit_framed(ctx, lease, iteration, &plan);
            }
        }
        let persist_start = if config.pipelined {
            pipeline.copy_streamed(ctx, &guard, &lease, total)?
        } else {
            pipeline.copy_staged(ctx, &guard, &lease, total)?
        };
        // Ordering: in per-writer-fence mode all persist work finished with
        // the copy scope, so seal (and its Persist phase_done) runs before
        // the guard drop — otherwise the weights handoff and any trainer
        // step it unblocks land inside the Persist span and skew the
        // ledger. In deferred mode the guard must drop first: holding the
        // weights through the whole-payload msync would stall training for
        // the full fence. Either way the weights are released before the
        // commit CAS.
        if pipeline.fence() == FenceMode::PerWriter {
            pipeline.seal(ctx, &lease, iteration, total, persist_start)?;
            drop(guard);
        } else {
            drop(guard);
            pipeline.seal(ctx, &lease, iteration, total, persist_start)?;
        }
        pipeline.commit(ctx, lease, iteration, total.as_u64(), digest.0)
    }
}

impl Checkpointer for PcCheckEngine {
    /// Accepts a checkpoint of the current GPU state. Blocks only while all
    /// `N` concurrency tickets are taken; otherwise the copy/persist/commit
    /// runs on a background worker.
    fn checkpoint(&self, gpu: &Gpu, iteration: u64) {
        self.reap_finished_workers();
        self.maybe_steer();
        let stall_start = self.telemetry.now_nanos();
        let span = self
            .telemetry
            .span_requested(self.name(), iteration, gpu.state_size().as_u64());
        self.in_flight.acquire(self.config.max_concurrent);
        self.stats.counters.incr_requested();
        let guard = gpu.lock_weights_shared_owned();
        // The ticket + weights-lock wait is the only stall this call
        // imposes on the training thread.
        self.telemetry
            .phase_done(span, Phase::TicketWait, stall_start);
        self.telemetry
            .stall(span, self.telemetry.now_nanos().saturating_sub(stall_start));
        self.telemetry.span_queued(span);

        let pipeline = Arc::clone(&self.pipeline);
        let config = self.config.clone();
        let in_flight = Arc::clone(&self.in_flight);
        let stats = Arc::clone(&self.stats);
        let telemetry = self.telemetry.clone();
        let first_error = Arc::clone(&self.first_error);
        let last = Arc::clone(&self.last_committed);
        let total_bytes = guard.size().as_u64();
        let job = self.job;
        let delta_policy = *self.delta_policy.lock();
        let use_codec = self
            .codec_active
            .load(std::sync::atomic::Ordering::Acquire);
        let handle = std::thread::spawn(move || {
            let digest = guard.digest();
            let ctx = PipelineCtx {
                telemetry: &telemetry,
                span,
            };
            let result = Self::run_checkpoint(
                &pipeline,
                &config,
                ctx,
                guard,
                job,
                iteration,
                digest,
                delta_policy,
                use_codec,
            );
            match result {
                Ok(CommitOutcome::Committed) => {
                    stats.counters.incr_committed(total_bytes);
                    telemetry.committed(span, iteration, total_bytes);
                    let mut l = last.lock();
                    if l.map_or(true, |o| o.iteration < iteration) {
                        *l = Some(CheckpointOutcome { iteration, digest });
                    }
                }
                Ok(CommitOutcome::SupersededBy { counter }) => {
                    stats.counters.incr_superseded();
                    telemetry.superseded(span, counter);
                }
                Err(e) => {
                    // Device failed mid-checkpoint (e.g., crash injection).
                    // The previous committed checkpoint remains valid; the
                    // failure stays visible through the `failed` counter,
                    // the telemetry `fail` event, and `try_drain`.
                    stats.counters.incr_failed();
                    telemetry.failed(span, &e.to_string());
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
            in_flight.release();
        });
        self.workers.lock().push(handle);
    }

    fn drain(&self) {
        // Infallible by signature; background errors remain visible via
        // `stats().failed()`, telemetry, and `PcCheckEngine::try_drain`.
        let _ = self.try_drain();
    }

    fn last_committed(&self) -> Option<CheckpointOutcome> {
        *self.last_committed.lock()
    }

    fn name(&self) -> &str {
        "pccheck"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccheck_device::{DeviceConfig, PmemDevice, PmemWriteMode, SsdDevice};
    use pccheck_gpu::{GpuConfig, TrainingState};

    fn tiny_gpu(size: u64, seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::synthetic(ByteSize::from_bytes(size), seed),
        )
    }

    fn ssd_engine(state: u64, n: usize, p: usize, pipelined: bool) -> (PcCheckEngine, Gpu) {
        let gpu = tiny_gpu(state, 7);
        let slots = (n + 1) as u32;
        let cap =
            CheckpointStore::required_capacity(gpu.state_size(), slots) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let config = PcCheckConfig::builder()
            .max_concurrent(n)
            .writer_threads(p)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(8)
            .pipelined(pipelined)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        (engine, gpu)
    }

    #[test]
    fn checkpoint_and_commit_round_trip() {
        let (engine, gpu) = ssd_engine(300, 2, 2, true);
        gpu.update();
        let expected = gpu.digest();
        engine.checkpoint(&gpu, 1);
        engine.drain();
        let out = engine.last_committed().unwrap();
        assert_eq!(out.iteration, 1);
        assert_eq!(out.digest, expected);
        assert_eq!(engine.stats().committed(), 1);
        assert_eq!(engine.stats().requested(), 1);
    }

    #[test]
    fn many_checkpoints_latest_wins() {
        let (engine, gpu) = ssd_engine(300, 3, 2, true);
        for iter in 1..=10 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        let out = engine.last_committed().unwrap();
        assert_eq!(out.iteration, 10);
        let total = engine.stats().committed() + engine.stats().superseded();
        assert_eq!(total, 10);
        // Recovered metadata agrees.
        let meta = engine.store().latest_committed().unwrap();
        assert_eq!(meta.iteration, 10);
    }

    #[test]
    fn non_pipelined_mode_works() {
        let (engine, gpu) = ssd_engine(500, 2, 3, false);
        for iter in 1..=5 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        assert_eq!(engine.last_committed().unwrap().iteration, 5);
    }

    #[test]
    fn recovered_payload_matches_gpu_state() {
        let (engine, gpu) = ssd_engine(300, 2, 2, true);
        for iter in 1..=4 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        let meta = engine.store().latest_committed().unwrap();
        let mut payload = vec![0u8; meta.payload_len as usize];
        let store = engine.store();
        store
            .device()
            .read_durable_at(store.slot_payload_offset(meta.slot), &mut payload)
            .unwrap();
        // Reconstruct and compare digests.
        let layout = gpu.with_weights(|s| s.layout());
        let restored = TrainingState::restore(&layout, &payload, meta.iteration);
        assert_eq!(restored.digest().0, meta.digest);
        assert_eq!(restored.digest(), gpu.digest());
    }

    #[test]
    fn single_sync_mode_is_correct_on_ssd() {
        let gpu = tiny_gpu(300, 3);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let device: Arc<dyn PersistentDevice> = ssd.clone();
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(8)
            .single_sync(true)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        gpu.update();
        engine.checkpoint(&gpu, 1);
        engine.drain();
        // Crash: the committed checkpoint must survive the msync-deferred path.
        ssd.crash_now();
        ssd.recover();
        let store = CheckpointStore::open(ssd).unwrap();
        let meta = store.latest_committed().unwrap();
        assert_eq!(meta.iteration, 1);
        let mut payload = vec![0u8; meta.payload_len as usize];
        store
            .device()
            .read_durable_at(store.slot_payload_offset(meta.slot), &mut payload)
            .unwrap();
        let layout = gpu.with_weights(|s| s.layout());
        let restored = TrainingState::restore(&layout, &payload, meta.iteration);
        assert_eq!(restored.digest().0, meta.digest, "payload survived msync");
    }

    #[test]
    fn per_thread_fences_required_on_pmem() {
        // On PMEM, writer threads fence their own stores (single_sync=false)
        // and the data survives a crash.
        let gpu = tiny_gpu(300, 4);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let pmem = Arc::new(PmemDevice::new(
            DeviceConfig::fast_for_tests(cap),
            PmemWriteMode::NtStore,
        ));
        let device: Arc<dyn PersistentDevice> = pmem.clone();
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(3)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(8)
            .single_sync(false)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        gpu.update();
        engine.checkpoint(&gpu, 1);
        engine.drain();
        pmem.crash_now();
        pmem.recover();
        let store = CheckpointStore::open(pmem).unwrap();
        let meta = store.latest_committed().unwrap();
        let mut payload = vec![0u8; meta.payload_len as usize];
        store
            .device()
            .read_durable_at(store.slot_payload_offset(meta.slot), &mut payload)
            .unwrap();
        let layout = gpu.with_weights(|s| s.layout());
        let restored = TrainingState::restore(&layout, &payload, meta.iteration);
        assert_eq!(restored.digest().0, meta.digest);
    }

    #[test]
    fn single_sync_on_pmem_loses_data_as_the_paper_warns() {
        // §4.1: the main thread's fence cannot cover worker stores on PMEM.
        // Configuring single_sync on PMEM is a bug our substrate catches:
        // after a crash, the payload does not verify.
        let gpu = tiny_gpu(300, 5);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let pmem = Arc::new(PmemDevice::new(
            DeviceConfig::fast_for_tests(cap),
            PmemWriteMode::NtStore,
        ));
        let device: Arc<dyn PersistentDevice> = pmem.clone();
        let config = PcCheckConfig::builder()
            .max_concurrent(1)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(8)
            .single_sync(true) // WRONG on PMEM
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        gpu.update();
        engine.checkpoint(&gpu, 1);
        engine.drain();
        pmem.crash_now();
        pmem.recover();
        let store = CheckpointStore::open(pmem).unwrap();
        // The commit record may exist (the committer fenced its own meta
        // write), but the payload written by *other* threads was never
        // fenced, so verification must fail.
        if let Some(meta) = store.latest_committed() {
            let mut payload = vec![0u8; meta.payload_len as usize];
            store
                .device()
                .read_durable_at(store.slot_payload_offset(meta.slot), &mut payload)
                .unwrap();
            let layout = gpu.with_weights(|s| s.layout());
            let restored = TrainingState::restore(&layout, &payload, meta.iteration);
            assert_ne!(
                restored.digest().0,
                meta.digest,
                "unfenced worker stores must not survive the crash"
            );
        }
    }

    #[test]
    fn concurrency_is_limited_to_n() {
        let (engine, gpu) = ssd_engine(300, 2, 1, true);
        for iter in 1..=6 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        assert_eq!(engine.stats().requested(), 6);
        // DRAM pool never exceeded its chunk budget.
        assert!(engine.dram_pool().peak_outstanding() <= 8);
    }

    #[test]
    fn update_proceeds_while_checkpoint_persists() {
        let (engine, gpu) = ssd_engine(300, 2, 2, true);
        gpu.update();
        engine.checkpoint(&gpu, 1);
        // The next update may briefly wait for the snapshot copy but must
        // not wait for the persist: with a fast device this returns quickly.
        gpu.update();
        assert_eq!(gpu.step_count(), 2);
        engine.drain();
    }

    #[test]
    fn non_pipelined_requires_dram_for_a_full_checkpoint() {
        let gpu = tiny_gpu(4096, 9);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(2) // 128 bytes of DRAM for a 4 KB checkpoint
            .pipelined(false)
            .build()
            .unwrap();
        assert!(matches!(
            PcCheckEngine::new(config, device, gpu.state_size()),
            Err(PccheckError::InvalidConfig(_))
        ));
    }

    #[test]
    fn telemetry_records_full_lifecycle() {
        use pccheck_telemetry::EventKind;

        let (engine, gpu) = ssd_engine(300, 2, 2, true);
        let telemetry = Telemetry::enabled();
        let engine = engine.with_telemetry(telemetry.clone());
        for iter in 1..=4 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();

        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters.requested, 4);
        assert_eq!(snap.counters.terminated(), 4);
        assert_eq!(snap.counters.failed, 0);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.phase(Phase::TicketWait).count, 4);
        assert_eq!(snap.phase(Phase::GpuCopy).count, 4);
        assert_eq!(snap.phase(Phase::Persist).count, 4);
        assert_eq!(snap.phase(Phase::Commit).count, 4);
        assert_eq!(snap.stall.count, 4);
        // Every byte of every checkpoint passed through both phases.
        assert_eq!(snap.gpu_copy_bytes, 4 * 300);
        assert_eq!(snap.persist_chunk_bytes, 4 * 300);

        // Engine stats and the telemetry counters tell the same story.
        let stats = engine.stats().snapshot();
        assert_eq!(stats.requested, snap.counters.requested);
        assert_eq!(stats.committed, snap.counters.committed);
        assert_eq!(stats.superseded, snap.counters.superseded);
        assert_eq!(stats.bytes_persisted, snap.counters.committed * 300);

        // Every span terminates exactly once.
        let events = telemetry.events();
        for e in &events {
            if matches!(e.kind, EventKind::Requested { .. }) {
                let terminals = events
                    .iter()
                    .filter(|t| t.span == e.span && t.kind.is_terminal())
                    .count();
                assert_eq!(terminals, 1, "{} must terminate once", e.span);
            }
        }
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let (engine, gpu) = ssd_engine(300, 2, 2, true);
        assert!(!engine.telemetry().is_enabled());
        gpu.update();
        engine.checkpoint(&gpu, 1);
        engine.drain();
        assert!(engine.telemetry().events().is_empty());
        assert!(engine.telemetry().snapshot().is_none());
        // Engine-local stats still work without telemetry.
        assert_eq!(engine.stats().snapshot().committed, 1);
    }

    #[test]
    fn background_errors_propagate_through_try_drain() {
        let gpu = tiny_gpu(300, 6);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 3) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let device: Arc<dyn PersistentDevice> = ssd.clone();
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(8)
            .build()
            .unwrap();
        let telemetry = Telemetry::enabled();
        let engine = PcCheckEngine::new(config, device, gpu.state_size())
            .unwrap()
            .with_telemetry(telemetry.clone());
        gpu.update();
        ssd.crash_now();
        engine.checkpoint(&gpu, 1);
        let err = engine.try_drain().unwrap_err();
        assert!(matches!(err, PccheckError::Device(_)), "{err}");
        assert_eq!(engine.stats().failed(), 1);
        assert_eq!(engine.stats().snapshot().terminated(), 1);
        // The failure is also a terminal event in the trace.
        assert_eq!(telemetry.snapshot().unwrap().counters.failed, 1);
        assert!(telemetry
            .events()
            .iter()
            .any(|e| matches!(e.kind, pccheck_telemetry::EventKind::Failed { .. })));
        // The error slot is one-shot: a second drain is clean.
        assert!(engine.try_drain().is_ok());
    }

    #[test]
    fn release_wakes_drainers_and_queued_acquirers() {
        // Regression: `release` used `notify_one` on the condvar shared by
        // `acquire` waiters and `wait_zero` drainers. With a drainer and an
        // acquirer both queued, the single wakeup could go to the drainer —
        // which exits without re-notifying — leaving the acquirer asleep
        // forever. The drill deadlocks under the old code, so it runs on a
        // watchdog thread and must finish well within the timeout.
        use std::sync::mpsc;

        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            let gate = Arc::new(InFlight::default());
            gate.acquire(1); // hold the only ticket so everyone queues
            let mut threads = Vec::new();
            for _ in 0..3 {
                let gate = Arc::clone(&gate);
                threads.push(std::thread::spawn(move || {
                    gate.acquire(1);
                    gate.release();
                }));
            }
            let drainer = {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || gate.wait_zero())
            };
            // Let the acquirers and the drainer all block on the condvar.
            std::thread::sleep(std::time::Duration::from_millis(100));
            gate.release();
            for t in threads {
                t.join().unwrap();
            }
            drainer.join().unwrap();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("lost wakeup: an acquirer or drainer never woke");
    }

    #[test]
    fn shared_facades_checkpoint_independent_jobs() {
        use crate::qos::{QosArbiter, QosConfig};

        let state = ByteSize::from_bytes(600);
        let cap =
            CheckpointStore::required_capacity_service(state, 8, 64, 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(CheckpointStore::format_service(device, state, 8, 64, 4).unwrap());
        store.allocate_namespace(1, 4).unwrap();
        store.allocate_namespace(2, 4).unwrap();
        let qos = Arc::new(QosArbiter::new(QosConfig::default()));
        qos.register_job(1, 1);
        qos.register_job(2, 1);
        let pool = HostBufferPool::new(ByteSize::from_bytes(64), 16);
        let pipeline = Arc::new(
            PersistPipeline::new(Arc::clone(&store))
                .with_writers(2)
                .with_staging(pool)
                .with_qos(Arc::clone(&qos)),
        );
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(64))
            .dram_chunks(16)
            .build()
            .unwrap();
        let e1 = PcCheckEngine::with_shared(config.clone(), Arc::clone(&pipeline), 1).unwrap();
        let e2 = PcCheckEngine::with_shared(config.clone(), Arc::clone(&pipeline), 2).unwrap();
        assert_eq!(e1.job(), Some(1));

        let g1 = tiny_gpu(600, 21);
        let g2 = tiny_gpu(600, 22);
        for iter in 1..=6u64 {
            g1.update();
            g2.update();
            e1.checkpoint(&g1, iter);
            e2.checkpoint(&g2, 100 + iter);
        }
        e1.drain();
        e2.drain();
        assert_eq!(e1.last_committed().unwrap().iteration, 6);
        assert_eq!(e2.last_committed().unwrap().iteration, 106);
        // The store's per-namespace heads agree with the facades.
        assert_eq!(store.latest_committed_job(1).unwrap().unwrap().iteration, 6);
        assert_eq!(
            store.latest_committed_job(2).unwrap().unwrap().iteration,
            106
        );
        // Both jobs' chunk writes were metered by the shared arbiter.
        let shares = qos.shares();
        assert!(shares.iter().find(|s| s.0 == 1).unwrap().1 >= 600);
        assert!(shares.iter().find(|s| s.0 == 2).unwrap().1 >= 600);

        // A new facade over the same pipeline resumes from the namespace
        // head, exactly like a restarted tenant reattaching to the daemon.
        let e1b = PcCheckEngine::with_shared(config.clone(), Arc::clone(&pipeline), 1).unwrap();
        assert_eq!(e1b.last_committed().unwrap().iteration, 6);

        // Unknown job and missing namespaces are rejected at build time.
        assert!(matches!(
            PcCheckEngine::with_shared(config, Arc::clone(&pipeline), 99),
            Err(PccheckError::InvalidConfig(_))
        ));
    }

    /// A GPU whose state is a 32-byte block tiled to `size`: highly
    /// compressible and self-redundant, and it stays that way across
    /// updates (the step transform is position-independent).
    fn compressible_gpu(size: u64, seed: u64) -> Gpu {
        Gpu::new(
            GpuConfig::fast_for_tests(),
            TrainingState::compressible(ByteSize::from_bytes(size), seed, 32),
        )
    }

    #[test]
    fn codec_engine_commits_framed_and_recovers_bit_identical() {
        // End to end through the engine: compressible weights, codec on.
        let gpu = compressible_gpu(4096, 11);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(256))
            .dram_chunks(16)
            .codec(true)
            .build()
            .unwrap();
        let telemetry = Telemetry::enabled();
        let engine = PcCheckEngine::new(config, device, gpu.state_size())
            .unwrap()
            .with_telemetry(telemetry.clone());
        assert!(engine.pipeline().codec_enabled());
        for iter in 1..=4 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        assert_eq!(engine.last_committed().unwrap().iteration, 4);
        // Recovery reproduces the live GPU state exactly.
        let recovered =
            crate::recovery::recover(Arc::clone(engine.store().device())).unwrap();
        assert_eq!(recovered.iteration, 4);
        let layout = gpu.with_weights(|s| s.layout());
        let restored = TrainingState::restore(&layout, &recovered.payload, recovered.iteration);
        assert_eq!(restored.digest(), gpu.digest());
        // Synthetic weights are quantized ramps — highly compressible, so
        // the codec must have saved bytes by the fourth checkpoint.
        let snap = telemetry.snapshot().unwrap();
        assert!(
            snap.codec_bytes_saved > 0 || snap.dedup_chunks > 0,
            "codec earned nothing on compressible synthetic state"
        );
    }

    #[test]
    fn codec_engine_survives_crash_and_recovery() {
        let gpu = compressible_gpu(2048, 12);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let ssd = Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let device: Arc<dyn PersistentDevice> = ssd.clone();
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(256))
            .dram_chunks(16)
            .codec(true)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        for iter in 1..=3 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        ssd.crash_now();
        ssd.recover();
        let recovered = crate::recovery::recover(ssd).unwrap();
        assert_eq!(recovered.iteration, 3);
        let layout = gpu.with_weights(|s| s.layout());
        let restored = TrainingState::restore(&layout, &recovered.payload, recovered.iteration);
        assert_eq!(restored.digest(), gpu.digest(), "framed payload survived crash");
    }

    #[test]
    fn adaptive_engine_ticks_its_controller() {
        let gpu = tiny_gpu(1024, 13);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(2)
            .chunk_size(ByteSize::from_bytes(128))
            .dram_chunks(16)
            .codec(true)
            .adaptive_interval(2)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size())
            .unwrap()
            .with_telemetry(Telemetry::enabled());
        assert_eq!(engine.controller_state().unwrap().ticks(), 0);
        for iter in 1..=8 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
            engine.drain();
        }
        let ctrl = engine.controller_state().unwrap();
        // Steered on requests 2, 4, 6, 8 (the tick *before* those requests
        // ran, so at least 3 intervals landed).
        assert!(ctrl.ticks() >= 3, "got {} ticks", ctrl.ticks());
        // The controller's settings are what the pipeline runs.
        assert_eq!(engine.pipeline().writers(), ctrl.writers());
        assert_eq!(engine.pipeline().codec_enabled(), ctrl.codec_enabled());
        assert_eq!(engine.last_committed().unwrap().iteration, 8);
    }

    #[test]
    fn adaptive_engine_without_telemetry_keeps_knobs_put() {
        let gpu = tiny_gpu(512, 14);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 4) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let config = PcCheckConfig::builder()
            .max_concurrent(2)
            .writer_threads(3)
            .chunk_size(ByteSize::from_bytes(128))
            .dram_chunks(16)
            .adaptive_interval(1)
            .build()
            .unwrap();
        let engine = PcCheckEngine::new(config, device, gpu.state_size()).unwrap();
        for iter in 1..=4 {
            gpu.update();
            engine.checkpoint(&gpu, iter);
        }
        engine.drain();
        // No telemetry snapshots → no controller intervals → config knobs.
        assert_eq!(engine.controller_state().unwrap().ticks(), 0);
        assert_eq!(engine.pipeline().writers(), 3);
        assert_eq!(engine.delta_policy(), crate::pipeline::DeltaPolicy::default());
    }

    #[test]
    fn with_store_rejects_too_few_slots() {
        let gpu = tiny_gpu(300, 8);
        let cap = CheckpointStore::required_capacity(gpu.state_size(), 2) + ByteSize::from_kb(1);
        let device: Arc<dyn PersistentDevice> =
            Arc::new(SsdDevice::new(DeviceConfig::fast_for_tests(cap)));
        let store = Arc::new(CheckpointStore::format(device, gpu.state_size(), 2).unwrap());
        let config = PcCheckConfig::builder().max_concurrent(3).build().unwrap();
        assert!(matches!(
            PcCheckEngine::with_store(config, store),
            Err(PccheckError::InvalidConfig(_))
        ));
    }
}

//! A bounded lock-free MPMC queue of checkpoint-slot indices.
//!
//! Listing 1 of the paper relies on a lock-free queue (Morrison & Afek's
//! LCRQ in the original) holding the free storage slots: a committing
//! checkpoint dequeues a slot to write into and enqueues the slot it
//! displaced. The population is bounded by the number of slots (N+1), so a
//! bounded array-based MPMC queue — each cell carrying a sequence number
//! that turns the ring into a wait-free-per-cell exchange — is a faithful,
//! compact stand-in.
//!
//! This implementation follows Vyukov's bounded MPMC design: `enqueue`
//! claims a cell whose sequence equals the tail position, writes the value,
//! then publishes by bumping the cell sequence; `dequeue` symmetrically
//! claims cells whose sequence equals head+1. Both are lock-free: a stalled
//! thread cannot block others from operating on other cells.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded, lock-free, multi-producer multi-consumer queue of `u32`
/// values (slot indices).
///
/// # Examples
///
/// ```
/// use pccheck::queue::SlotQueue;
///
/// let q = SlotQueue::with_capacity(4);
/// q.enqueue(7).unwrap();
/// q.enqueue(9).unwrap();
/// assert_eq!(q.dequeue(), Some(7));
/// assert_eq!(q.dequeue(), Some(9));
/// assert_eq!(q.dequeue(), None);
/// ```
#[derive(Debug)]
pub struct SlotQueue {
    cells: Box<[Cell]>,
    mask: usize,
    /// Next enqueue position (monotonically increasing).
    tail: AtomicUsize,
    /// Next dequeue position (monotonically increasing).
    head: AtomicUsize,
}

#[derive(Debug)]
struct Cell {
    /// Sequence number encoding the cell's state relative to head/tail.
    seq: AtomicUsize,
    value: UnsafeCell<u32>,
}

// SAFETY: access to `value` is serialized by the sequence-number protocol —
// a cell's value is written only by the unique producer that won the tail
// CAS for that position, and read only by the unique consumer that won the
// head CAS, with the release/acquire pair on `seq` ordering the accesses.
unsafe impl Send for SlotQueue {}
unsafe impl Sync for SlotQueue {}

impl SlotQueue {
    /// Creates an empty queue able to hold at least `capacity` values.
    ///
    /// Capacity is rounded up to the next power of two (minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        let cells = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SlotQueue {
            cells,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// The queue's capacity (after rounding).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Number of queued values (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Returns `true` if the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the queue is full — including *transiently*
    /// full: a concurrent dequeuer that has claimed a cell but not yet
    /// recycled its sequence number makes the cell look occupied to an
    /// enqueuer that has wrapped around to it. Even with the population
    /// strictly below capacity this race is possible, so callers whose
    /// population is bounded (like the checkpoint slot pool) should use
    /// [`enqueue_blocking`](Self::enqueue_blocking), which spins the
    /// handful of cycles until the dequeuer's store lands.
    pub fn enqueue(&self, value: u32) -> Result<(), u32> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            // seq == pos: cell ready for this enqueue position.
            match seq as isize - pos as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the tail CAS for `pos` makes
                            // this thread the unique writer of this cell
                            // until it publishes via `seq`.
                            unsafe { *cell.value.get() = value };
                            cell.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return Err(value), // full: cell still holds an unconsumed value
                _ => pos = self.tail.load(Ordering::Relaxed), // another producer advanced; retry
            }
        }
    }

    /// Dequeues a value, or returns `None` if the queue is empty
    /// (Listing 1 spins on this until a slot frees up).
    pub fn dequeue(&self) -> Option<u32> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            // seq == pos + 1: cell holds a value for this dequeue position.
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the head CAS for `pos` makes
                            // this thread the unique reader of this cell
                            // until it recycles it via `seq`.
                            let value = unsafe { *cell.value.get() };
                            cell.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }

    /// Enqueues, spinning through transient fulls (see
    /// [`enqueue`](Self::enqueue)). Only correct when the true population
    /// is bounded below the capacity, as in the checkpoint slot pool.
    pub fn enqueue_blocking(&self, value: u32) {
        let mut v = value;
        loop {
            match self.enqueue(v) {
                Ok(()) => return,
                Err(back) => v = back,
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Dequeues, spinning until a value is available — Listing 1's
    /// lines 8–11 ("while(true) { data_location = free_space.deq(); ... }").
    pub fn dequeue_blocking(&self) -> u32 {
        loop {
            if let Some(v) = self.dequeue() {
                return v;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

impl std::iter::FromIterator<u32> for SlotQueue {
    /// Builds a queue pre-populated with the given slots, sized to hold all
    /// of them.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let items: Vec<u32> = iter.into_iter().collect();
        let q = SlotQueue::with_capacity(items.len().max(1));
        for item in items {
            q.enqueue(item).expect("capacity covers all items");
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_threaded() {
        let q = SlotQueue::with_capacity(8);
        for i in 0..8 {
            q.enqueue(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SlotQueue::with_capacity(1).capacity(), 2);
        assert_eq!(SlotQueue::with_capacity(3).capacity(), 4);
        assert_eq!(SlotQueue::with_capacity(4).capacity(), 4);
        assert_eq!(SlotQueue::with_capacity(5).capacity(), 8);
    }

    #[test]
    fn enqueue_fails_when_full() {
        let q = SlotQueue::with_capacity(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(3));
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
    }

    #[test]
    fn len_tracks_population() {
        let q = SlotQueue::with_capacity(4);
        assert!(q.is_empty());
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.len(), 2);
        q.dequeue();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn wraparound_many_times() {
        let q = SlotQueue::with_capacity(4);
        for round in 0..100u32 {
            q.enqueue(round).unwrap();
            assert_eq!(q.dequeue(), Some(round));
        }
    }

    #[test]
    fn from_iterator_prepopulates() {
        let q: SlotQueue = (0..5u32).collect();
        assert_eq!(q.len(), 5);
        assert!(q.capacity() >= 5);
        let drained: Vec<u32> = std::iter::from_fn(|| q.dequeue()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SlotQueue::with_capacity(0);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_values() {
        // 4 producers push 1000 distinct values each; 4 consumers drain.
        // Every value must come out exactly once.
        let q = Arc::new(SlotQueue::with_capacity(8192));
        let consumed = Arc::new(parking_lot::Mutex::new(Vec::new()));
        crossbeam::thread::scope(|s| {
            for p in 0..4u32 {
                let q = Arc::clone(&q);
                s.spawn(move |_| {
                    for i in 0..1000u32 {
                        let v = p * 1000 + i;
                        while q.enqueue(v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                s.spawn(move |_| {
                    let mut local = Vec::new();
                    while local.len() < 1000 {
                        if let Some(v) = q.dequeue() {
                            local.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    consumed.lock().extend(local);
                });
            }
        })
        .unwrap();
        let got = consumed.lock();
        assert_eq!(got.len(), 4000);
        let unique: HashSet<u32> = got.iter().copied().collect();
        assert_eq!(unique.len(), 4000, "no duplicates, no losses");
        assert_eq!(unique.iter().copied().max(), Some(3999));
    }

    #[test]
    fn slot_recycling_pattern_like_pccheck() {
        // Model the engine's usage: N+1 slots circulate forever between
        // "free" and "committed"; the population never exceeds N+1.
        let slots = 4u32; // N=3 concurrent + 1 guaranteed
        let q: SlotQueue = (0..slots).collect();
        let mut committed = None;
        for _round in 0..1000 {
            let fresh = q.dequeue_blocking();
            if let Some(old) = committed.replace(fresh) {
                q.enqueue(old).unwrap();
            }
        }
        // One slot is held as the committed checkpoint; the rest are free.
        assert_eq!(q.len() as u32, slots - 1);
    }

    #[test]
    fn dequeue_blocking_waits_for_producer() {
        let q = Arc::new(SlotQueue::with_capacity(2));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.dequeue_blocking());
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.enqueue(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn mixed_blocking_and_nonblocking_mpmc_across_wraparound() {
        // The lock-free commit path recycles slots through this queue from
        // both the blocking (`release_slot`) and non-blocking entry points
        // while other checkpointers dequeue concurrently. A tiny ring and
        // many rounds force the sequence counters through hundreds of laps;
        // the slot population must come through intact — no loss, no
        // duplication, no deadlock in the transient-full window.
        const THREADS: u32 = 4;
        const ROUNDS: usize = 500;
        let q: Arc<SlotQueue> = Arc::new((0..THREADS).collect());
        assert_eq!(q.capacity(), 4, "4 slots on a 4-cell ring: max pressure");
        crossbeam::thread::scope(|s| {
            for t in 0..THREADS {
                let q = Arc::clone(&q);
                s.spawn(move |_| {
                    for round in 0..ROUNDS {
                        let v = if round % 3 == 0 {
                            // Non-blocking dequeue, spun by hand.
                            loop {
                                if let Some(v) = q.dequeue() {
                                    break v;
                                }
                                std::thread::yield_now();
                            }
                        } else {
                            q.dequeue_blocking()
                        };
                        if (round + t as usize) % 2 == 0 {
                            q.enqueue_blocking(v);
                        } else {
                            // Non-blocking enqueue, spun by hand (transient
                            // fulls are expected at full population).
                            let mut v = v;
                            while let Err(back) = q.enqueue(v) {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        })
        .unwrap();
        // Exactly the original population survives, each slot once.
        let mut drained: Vec<u32> = std::iter::from_fn(|| q.dequeue()).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        // The ring actually wrapped: every thread pushed ROUNDS positions.
        assert!(q.head.load(Ordering::Relaxed) >= THREADS as usize * ROUNDS);
    }

    proptest::proptest! {
        /// Single-threaded linearization against a VecDeque model: any
        /// enqueue/dequeue interleaving at any capacity behaves as bounded
        /// FIFO, including across many sequence-counter wraparounds (ops
        /// count far exceeds the ring size).
        #[test]
        fn any_op_sequence_matches_fifo_model(
            cap in 1usize..6,
            ops in proptest::collection::vec(
                (proptest::bool::ANY, 0u32..1000), 1..300),
        ) {
            let q = SlotQueue::with_capacity(cap);
            let mut model: std::collections::VecDeque<u32> =
                std::collections::VecDeque::new();
            for (is_enq, v) in ops {
                if is_enq {
                    let res = q.enqueue(v);
                    if model.len() < q.capacity() {
                        proptest::prop_assert_eq!(res, Ok(()), "queue not full");
                        model.push_back(v);
                    } else {
                        proptest::prop_assert_eq!(res, Err(v), "queue full");
                    }
                } else {
                    proptest::prop_assert_eq!(q.dequeue(), model.pop_front());
                }
                proptest::prop_assert_eq!(q.len(), model.len());
            }
            // Drain and compare the tails.
            let drained: Vec<u32> = std::iter::from_fn(|| q.dequeue()).collect();
            let expected: Vec<u32> = model.into_iter().collect();
            proptest::prop_assert_eq!(drained, expected);
        }
    }
}

//! Bandwidth QoS arbitration for shared persist pipelines.
//!
//! When several jobs checkpoint through one [`PersistPipeline`] onto one
//! striped device, the writer pool is a shared resource: an elephant job
//! streaming 4 MiB chunks can starve a mouse job's 64 KiB commits, and
//! per-job p99 commit latency collapses. [`QosArbiter`] schedules
//! writer-pool leases with **weighted deficit round-robin** (WDRR) over
//! bytes:
//!
//! * Every job carries a byte *deficit* account. Serving a chunk of `b`
//!   bytes requires `deficit >= b`; the deficit is then debited.
//! * When a requester is blocked on deficit alone, it performs top-up
//!   passes: each pass credits the next job in ring order with
//!   `weight * quantum` bytes. Ring order means a job waiting for `b`
//!   bytes is served after at most `ceil(b / (weight * quantum))` full
//!   passes — the **starvation bound**, asserted at serve time.
//! * An outstanding-lease cap (modulated by the shared device's observed
//!   queue depth, fed from the pipeline's per-device gauges) bounds how
//!   far ahead any mix of jobs can run; requesters over the cap sleep on
//!   a condvar and are woken by grant release.
//!
//! A single registered job bypasses arbitration entirely (deficit math,
//! cap, and condvar are all skipped), so the single-tenant fast path
//! costs one mutex acquire per chunk — multiplexing must not regress
//! solo latency.
//!
//! [`PersistPipeline`]: crate::pipeline::PersistPipeline

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::store::JobId;

/// Default deficit quantum: the byte credit one ring pass grants a
/// weight-1 job. Half a typical pipeline chunk keeps alternation fine
/// enough that two equal jobs interleave chunk-by-chunk.
pub const DEFAULT_QUANTUM: u64 = 256 * 1024;

/// Tuning knobs for [`QosArbiter`].
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Byte credit per ring pass per unit of weight.
    pub quantum: u64,
    /// Maximum concurrently outstanding grants across all jobs.
    pub max_outstanding: usize,
    /// Device queue depth above which the outstanding cap halves
    /// (backpressure from the shared device's gauges).
    pub queue_depth_high: u64,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            quantum: DEFAULT_QUANTUM,
            max_outstanding: 8,
            queue_depth_high: 32,
        }
    }
}

#[derive(Debug)]
struct JobState {
    job: JobId,
    weight: u64,
    deficit: u64,
    /// Largest byte request currently waiting (lets the deficit cap grow
    /// past `2 * weight * quantum` when a single chunk is bigger).
    wanted: u64,
    /// Top-ups received since this job last got served while waiting —
    /// the measured starvation exposure checked against the WDRR bound.
    topups_while_waiting: u64,
    served_bytes: u64,
    served_grants: u64,
}

#[derive(Debug)]
struct QosState {
    jobs: Vec<JobState>,
    ring_cursor: usize,
    outstanding: usize,
    effective_cap: usize,
    peak_outstanding: usize,
}

impl QosState {
    fn job_index(&mut self, job: JobId, weight: u64) -> usize {
        if let Some(i) = self.jobs.iter().position(|j| j.job == job) {
            return i;
        }
        self.jobs.push(JobState {
            job,
            weight: weight.max(1),
            deficit: 0,
            wanted: 0,
            topups_while_waiting: 0,
            served_bytes: 0,
            served_grants: 0,
        });
        self.jobs.len() - 1
    }
}

/// Weighted deficit round-robin bandwidth arbiter shared by every engine
/// facade multiplexed over one persist pipeline. See the module docs for
/// the protocol.
#[derive(Debug)]
pub struct QosArbiter {
    cfg: QosConfig,
    state: Mutex<QosState>,
    cv: Condvar,
}

impl QosArbiter {
    pub fn new(cfg: QosConfig) -> Self {
        let cap = cfg.max_outstanding.max(1);
        QosArbiter {
            cfg,
            state: Mutex::new(QosState {
                jobs: Vec::new(),
                ring_cursor: 0,
                outstanding: 0,
                effective_cap: cap,
                peak_outstanding: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers `job` with a scheduling weight (service share is
    /// proportional to weight under backlog). Idempotent; re-registering
    /// updates the weight.
    pub fn register_job(&self, job: JobId, weight: u64) {
        let mut s = self.state.lock();
        let i = s.job_index(job, weight);
        s.jobs[i].weight = weight.max(1);
    }

    /// Acquires a byte-metered lease to push `bytes` through the shared
    /// writer pool on behalf of `job`. Blocks until WDRR grants the
    /// deficit and the outstanding cap admits the lease. The returned
    /// grant releases on drop.
    ///
    /// # Panics
    ///
    /// Panics if a waiting job's measured top-up count ever exceeds the
    /// WDRR starvation bound — that would mean the ring is skipping a
    /// waiter, and unfairness should fail loudly in every test that
    /// exercises the arbiter.
    pub fn acquire(self: &Arc<Self>, job: JobId, bytes: u64) -> QosGrant {
        let mut s = self.state.lock();
        let idx = s.job_index(job, 1);

        // Single-tenant fast path: no deficit math, no cap, no condvar.
        if s.jobs.len() == 1 {
            s.jobs[idx].served_bytes += bytes;
            s.jobs[idx].served_grants += 1;
            s.outstanding += 1;
            s.peak_outstanding = s.peak_outstanding.max(s.outstanding);
            return QosGrant {
                arb: Arc::clone(self),
                job,
                bytes,
            };
        }

        s.jobs[idx].wanted = s.jobs[idx].wanted.max(bytes);
        loop {
            if s.outstanding < s.effective_cap {
                if s.jobs[idx].deficit >= bytes {
                    // Serve: debit and assert the starvation bound. Each
                    // full ring pass credits us weight*quantum, so a
                    // waiter is served within ceil(bytes / (w*q)) top-ups
                    // (+1 slack for a pass that began mid-ring).
                    let j = &mut s.jobs[idx];
                    let bound = bytes.div_ceil(j.weight * self.cfg.quantum) + 1;
                    assert!(
                        j.topups_while_waiting <= bound,
                        "QoS starvation bound violated: job {} waited {} top-ups \
                         for {} bytes (bound {})",
                        j.job,
                        j.topups_while_waiting,
                        bytes,
                        bound
                    );
                    j.deficit -= bytes;
                    j.wanted = 0;
                    j.topups_while_waiting = 0;
                    j.served_bytes += bytes;
                    j.served_grants += 1;
                    s.outstanding += 1;
                    s.peak_outstanding = s.peak_outstanding.max(s.outstanding);
                    return QosGrant {
                        arb: Arc::clone(self),
                        job,
                        bytes,
                    };
                }
                // Blocked on deficit only: run one top-up step — credit
                // the next ring job — and re-check without sleeping.
                // Ring order guarantees our own turn within jobs.len()
                // steps, so this loop terminates.
                let n = s.jobs.len();
                let cur = s.ring_cursor % n;
                s.ring_cursor = (cur + 1) % n;
                let quantum = self.cfg.quantum;
                let j = &mut s.jobs[cur];
                let cap = (2 * j.weight * quantum).max(j.wanted);
                j.deficit = (j.deficit + j.weight * quantum).min(cap);
                if j.wanted > 0 {
                    j.topups_while_waiting += 1;
                }
                continue;
            }
            // Blocked on the outstanding cap: sleep until a release.
            self.cv.wait(&mut s);
        }
    }

    fn release(&self, _job: JobId, _bytes: u64) {
        let mut s = self.state.lock();
        s.outstanding -= 1;
        self.cv.notify_all();
    }

    /// Feeds the shared device's sampled queue depth into the cap: above
    /// the high-water mark, halve the outstanding cap so queued jobs
    /// stop piling latency onto the device; at or below it, restore.
    pub fn observe_queue_depth(&self, depth: u64) {
        let mut s = self.state.lock();
        let full = self.cfg.max_outstanding.max(1);
        let new_cap = if depth > self.cfg.queue_depth_high {
            (full / 2).max(1)
        } else {
            full
        };
        if new_cap > s.effective_cap {
            self.cv.notify_all();
        }
        s.effective_cap = new_cap;
    }

    /// Per-job cumulative served bytes, in registration order — the
    /// measured bandwidth shares the fairness oracle compares against.
    pub fn shares(&self) -> Vec<(JobId, u64)> {
        self.state
            .lock()
            .jobs
            .iter()
            .map(|j| (j.job, j.served_bytes))
            .collect()
    }

    /// Zeroes every job's served-bytes account (windowed share
    /// measurements).
    pub fn reset_shares(&self) {
        for j in self.state.lock().jobs.iter_mut() {
            j.served_bytes = 0;
            j.served_grants = 0;
        }
    }

    /// Highest number of simultaneously outstanding grants observed.
    pub fn peak_outstanding(&self) -> usize {
        self.state.lock().peak_outstanding
    }

    /// The currently effective outstanding-grant cap.
    pub fn effective_cap(&self) -> usize {
        self.state.lock().effective_cap
    }
}

/// RAII lease from [`QosArbiter::acquire`]; releases its outstanding
/// slot (and wakes cap-blocked waiters) on drop.
#[derive(Debug)]
pub struct QosGrant {
    arb: Arc<QosArbiter>,
    job: JobId,
    bytes: u64,
}

impl QosGrant {
    pub fn job(&self) -> JobId {
        self.job
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for QosGrant {
    fn drop(&mut self) {
        self.arb.release(self.job, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter(cap: usize) -> Arc<QosArbiter> {
        Arc::new(QosArbiter::new(QosConfig {
            quantum: 1024,
            max_outstanding: cap,
            queue_depth_high: 32,
        }))
    }

    #[test]
    fn single_job_fast_path_never_blocks() {
        let arb = arbiter(1);
        // Far more grants than the cap without ever releasing: the solo
        // fast path must not enforce the cap.
        let grants: Vec<_> = (0..8).map(|_| arb.acquire(1, 4096)).collect();
        assert_eq!(arb.shares(), vec![(1, 8 * 4096)]);
        drop(grants);
    }

    #[test]
    fn equal_weights_serve_equal_bytes() {
        let arb = arbiter(1);
        arb.register_job(1, 1);
        arb.register_job(2, 1);
        let mut handles = Vec::new();
        for job in [1u64, 2] {
            let arb = Arc::clone(&arb);
            handles.push(std::thread::spawn(move || {
                for _ in 0..64 {
                    let g = arb.acquire(job, 4096);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let shares = arb.shares();
        assert_eq!(shares[0].1, 64 * 4096);
        assert_eq!(shares[1].1, 64 * 4096);
        assert!(arb.peak_outstanding() <= 1, "cap 1 exceeded");
    }

    #[test]
    fn elephant_chunks_do_not_starve_mice() {
        // Job 1 pushes 1 MiB chunks (4x the deficit cap growth per pass);
        // job 2 pushes 4 KiB chunks. Both must complete, and the
        // starvation assert inside acquire() checks the WDRR bound held
        // throughout.
        let arb = arbiter(2);
        arb.register_job(1, 1);
        arb.register_job(2, 1);
        let mut handles = Vec::new();
        for (job, bytes, reps) in [(1u64, 1 << 20, 16usize), (2u64, 4096, 256)] {
            let arb = Arc::clone(&arb);
            handles.push(std::thread::spawn(move || {
                for _ in 0..reps {
                    drop(arb.acquire(job, bytes as u64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let shares = arb.shares();
        assert_eq!(shares.iter().find(|s| s.0 == 1).unwrap().1, 16 << 20);
        assert_eq!(shares.iter().find(|s| s.0 == 2).unwrap().1, 256 * 4096);
    }

    #[test]
    fn weights_bias_deficit_growth() {
        // Weight 3 accumulates deficit 3x faster, so serving the same
        // chunk size requires fewer passes. Verify weighted registration
        // plumbs through (behavioral fairness ratios are bench_pr8's
        // job, with real concurrency and a fluid-model oracle).
        let arb = arbiter(1);
        arb.register_job(7, 3);
        arb.register_job(8, 1);
        drop(arb.acquire(7, 3 * 1024));
        drop(arb.acquire(8, 1024));
        let shares = arb.shares();
        assert_eq!(shares, vec![(7, 3 * 1024), (8, 1024)]);
    }

    #[test]
    fn queue_depth_backpressure_halves_cap() {
        let arb = arbiter(8);
        arb.register_job(1, 1);
        arb.register_job(2, 1);
        assert_eq!(arb.effective_cap(), 8);
        arb.observe_queue_depth(100);
        assert_eq!(arb.effective_cap(), 4);
        arb.observe_queue_depth(1);
        assert_eq!(arb.effective_cap(), 8);
    }

    #[test]
    fn cap_blocks_until_release() {
        let arb = arbiter(1);
        arb.register_job(1, 1);
        arb.register_job(2, 1);
        let g = arb.acquire(1, 512);
        let arb2 = Arc::clone(&arb);
        let waiter = std::thread::spawn(move || {
            let g2 = arb2.acquire(2, 512);
            drop(g2);
        });
        // Give the waiter a moment to block on the cap, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "waiter should block on cap 1");
        drop(g);
        waiter.join().unwrap();
        assert!(arb.peak_outstanding() <= 1);
    }

    #[test]
    fn shares_reset_for_windowed_measurement() {
        let arb = arbiter(4);
        drop(arb.acquire(1, 4096));
        arb.reset_shares();
        assert_eq!(arb.shares(), vec![(1, 0)]);
    }
}

//! Error type for PCcheck operations.

use std::error::Error;
use std::fmt;

use pccheck_device::DeviceError;

/// Errors returned by PCcheck's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PccheckError {
    /// An underlying device operation failed.
    Device(DeviceError),
    /// The configuration is inconsistent (e.g., zero writer threads, or the
    /// store cannot hold N+1 checkpoints).
    InvalidConfig(String),
    /// Recovery found no committed checkpoint on the device.
    NoCheckpoint,
    /// Recovery found a committed record whose payload failed verification
    /// (digest mismatch — data loss or a commit-protocol bug).
    CorruptCheckpoint {
        /// The checkpoint counter whose payload was invalid.
        counter: u64,
    },
    /// A distributed peer reported a checkpoint ordering that conflicts
    /// with the coordinator's view.
    CoordinationConflict(String),
}

impl fmt::Display for PccheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PccheckError::Device(e) => write!(f, "device error: {e}"),
            PccheckError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PccheckError::NoCheckpoint => write!(f, "no committed checkpoint on device"),
            PccheckError::CorruptCheckpoint { counter } => {
                write!(f, "checkpoint {counter} failed payload verification")
            }
            PccheckError::CoordinationConflict(msg) => {
                write!(f, "distributed coordination conflict: {msg}")
            }
        }
    }
}

impl Error for PccheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PccheckError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for PccheckError {
    fn from(e: DeviceError) -> Self {
        PccheckError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PccheckError::from(DeviceError::Crashed);
        assert!(e.to_string().contains("device error"));
        assert!(e.source().is_some());
        assert!(PccheckError::NoCheckpoint.source().is_none());
        assert!(PccheckError::CorruptCheckpoint { counter: 9 }
            .to_string()
            .contains('9'));
        assert!(PccheckError::InvalidConfig("p=0".into())
            .to_string()
            .contains("p=0"));
        assert!(PccheckError::CoordinationConflict("rank 2".into())
            .to_string()
            .contains("rank 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<PccheckError>();
    }
}

//! Table 1: memory and storage footprint per checkpointing algorithm.
//!
//! | Algorithm | GPU Mem     | DRAM      | Storage   |
//! |-----------|-------------|-----------|-----------|
//! | CheckFreq | m           | m         | 2·m       |
//! | GPM       | m           | 0         | 2·m       |
//! | Gemini    | m + buffer  | m         | 0         |
//! | PCcheck   | m           | m..2·m    | (N+1)·m   |
//!
//! The functions here are the executable form of that table; the Table 1
//! bench (`table1_footprint`) prints it, and engine tests assert the
//! concrete engines never exceed these bounds.

use pccheck_util::ByteSize;

/// Gemini's staging buffer on the GPU (§3.2: 32 MB).
pub const GEMINI_GPU_BUFFER: ByteSize = ByteSize::from_mb_u64(32);

/// Footprint of one algorithm for checkpoint size `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// GPU memory consumed beyond the training state itself plus the state.
    pub gpu: ByteSize,
    /// Host DRAM for checkpoint staging (min and max when a range applies).
    pub dram_min: ByteSize,
    /// Maximum host DRAM.
    pub dram_max: ByteSize,
    /// Persistent storage.
    pub storage: ByteSize,
}

/// CheckFreq: snapshot in DRAM (m), double-buffered storage (2m).
pub fn checkfreq(m: ByteSize) -> Footprint {
    Footprint {
        gpu: m,
        dram_min: m,
        dram_max: m,
        storage: m * 2,
    }
}

/// GPM: GPU writes straight to mapped persistent memory — no DRAM staging.
pub fn gpm(m: ByteSize) -> Footprint {
    Footprint {
        gpu: m,
        dram_min: ByteSize::ZERO,
        dram_max: ByteSize::ZERO,
        storage: m * 2,
    }
}

/// Gemini: remote-DRAM checkpoints — no persistent storage, a small GPU
/// staging buffer, and m of (remote) DRAM.
pub fn gemini(m: ByteSize) -> Footprint {
    Footprint {
        gpu: m + GEMINI_GPU_BUFFER,
        dram_min: m,
        dram_max: m,
        storage: ByteSize::ZERO,
    }
}

/// PCcheck with `n` concurrent checkpoints: m–2m of DRAM staging and
/// (N+1)·m of storage.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn pccheck(m: ByteSize, n: usize) -> Footprint {
    assert!(n > 0, "PCcheck needs N >= 1");
    Footprint {
        gpu: m,
        dram_min: m,
        dram_max: m * 2,
        storage: m * (n as u64 + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: ByteSize = ByteSize::from_mb_u64(1024); // 1 GiB checkpoint

    #[test]
    fn table1_checkfreq() {
        let f = checkfreq(M);
        assert_eq!(f.dram_min, M);
        assert_eq!(f.dram_max, M);
        assert_eq!(f.storage, M * 2);
        assert_eq!(f.gpu, M);
    }

    #[test]
    fn table1_gpm_uses_no_dram() {
        let f = gpm(M);
        assert_eq!(f.dram_min, ByteSize::ZERO);
        assert_eq!(f.dram_max, ByteSize::ZERO);
        assert_eq!(f.storage, M * 2);
    }

    #[test]
    fn table1_gemini_uses_no_storage() {
        let f = gemini(M);
        assert_eq!(f.storage, ByteSize::ZERO);
        assert_eq!(f.gpu, M + ByteSize::from_mb_u64(32));
        assert_eq!(f.dram_max, M);
    }

    #[test]
    fn table1_pccheck_scales_with_n() {
        for n in 1..=4 {
            let f = pccheck(M, n);
            assert_eq!(f.storage, M * (n as u64 + 1));
            assert_eq!(f.dram_min, M);
            assert_eq!(f.dram_max, M * 2);
            assert_eq!(f.gpu, M);
        }
        // N=1 PCcheck matches the baselines' 2m storage.
        assert_eq!(pccheck(M, 1).storage, checkfreq(M).storage);
    }

    #[test]
    #[should_panic(expected = "N >= 1")]
    fn pccheck_rejects_zero_n() {
        pccheck(M, 0);
    }
}
